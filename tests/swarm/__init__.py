"""Package marker so repo-root pytest collection resolves relative imports."""
