"""Seed derivation: pure, well-separated, uniform walk streams."""

from __future__ import annotations

import pytest

from repro.swarm.seeds import WalkRng, walk_rng, walk_stream_seed


class TestWalkStreamSeed:
    def test_pure_function_of_root_and_index(self):
        assert walk_stream_seed(7, 42) == walk_stream_seed(7, 42)

    def test_distinct_indices_distinct_seeds(self):
        seeds = {walk_stream_seed(7, index) for index in range(10_000)}
        assert len(seeds) == 10_000

    def test_distinct_roots_distinct_seeds(self):
        assert walk_stream_seed(1, 0) != walk_stream_seed(2, 0)

    def test_seed_is_64_bit(self):
        for index in (0, 1, 2**40):
            assert 0 <= walk_stream_seed(2**63, index) < 2**64


class TestWalkRng:
    def test_same_seed_same_stream(self):
        first = WalkRng(123)
        second = WalkRng(123)
        assert [first.next_word() for _ in range(32)] == [
            second.next_word() for _ in range(32)
        ]

    def test_choose_covers_full_range(self):
        rng = WalkRng(9)
        seen = {rng.choose(5) for _ in range(500)}
        assert seen == {0, 1, 2, 3, 4}

    def test_choose_one_is_free(self):
        rng = WalkRng(9)
        before = rng._state
        assert rng.choose(1) == 0
        assert rng._state == before  # no stream word consumed

    def test_choose_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WalkRng(1).choose(0)

    def test_choose_roughly_uniform(self):
        rng = WalkRng(1234)
        counts = [0, 0, 0]
        for _ in range(30_000):
            counts[rng.choose(3)] += 1
        for count in counts:
            assert 9_000 < count < 11_000

    def test_walk_rng_equivalent_to_manual_seeding(self):
        manual = WalkRng(walk_stream_seed(5, 17))
        derived = walk_rng(5, 17)
        assert [manual.choose(7) for _ in range(16)] == [
            derived.choose(7) for _ in range(16)
        ]
