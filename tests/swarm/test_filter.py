"""The probabilistic visited filter: counting, sharing, saturation."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.swarm.filter import SwarmFilter


class TestLocalFilter:
    def test_add_reports_first_touch_only(self):
        swarm_filter = SwarmFilter(bits_log2=16)
        assert swarm_filter.add(12345)
        assert not swarm_filter.add(12345)

    def test_contains(self):
        swarm_filter = SwarmFilter(bits_log2=16)
        assert 777 not in swarm_filter
        swarm_filter.add(777)
        assert 777 in swarm_filter

    def test_population_counts_distinct_bits(self):
        swarm_filter = SwarmFilter(bits_log2=20)
        new = sum(1 for fp in range(1000) if swarm_filter.add(fp))
        assert swarm_filter.population() == new
        # At 2**20 bits and 1000 inserts, collisions are rare.
        assert new > 990

    def test_saturation_fraction(self):
        swarm_filter = SwarmFilter(bits_log2=8)
        assert swarm_filter.saturation() == 0.0
        for fp in range(200):
            swarm_filter.add(fp)
        assert 0.0 < swarm_filter.saturation() <= 1.0

    def test_size_bounds_validated(self):
        with pytest.raises(ValueError):
            SwarmFilter(bits_log2=2)
        with pytest.raises(ValueError):
            SwarmFilter(bits_log2=40)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shared filter requires the fork start method",
)
class TestSharedFilter:
    def test_shared_bits_visible_across_fork(self):
        context = multiprocessing.get_context("fork")
        swarm_filter = SwarmFilter.shared(context, bits_log2=16)
        swarm_filter.add(42)

        def child(queue):
            queue.put((42 in swarm_filter, swarm_filter.add(43)))

        queue = context.Queue()
        process = context.Process(target=child, args=(queue,))
        process.start()
        parent_sees, child_added = queue.get(timeout=10)
        process.join(timeout=10)
        assert parent_sees
        assert child_added
        assert 43 in swarm_filter  # written by the child, read by the parent

    def test_shared_semantics_match_local(self):
        context = multiprocessing.get_context("fork")
        shared = SwarmFilter.shared(context, bits_log2=14)
        local = SwarmFilter(bits_log2=14)
        fingerprints = [hash(("fp", i)) & (2**64 - 1) for i in range(500)]
        assert [shared.add(fp) for fp in fingerprints] == [
            local.add(fp) for fp in fingerprints
        ]
        assert shared.population() == local.population()
