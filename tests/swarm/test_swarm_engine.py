"""The swarm backend end to end: plans, capabilities, verdicts, telemetry."""

from __future__ import annotations

import io
import multiprocessing

import pytest

from repro.engine.events import CollectingObserver, ProgressPrinter
from repro.engine.plan import (
    DEFAULT_WALK_DEPTH,
    DEFAULT_WALKS,
    CheckPlan,
    UnsupportedPlanError,
    strategy_label,
)
from repro.engine.registry import default_registry, run_plan
from repro.protocols.catalog import entry_by_key

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

VIOLATING_KEY = "multicast-2-1-2-1"
CLEAN_KEY = "multicast-2-1-0-1"


def swarm_plan(**overrides):
    axes = dict(shape="dfs", reduction="none", backend="swarm",
                stateful=False, walks=2000, walk_seed=7)
    axes.update(overrides)
    return CheckPlan(**axes)


def run_swarm_on(key, **overrides):
    """Run a swarm plan, returning (result, protocol).

    Replay must use the protocol instance the search ran on: the recorded
    Executions hold that build's TransitionSpecs.
    """
    entry = entry_by_key(key, "small")
    observer = overrides.pop("observer", None)
    telemetry = overrides.pop("telemetry", None)
    protocol = entry.quorum_model()
    result = run_plan(
        protocol, entry.invariant, swarm_plan(**overrides),
        observer=observer, telemetry=telemetry,
    )
    return result, protocol


def run_swarm(key, **overrides):
    return run_swarm_on(key, **overrides)[0]


class TestSwarmPlanAxes:
    def test_swarm_plans_are_stateless_and_storeless(self):
        plan = CheckPlan(backend="swarm")
        assert not plan.stateful
        assert plan.store == "none"

    def test_swarm_defaults_walks_seed_and_depth(self):
        plan = CheckPlan(backend="swarm")
        assert plan.walks == DEFAULT_WALKS
        assert plan.walk_seed == 0
        assert plan.max_depth == DEFAULT_WALK_DEPTH

    def test_explicit_budget_survives(self):
        plan = CheckPlan(backend="swarm", walks=99, walk_seed=5, max_depth=17)
        assert (plan.walks, plan.walk_seed, plan.max_depth) == (99, 5, 17)

    def test_walks_on_exhaustive_backend_rejected(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(walks=100)
        assert excinfo.value.axis == "backend"
        assert excinfo.value.alternative.backend == "swarm"

    def test_walk_seed_on_exhaustive_backend_rejected(self):
        with pytest.raises(UnsupportedPlanError):
            CheckPlan(backend="serial", walk_seed=3)

    def test_invalid_walks_rejected(self):
        with pytest.raises(UnsupportedPlanError):
            CheckPlan(backend="swarm", walks=0)

    def test_describe_names_the_sampling_configuration(self):
        description = swarm_plan().describe()
        assert "swarm" in description
        assert "walks2000" in description
        assert "seed7" in description

    def test_strategy_label(self):
        assert strategy_label(swarm_plan()) == "swarm"


class TestSwarmCapabilities:
    def test_reduction_refused(self):
        registry = default_registry()
        with pytest.raises(UnsupportedPlanError) as excinfo:
            registry.resolve(swarm_plan(reduction="spor"))
        assert excinfo.value.axis in ("reduction", "backend")

    def test_bfs_shape_refused(self):
        registry = default_registry()
        with pytest.raises(UnsupportedPlanError):
            registry.resolve(swarm_plan(shape="bfs"))

    def test_liveness_goal_refused(self):
        registry = default_registry()
        with pytest.raises(UnsupportedPlanError):
            registry.resolve(swarm_plan(goal="liveness"))

    def test_auto_never_picks_swarm(self):
        registry = default_registry()
        engine, resolved = registry.resolve(
            CheckPlan(shape="dfs", reduction="none", backend="auto",
                      stateful=False)
        )
        assert "swarm" not in engine.name
        assert resolved.backend != "swarm"

    def test_serial_and_parallel_engines_resolve(self):
        registry = default_registry()
        engine, _ = registry.resolve(swarm_plan())
        assert engine.name == "swarm"
        if HAS_FORK:
            engine, _ = registry.resolve(swarm_plan(workers=4))
            assert engine.name == "swarm-parallel"

    def test_fast_successor_mode_resolves(self):
        registry = default_registry()
        engine, _ = registry.resolve(swarm_plan(successors="fast"))
        assert engine.name == "swarm"


class TestSwarmVerdicts:
    def test_violation_is_conclusive_with_replayable_ce(self):
        result, protocol = run_swarm_on(VIOLATING_KEY)
        assert result.outcome() == "violated"
        assert result.conclusive
        assert not result.complete
        ce = result.counterexample
        assert ce is not None
        assert not ce.is_lasso
        ce.replay(protocol)  # raises on divergence

    def test_budget_exhaustion_is_inconclusive_never_verified(self):
        result = run_swarm(CLEAN_KEY, walks=50)
        assert result.outcome() == "inconclusive"
        assert not result.conclusive
        assert not result.complete
        assert result.counterexample is None

    def test_same_seed_reproduces_identical_trace(self):
        first = run_swarm(VIOLATING_KEY)
        second = run_swarm(VIOLATING_KEY)
        assert (first.counterexample.transition_names()
                == second.counterexample.transition_names())

    def test_fast_and_object_walkers_find_identical_trace(self):
        object_result = run_swarm(VIOLATING_KEY)
        fast_result = run_swarm(VIOLATING_KEY, successors="fast")
        assert (object_result.counterexample.transition_names()
                == fast_result.counterexample.transition_names())

    def test_max_states_caps_total_steps(self):
        result = run_swarm(CLEAN_KEY, walks=100000, max_states=500)
        assert result.outcome() == "inconclusive"
        assert result.statistics.transitions_executed <= 500 + DEFAULT_WALK_DEPTH

    def test_statistics_report_walk_counters(self):
        result = run_swarm(CLEAN_KEY, walks=100)
        stats = result.statistics
        assert stats.states_visited > 0          # unique-fingerprint estimate
        assert stats.transitions_executed > 0    # total walk steps
        assert stats.max_depth > 0               # deepest walk


class TestSwarmObservability:
    def test_progress_events_carry_walk_payload(self):
        observer = CollectingObserver()
        run_swarm(CLEAN_KEY, walks=2500, observer=observer)
        progress = observer.last("progress")
        assert progress is not None
        assert progress.payload["walks_completed"] >= 1000
        assert "unique_fingerprints" in progress.payload
        assert "violations" in progress.payload

    def test_violation_event_names_the_walk(self):
        observer = CollectingObserver()
        run_swarm(VIOLATING_KEY, observer=observer)
        violation = observer.last("violation-found")
        assert violation is not None
        assert "walk_index" in violation.payload

    def test_progress_printer_renders_walks(self):
        stream = io.StringIO()
        run_swarm(CLEAN_KEY, walks=2500, observer=ProgressPrinter(stream))
        output = stream.getvalue()
        assert "walks" in output
        assert "unique" in output
        assert "Inconclusive (budget hit)" in output
        assert ": Verified" not in output

    def test_telemetry_gauges_and_spans(self):
        result = run_swarm(CLEAN_KEY, walks=600)
        metrics = result.telemetry["metrics"]
        completed = metrics["swarm_walks_completed"]
        assert completed["values"][0]["value"] == 600
        assert metrics["swarm_walks_per_second"]["values"][0]["value"] > 0
        assert metrics["swarm_unique_fingerprints"]["values"][0]["value"] > 0
        finished = result.telemetry["spans"]["finished"]
        assert any(record["span"] == "walk-batch" for record in finished)

    def test_ce_replay_span_on_violation(self):
        result = run_swarm(VIOLATING_KEY)
        assert result.outcome() == "violated"
        finished = result.telemetry["spans"]["finished"]
        assert any(record["span"] == "ce-replay" for record in finished)


@pytest.mark.skipif(not HAS_FORK, reason="parallel swarm requires fork")
class TestParallelSwarm:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_parallel_trace_identical_to_serial(self, workers):
        serial = run_swarm(VIOLATING_KEY)
        parallel, protocol = run_swarm_on(VIOLATING_KEY, workers=workers)
        assert parallel.outcome() == "violated"
        assert parallel.engine == "swarm-parallel"
        assert (parallel.counterexample.transition_names()
                == serial.counterexample.transition_names())
        parallel.counterexample.replay(protocol)

    def test_parallel_clean_run_is_inconclusive(self):
        result = run_swarm(CLEAN_KEY, walks=400, workers=2)
        assert result.outcome() == "inconclusive"
        assert result.counterexample is None
        # All walks ran: no violation means no early abort.
        observer_total = result.statistics.transitions_executed
        assert observer_total > 0

    def test_parallel_emits_worker_reports(self):
        observer = CollectingObserver()
        run_swarm(CLEAN_KEY, walks=400, workers=2, observer=observer)
        assert observer.counts().get("worker-report") == 2
