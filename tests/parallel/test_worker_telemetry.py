"""Worker-side telemetry primitives: shared channel and stall detection.

Both are exercised in-process (the channel's shared arrays work without
fork), so these tests run on every platform; the cross-process behaviour
is covered by the parallel run-report tests in ``tests/obs``.
"""

from __future__ import annotations

import pytest

from repro.parallel.worksteal import (
    HEARTBEAT_EVERY,
    WORKER_STALL_SECONDS,
    WORKER_TELEMETRY_FIELDS,
    StallDetector,
    WorkerTelemetryChannel,
)


class TestWorkerTelemetryChannel:
    def test_rows_start_zeroed_and_unbeaten(self):
        channel = WorkerTelemetryChannel(3)
        assert channel.read_all() == [(0, 0, 0)] * 3
        assert channel.heartbeats() == (0.0, 0.0, 0.0)

    def test_publish_updates_only_the_owning_row(self):
        channel = WorkerTelemetryChannel(3)
        channel.publish(1, claimed=10, transitions=25, revisits=3)
        assert channel.read(1) == (10, 25, 3)
        assert channel.read(0) == (0, 0, 0)
        assert channel.read(2) == (0, 0, 0)
        beats = channel.heartbeats()
        assert beats[1] > 0.0 and beats[0] == beats[2] == 0.0

    def test_publish_overwrites_with_absolute_counters(self):
        channel = WorkerTelemetryChannel(1)
        channel.publish(0, claimed=5, transitions=10, revisits=0)
        channel.publish(0, claimed=7, transitions=12, revisits=1)
        assert channel.read(0) == (7, 12, 1)

    def test_beat_refreshes_the_heartbeat_without_counters(self):
        channel = WorkerTelemetryChannel(2)
        channel.beat(0)
        assert channel.heartbeats()[0] > 0.0
        assert channel.read(0) == (0, 0, 0)

    def test_row_layout_matches_the_field_tuple(self):
        assert WORKER_TELEMETRY_FIELDS == ("claimed", "transitions_executed",
                                           "revisits")
        channel = WorkerTelemetryChannel(1)
        channel.publish(0, claimed=1, transitions=2, revisits=3)
        assert dict(zip(WORKER_TELEMETRY_FIELDS, channel.read(0))) == {
            "claimed": 1, "transitions_executed": 2, "revisits": 3,
        }

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerTelemetryChannel(0)

    def test_heartbeat_cadence_is_a_power_of_two(self):
        # The workers gate publishes with ``not beats & (EVERY - 1)``,
        # which only counts correctly for powers of two.
        assert HEARTBEAT_EVERY > 0
        assert HEARTBEAT_EVERY & (HEARTBEAT_EVERY - 1) == 0


class TestStallDetector:
    def make(self, workers=2, threshold=5.0):
        return StallDetector(workers, threshold_seconds=threshold,
                             clock=lambda: 0.0)

    def test_silent_worker_fires_once_per_episode(self):
        detector = self.make()
        beats = (100.0, 100.0)
        assert detector.check(beats, now=102.0) == []
        assert detector.check(beats, now=106.0) == [(0, 6.0), (1, 6.0)]
        # Still silent: the episode was already reported.
        assert detector.check(beats, now=110.0) == []

    def test_resumed_worker_rearms(self):
        detector = self.make(workers=1)
        assert detector.check((100.0,), now=106.0) == [(0, 6.0)]
        assert detector.check((107.0,), now=108.0) == []  # beating again
        assert detector.check((107.0,), now=113.0) == [(0, 6.0)]

    def test_unstarted_workers_are_not_stalls(self):
        detector = self.make()
        assert detector.check((0.0, 0.0), now=1000.0) == []

    def test_threshold_is_inclusive(self):
        detector = self.make(threshold=5.0)
        assert detector.check((100.0, 100.0), now=105.0) \
            == [(0, 5.0), (1, 5.0)]

    def test_default_threshold_and_validation(self):
        assert StallDetector(1).threshold_seconds == WORKER_STALL_SECONDS
        with pytest.raises(ValueError):
            StallDetector(1, threshold_seconds=0.0)
