"""Tests of the cell-parallel experiment runner."""

from __future__ import annotations

import pytest

from repro.parallel.cells import CellSpec, run_cell_task, run_cells, specs_for_sweep
from repro.protocols.catalog import default_catalog

#: Fields that legitimately differ between runs of the same cell: wall
#: clocks, and the telemetry block (throughput, RSS, span timings).
TIMING_FIELDS = ("elapsed_seconds", "wall_seconds", "telemetry")


def stable(record):
    return {key: value for key, value in record.items() if key not in TIMING_FIELDS}


class TestRunCellTask:
    def test_verified_cell(self):
        record = run_cell_task(CellSpec(key="multicast-2-1-0-1").to_task())
        assert record["verified"] and record["ok"]
        assert record["cell"] == "multicast-2-1-0-1"
        assert record["states_visited"] > 0
        assert not record["expect_violation"]

    def test_violating_cell_is_expected(self):
        record = run_cell_task(
            CellSpec(key="storage-3-2-wrong", strategy="spor").to_task()
        )
        assert not record["verified"]
        assert record["expect_violation"] and record["ok"]
        assert record["counterexample_steps"] > 0

    def test_inner_parallel_bfs_cell(self):
        serial = run_cell_task(
            CellSpec(key="multicast-2-1-0-1", strategy="bfs", workers=1).to_task()
        )
        parallel = run_cell_task(
            CellSpec(key="multicast-2-1-0-1", strategy="bfs", workers=2).to_task()
        )
        assert serial["states_visited"] == parallel["states_visited"]
        assert parallel["workers"] == 2

    def test_truncated_search_is_not_ok(self):
        # Seeing 5 states of a verified cell proves nothing: the record must
        # not claim agreement with the paper's expected outcome.
        record = run_cell_task(CellSpec(key="paxos-2-2-1", max_states=5).to_task())
        assert record["verified"] and not record["complete"]
        assert not record["ok"]

    def test_truncated_search_that_found_the_expected_ce_is_ok(self):
        # stop-at-first-violation reports complete=False, but a found
        # counterexample is conclusive evidence.
        record = run_cell_task(CellSpec(key="storage-3-2-wrong").to_task())
        assert not record["verified"] and not record["complete"]
        assert record["ok"]

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            run_cell_task(CellSpec(key="paxos-99-99-99").to_task())

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            run_cell_task(CellSpec(key="paxos-2-2-1", model="triple").to_task())


class TestRunCells:
    SPECS = (
        CellSpec(key="multicast-2-1-0-1"),
        CellSpec(key="multicast-3-0-1-1"),
        CellSpec(key="storage-3-1"),
    )

    def test_serial_and_pool_agree(self):
        serial = run_cells(self.SPECS, workers=1)
        pooled = run_cells(self.SPECS, workers=2)
        assert [stable(record) for record in serial] == [
            stable(record) for record in pooled
        ]
        # Results come back in spec order regardless of completion order.
        assert [record["cell"] for record in pooled] == [
            spec.key for spec in self.SPECS
        ]

    def test_single_spec_stays_in_process(self):
        records = run_cells(self.SPECS[:1], workers=4)
        assert len(records) == 1 and records[0]["ok"]


class TestSpecsForSweep:
    def test_defaults_cover_catalog(self):
        specs = specs_for_sweep()
        assert [spec.key for spec in specs] == [
            entry.key for entry in default_catalog("small")
        ]
        assert all(spec.model == "quorum" for spec in specs)

    def test_model_grid(self):
        specs = specs_for_sweep(
            keys=["paxos-2-2-1"], models=("quorum", "single"), strategy="dpor"
        )
        assert [(spec.key, spec.model) for spec in specs] == [
            ("paxos-2-2-1", "quorum"),
            ("paxos-2-2-1", "single"),
        ]
        assert all(spec.strategy == "dpor" for spec in specs)

    def test_unknown_key_rejected_upfront(self):
        with pytest.raises(KeyError):
            specs_for_sweep(keys=["nope"])


class TestUnsupportedPlansAcrossThePool:
    def test_pool_workers_propagate_the_structured_error(self):
        # Regression: UnsupportedPlanError used not to survive pickling, so
        # a rejection inside a pool worker deadlocked pool.map forever
        # instead of surfacing the diagnostic.
        from repro.engine import UnsupportedPlanError
        from repro.parallel.cells import CellSpec, run_cells

        specs = [
            CellSpec(key="multicast-2-1-0-1", backend="worksteal"),  # workers=1
            CellSpec(key="multicast-3-0-1-1", backend="worksteal"),
        ]
        with pytest.raises(UnsupportedPlanError, match="nearest supported"):
            run_cells(specs, workers=2)
