"""Work-stealing parallel DFS: engine semantics, plumbing and determinism.

The exhaustive count parity across worker counts lives in the conformance
matrix (``tests/integration/test_strategy_matrix.py``); this module covers
the engine's own contract: the deque/termination protocol, counterexample
rebuild determinism, budget handling, the serial fallbacks, and the wiring
through ``ModelChecker`` / ``CellSpec`` / the CLI.
"""

from __future__ import annotations

import io
import multiprocessing
import random
from dataclasses import dataclass

import pytest

from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy
from repro.checker.property import Invariant
from repro.checker.search import dfs_search
from repro.cli import main as cli_main
from repro.mp import ActionContext, LporAnnotation, ProtocolBuilder, SendSpec, exact_quorum
from repro.mp.process import LocalState
from repro.mp.semantics import apply_execution
from repro.parallel import CellSpec, parallel_dfs_search, run_cell_task, run_cells
from repro.parallel.worksteal import WorkStealingDeques
from repro.protocols.catalog import multicast_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the work-stealing search requires the fork start method",
)


# --------------------------------------------------------------------------- #
# A seeded violating protocol whose counterexamples all have one length
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Voter(LocalState):
    voted: bool = False


@dataclass(frozen=True)
class _Collector(LocalState):
    decided: bool = False


def _vote(local, _messages, ctx: ActionContext):
    ctx.send("collector", "VOTE", choice="yes")
    return local.update(voted=True)


def _collect(local, messages, _ctx: ActionContext):
    return local.update(decided=True)


def build_seeded_violation(seed: int):
    """A unanimity protocol drawn from ``seed``: N voters, quorum of N.

    The collector can only decide after *every* voter has cast, so each of
    the N! interleavings reaches a violating state after exactly N + 1
    transitions — every counterexample has the same length, whichever
    worker finds it first.
    """
    voters = random.Random(seed).randint(2, 4)
    builder = ProtocolBuilder(f"seeded-violation-{seed}")
    voter_ids = tuple(f"voter{i + 1}" for i in range(voters))
    builder.add_process("collector", "collector", _Collector())
    for pid in voter_ids:
        builder.add_process(pid, "voter", _Voter())
        builder.add_transition(
            name=f"CAST@{pid}",
            process_id=pid,
            message_type="CAST",
            action=_vote,
            annotation=LporAnnotation(
                sends=(SendSpec("VOTE", recipients=frozenset({"collector"})),),
                possible_senders=frozenset({"driver"}),
                starts_instance=True,
            ),
        )
        builder.trigger("CAST", pid)
    builder.add_transition(
        name="VOTE@collector",
        process_id="collector",
        message_type="VOTE",
        quorum=exact_quorum(voters),
        action=_collect,
        annotation=LporAnnotation(
            possible_senders=frozenset(voter_ids),
            visible=True,
            finishes_instance=True,
        ),
    )
    invariant = Invariant(
        name="collector-never-decides",
        predicate=lambda state, _protocol: not state.local("collector").decided,
    )
    return builder.build(), invariant, voters


class TestCounterexampleDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_trace_length_is_identical_at_any_worker_count(self, seed):
        protocol, invariant, voters = build_seeded_violation(seed)
        serial = dfs_search(protocol, invariant)
        assert not serial.verified
        assert len(serial.counterexample.steps) == voters + 1
        for workers in (1, 2, 4):
            protocol, invariant, _ = build_seeded_violation(seed)
            outcome = parallel_dfs_search(protocol, invariant, workers=workers)
            assert not outcome.verified
            assert outcome.counterexample is not None
            assert len(outcome.counterexample.steps) == len(serial.counterexample.steps)

    def test_rebuilt_counterexample_is_a_real_violating_path(self):
        entry = multicast_entry(2, 1, 2, 1)
        protocol = entry.quorum_model()
        outcome = parallel_dfs_search(protocol, entry.invariant, workers=2)
        counterexample = outcome.counterexample
        assert counterexample is not None
        cursor = counterexample.initial_state
        assert cursor == protocol.initial_state()
        for step in counterexample.steps:
            cursor = apply_execution(cursor, step.execution)
            assert cursor == step.state
        assert not entry.invariant.holds_in(cursor, protocol)


class TestEngineSemantics:
    def test_workers_one_is_exactly_the_serial_search(self):
        entry = multicast_entry(2, 1, 0, 1)
        serial = dfs_search(entry.quorum_model(), entry.invariant)
        delegated = parallel_dfs_search(entry.quorum_model(), entry.invariant, workers=1)
        assert delegated.verified == serial.verified
        assert delegated.statistics.states_visited == serial.statistics.states_visited
        assert delegated.statistics.max_depth == serial.statistics.max_depth

    def test_fallback_to_serial_without_fork(self, monkeypatch):
        import repro.parallel.dfs as dfs_module

        monkeypatch.setattr(dfs_module, "default_mp_context", lambda: None)
        entry = multicast_entry(2, 1, 0, 1)
        with pytest.warns(RuntimeWarning, match="fork-capable"):
            outcome = parallel_dfs_search(entry.quorum_model(), entry.invariant, workers=2)
        assert outcome.verified
        assert outcome.statistics.states_visited == 45

    def test_violated_initial_state_short_circuits(self):
        entry = multicast_entry(2, 1, 0, 1)
        never = Invariant(name="never", predicate=lambda _s, _p: False)
        outcome = parallel_dfs_search(entry.quorum_model(), never, workers=2)
        assert not outcome.verified and not outcome.complete
        assert outcome.counterexample is not None
        assert outcome.counterexample.steps == ()

    def test_max_states_truncates_without_claiming_completeness(self):
        entry = storage_entry(3, 1)
        config = SearchConfig(max_states=50)
        outcome = parallel_dfs_search(
            entry.quorum_model(), entry.invariant, config, workers=2
        )
        assert outcome.verified
        assert not outcome.complete
        assert outcome.statistics.states_visited >= 50

    def test_max_depth_truncates_without_claiming_completeness(self):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(max_depth=3)
        outcome = parallel_dfs_search(
            entry.quorum_model(), entry.invariant, config, workers=2
        )
        assert outcome.verified
        assert not outcome.complete
        assert outcome.statistics.states_visited < 45

    def test_exploration_continues_past_violations_when_asked(self):
        protocol, invariant, _voters = build_seeded_violation(0)
        config = SearchConfig(stop_at_first_violation=False)
        serial = dfs_search(protocol, invariant, config)
        protocol, invariant, _voters = build_seeded_violation(0)
        outcome = parallel_dfs_search(protocol, invariant, config, workers=2)
        assert not outcome.verified
        assert outcome.complete
        assert outcome.counterexample is not None
        assert outcome.statistics.states_visited == serial.statistics.states_visited


class TestStripedClaimTable:
    def test_full_stripe_still_reports_revisits(self):
        from repro.parallel.worksteal import StripedClaimTable

        # One stripe, four slots, inserts capped at three: re-claiming an
        # existing fingerprint must be a revisit (False), never a
        # capacity error; only a *new* claim overflows.
        table = StripedClaimTable(capacity=4, stripes=1)
        claimed = []
        fingerprint = 0
        while len(claimed) < 3:
            if table.add_fingerprint(fingerprint):
                claimed.append(fingerprint)
            fingerprint += 1
        for seen in claimed:
            assert table.add_fingerprint(seen) is False
        with pytest.raises(RuntimeError, match="full"):
            while True:
                fingerprint += 1
                table.add_fingerprint(fingerprint)


class TestWorkStealingDeques:
    @pytest.fixture()
    def manager(self):
        context = multiprocessing.get_context("fork")
        manager = context.Manager()
        yield manager
        manager.shutdown()

    def test_owner_pops_lifo_thief_steals_oldest(self, manager):
        deques = WorkStealingDeques(3, manager)
        deques.publish(0, "old")
        deques.publish(0, "new")
        deques.publish(1, "other")
        # Worker 2 steals from the busiest victim (worker 0) at the tail:
        # the oldest published frame, i.e. the shallowest subtree.
        assert deques.next_task(2) == "old"
        assert deques.steal_count() == 1
        # The owner pops its own head first (depth-first locality).
        assert deques.next_task(0) == "new"
        assert deques.next_task(1) == "other"
        assert deques.publish_count() == 3

    def test_last_resigner_declares_termination(self, manager):
        deques = WorkStealingDeques(2, manager)
        assert deques.busy_workers() == 2
        assert deques.next_task(0) is None
        assert not deques.done.is_set()
        assert deques.next_task(1) is None
        assert deques.done.is_set()

    def test_acquire_rejoins_the_busy_set_atomically(self, manager):
        deques = WorkStealingDeques(2, manager)
        assert deques.next_task(0) is None
        assert deques.busy_workers() == 1
        deques.publish(1, "frame")
        assert deques.try_acquire(0) == "frame"
        assert deques.busy_workers() == 2
        # Both workers out of work and deques empty: termination.
        assert deques.next_task(0) is None
        assert deques.next_task(1) is None
        assert deques.done.is_set()


class TestCheckerAndCellPlumbing:
    def test_strategy_aliases_resolve(self):
        assert Strategy.DFS is Strategy.UNREDUCED
        assert Strategy.STUBBORN is Strategy.SPOR
        assert Strategy("dfs") is Strategy.UNREDUCED
        assert Strategy("stubborn") is Strategy.SPOR

    @pytest.mark.parametrize("strategy", [Strategy.DFS, Strategy.STUBBORN, Strategy.SPOR_NET])
    def test_workers_flow_through_the_checker(self, strategy):
        entry = multicast_entry(2, 1, 0, 1)
        serial = ModelChecker(entry.quorum_model(), entry.invariant).run(strategy)
        parallel = ModelChecker(
            entry.quorum_model(), entry.invariant, CheckerOptions(workers=2)
        ).run(strategy)
        assert parallel.verified == serial.verified
        assert parallel.strategy == serial.strategy

    def test_dpor_rejects_workers_with_a_diagnostic(self):
        entry = multicast_entry(2, 1, 0, 1)
        checker = ModelChecker(
            entry.quorum_model(), entry.invariant, CheckerOptions(workers=2)
        )
        with pytest.raises(ValueError, match="backtrack sets"):
            checker.run(Strategy.DPOR)

    def test_stateless_search_rejects_workers_with_a_diagnostic(self):
        # The claim table has no stateless mode; refusing loudly beats
        # silently running a stateful search under a stateless label.
        entry = multicast_entry(2, 1, 0, 1)
        checker = ModelChecker(
            entry.quorum_model(),
            entry.invariant,
            CheckerOptions(search=SearchConfig(stateful=False), workers=2),
        )
        with pytest.raises(ValueError, match="stateful"):
            checker.run(Strategy.DFS)

    def test_cell_spec_runs_the_worksteal_axis(self):
        record = run_cell_task(
            CellSpec(key="multicast-2-1-0-1", strategy="stubborn", workers=2).to_task()
        )
        assert record["verified"] is True
        assert record["ok"] is True
        assert record["workers"] == 2

    def test_inner_parallel_cells_bypass_the_daemonic_pool(self):
        # A pool worker cannot fork the in-cell searches; run_cells must
        # fall back to the in-process loop instead of crashing.
        specs = [
            CellSpec(key="multicast-2-1-0-1", strategy="dfs", workers=2),
            CellSpec(key="multicast-3-0-1-1", strategy="dfs", workers=2),
        ]
        records = run_cells(specs, workers=2)
        assert [record["ok"] for record in records] == [True, True]

    def test_cli_check_worksteal(self):
        stream = io.StringIO()
        code = cli_main(
            ["check", "multicast-2-1-0-1", "--strategy", "dfs", "--workers", "2"],
            stream=stream,
        )
        assert code == 0
        assert "Verified" in stream.getvalue()


class TestLiveProgress:
    """In-flight ``progress`` events from the shared claim counter."""

    def test_progress_ticks_arrive_before_the_worker_reports(self):
        from repro.engine.events import CollectingObserver

        entry = storage_entry(3, 2, wrong_specification=True)
        events = CollectingObserver()
        outcome = parallel_dfs_search(
            entry.quorum_model(),
            entry.invariant,
            # Exhaustive (no early stop), so the >10k-state cell is
            # guaranteed to cross several PROGRESS_INTERVAL boundaries
            # while the coordinator is still polling.
            config=SearchConfig(stop_at_first_violation=False),
            workers=2,
            observer=events,
        )
        assert outcome.statistics.states_visited > 1000
        kinds = events.kinds()
        assert "progress" in kinds, "no in-flight progress tick was emitted"
        # Every progress tick is live: emitted while workers were still
        # running, i.e. strictly before the end-of-run worker reports.
        assert kinds.index("progress") < kinds.index("worker-report")
        ticks = [e.payload["states_visited"] for e in events.events
                 if e.kind == "progress"]
        assert ticks == sorted(ticks)
        assert all(tick <= outcome.statistics.states_visited for tick in ticks)
