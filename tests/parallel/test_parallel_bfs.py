"""Serial/parallel parity of the frontier-parallel breadth-first search.

The coordinator promises that on every run that completes its levels the
visited set equals the serial BFS closure exactly — same state counts, same
transition counts, same revisit counts, same depth.  These tests pin that
promise across worker counts on toy protocols and a sample of Table-I
cells, plus the verdict/counterexample-depth parity on violating cells
(where serial BFS stops mid-level, so raw counts are not comparable).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy
from repro.checker.search import bfs_search
from repro.parallel import default_mp_context, parallel_bfs_search
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="frontier-parallel search requires the fork start method",
)

#: Verified Table-I cells small enough for exhaustive parity runs.
VERIFIED_ENTRIES = (
    paxos_entry(2, 2, 1),
    multicast_entry(3, 0, 1, 1),
    multicast_entry(2, 1, 0, 1),
    storage_entry(3, 1),
)
ENTRY_IDS = [entry.key for entry in VERIFIED_ENTRIES]


def assert_exact_parity(serial, parallel):
    assert parallel.verified == serial.verified
    assert parallel.complete == serial.complete
    assert parallel.statistics.states_visited == serial.statistics.states_visited
    assert (
        parallel.statistics.transitions_executed
        == serial.statistics.transitions_executed
    )
    assert parallel.statistics.revisits == serial.statistics.revisits
    assert parallel.statistics.max_depth == serial.statistics.max_depth
    assert (
        parallel.statistics.enabled_set_computations
        == serial.statistics.enabled_set_computations
    )


class TestVerifiedCellParity:
    @pytest.mark.parametrize("entry", VERIFIED_ENTRIES, ids=ENTRY_IDS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_quorum_cell_counts_identical(self, entry, workers):
        invariant = entry.invariant
        serial = bfs_search(entry.quorum_model(), invariant)
        parallel = parallel_bfs_search(
            entry.quorum_model(), invariant, workers=workers
        )
        assert_exact_parity(serial, parallel)

    @pytest.mark.parametrize("store", ["full", "fingerprint", "sharded-fingerprint"])
    def test_store_kinds_agree(self, store):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(state_store=store)
        serial = bfs_search(entry.quorum_model(), entry.invariant, config)
        parallel = parallel_bfs_search(
            entry.quorum_model(), entry.invariant, config, workers=2
        )
        assert_exact_parity(serial, parallel)

    def test_toy_protocol_parity(self, ping_pong_two_rounds, vote_collection):
        from repro.checker.property import always_true

        for protocol in (ping_pong_two_rounds, vote_collection):
            serial = bfs_search(protocol, always_true())
            parallel = parallel_bfs_search(protocol, always_true(), workers=3)
            assert_exact_parity(serial, parallel)

    def test_depth_bound_parity(self):
        # Depth bounds apply at level barriers in both engines, so bounded
        # runs are count-exact too.
        entry = storage_entry(3, 1)
        config = SearchConfig(max_depth=5)
        serial = bfs_search(entry.quorum_model(), entry.invariant, config)
        parallel = parallel_bfs_search(
            entry.quorum_model(), entry.invariant, config, workers=2
        )
        assert not serial.complete and not parallel.complete
        assert_exact_parity(serial, parallel)


class TestViolatingCellParity:
    def test_verdict_and_counterexample_depth(self):
        entry = multicast_entry(2, 1, 2, 1)
        serial = bfs_search(entry.quorum_model(), entry.invariant)
        parallel = parallel_bfs_search(
            entry.quorum_model(), entry.invariant, workers=2
        )
        assert not serial.verified and not parallel.verified
        assert serial.counterexample is not None
        assert parallel.counterexample is not None
        # BFS counterexamples are depth-minimal, so both have the same length
        # even though the violating state itself may differ within the level.
        assert len(parallel.counterexample.steps) == len(serial.counterexample.steps)

    def test_counterexample_is_a_real_path(self):
        from repro.mp.semantics import apply_execution

        entry = storage_entry(3, 2, wrong_specification=True)
        protocol = entry.quorum_model()
        outcome = parallel_bfs_search(protocol, entry.invariant, workers=2)
        counterexample = outcome.counterexample
        assert counterexample is not None
        cursor = counterexample.initial_state
        assert cursor == protocol.initial_state()
        for step in counterexample.steps:
            cursor = apply_execution(cursor, step.execution)
            assert cursor == step.state
        assert not entry.invariant.holds_in(cursor, protocol)

    def test_track_parents_disabled_still_detects_violation(self):
        entry = multicast_entry(2, 1, 2, 1)
        outcome = parallel_bfs_search(
            entry.quorum_model(), entry.invariant, workers=2, track_parents=False
        )
        assert not outcome.verified
        assert outcome.counterexample is None

    def test_violated_initial_state_short_circuits(self, ping_pong):
        from repro.checker.property import Invariant

        never = Invariant(name="never", predicate=lambda state, protocol: False)
        outcome = parallel_bfs_search(ping_pong, never, workers=2)
        assert not outcome.verified and not outcome.complete
        assert outcome.counterexample is not None
        assert outcome.counterexample.steps == ()


class TestCheckerPlumbing:
    def test_strategy_bfs_with_workers(self):
        entry = multicast_entry(2, 1, 0, 1)
        serial = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.BFS)
        parallel = ModelChecker(
            entry.quorum_model(), entry.invariant, CheckerOptions(workers=2)
        ).run(Strategy.BFS)
        assert parallel.strategy == "bfs"
        assert parallel.verified == serial.verified
        assert (
            parallel.statistics.states_visited == serial.statistics.states_visited
        )

    def test_workers_rejected_for_dpor_only(self, ping_pong):
        # Since the work-stealing DFS landed, only DPOR remains serial-only
        # (its backtrack sets follow the serial stack and cannot be stolen).
        from repro.checker.property import always_true

        checker = ModelChecker(ping_pong, always_true(), CheckerOptions(workers=2))
        with pytest.raises(ValueError, match="backtrack"):
            checker.run(Strategy.DPOR)
        for strategy in (Strategy.UNREDUCED, Strategy.SPOR):
            assert checker.run(strategy).verified

    def test_workers_one_is_plain_serial_bfs(self):
        entry = multicast_entry(2, 1, 0, 1)
        result = ModelChecker(
            entry.quorum_model(), entry.invariant, CheckerOptions(workers=1)
        ).run(Strategy.BFS)
        assert result.verified
        assert result.stateful


def test_default_mp_context_is_fork_here():
    context = default_mp_context()
    assert context is not None
    assert context.get_start_method() == "fork"
