"""Unit tests of the sharded fingerprint store and its routing function."""

from __future__ import annotations

import pickle

import pytest

from repro.checker.search import SearchConfig, bfs_search, dfs_search
from repro.checker.statestore import (
    STORE_KINDS,
    FingerprintStore,
    ShardedFingerprintStore,
    make_state_store,
    mix_fingerprint,
    shard_of,
)
from repro.mp.semantics import state_graph_edges
from repro.protocols.multicast import agreement_invariant
from repro.protocols.catalog import multicast_entry


class TestRouting:
    def test_shard_in_range(self):
        for fingerprint in (-(2 ** 70), -1, 0, 1, 42, 2 ** 63, 2 ** 70):
            for shards in (1, 2, 3, 8, 16):
                assert 0 <= shard_of(fingerprint, shards) < shards

    def test_deterministic(self):
        assert shard_of(12345, 7) == shard_of(12345, 7)
        assert mix_fingerprint(12345) == mix_fingerprint(12345)

    def test_single_shard_routes_everything_to_zero(self):
        assert all(shard_of(fp, 1) == 0 for fp in range(-50, 50))

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError):
            shard_of(1, 0)
        with pytest.raises(ValueError):
            ShardedFingerprintStore(num_shards=0)

    def test_mixing_spreads_consecutive_ints(self):
        # Consecutive raw hashes land in one shard under a plain modulo by a
        # power of two only when the low bits are diffused; the mixer must
        # spread them across the whole partition.
        buckets = {shard_of(fp, 8) for fp in range(64)}
        assert len(buckets) == 8


class TestShardedFingerprintStore:
    def test_matches_flat_fingerprint_store(self, ping_pong_two_rounds):
        states, _ = state_graph_edges(ping_pong_two_rounds)
        flat = FingerprintStore()
        sharded = ShardedFingerprintStore(num_shards=4)
        for state in sorted(states, key=lambda s: s.fingerprint()):
            assert flat.add(state) == sharded.add(state)
        assert len(flat) == len(sharded)
        for state in states:
            assert state in sharded

    def test_shard_sizes_form_partition(self, vote_collection):
        states, _ = state_graph_edges(vote_collection)
        store = ShardedFingerprintStore(num_shards=4)
        for state in states:
            store.add(state)
        assert sum(store.shard_sizes()) == len(store) == len(states)
        # Every fingerprint must live in exactly the shard that owns it.
        for state in states:
            owner = store.shard_of(state.fingerprint())
            holders = [
                index
                for index in range(store.num_shards)
                if state.fingerprint() in store.shard_contents(index)
            ]
            assert holders == [owner]

    def test_add_is_idempotent(self, ping_pong):
        store = ShardedFingerprintStore(num_shards=2)
        initial = ping_pong.initial_state()
        assert store.add(initial)
        assert not store.add(initial)
        assert len(store) == 1

    def test_pickle_round_trip(self, vote_collection):
        states = list(state_graph_edges(vote_collection)[0])
        store = ShardedFingerprintStore(num_shards=3)
        for state in states:
            store.add(state)
        restored = pickle.loads(pickle.dumps(store))
        assert restored.num_shards == store.num_shards
        assert restored.shard_sizes() == store.shard_sizes()
        for state in states:
            assert restored.contains_fingerprint(state.fingerprint())


class TestFactory:
    def test_new_kind(self):
        store = make_state_store("sharded-fingerprint", shards=5)
        assert isinstance(store, ShardedFingerprintStore)
        assert store.num_shards == 5

    def test_kinds_catalogued(self):
        for kind in STORE_KINDS:
            assert make_state_store(kind) is not None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_state_store("sharded-banana")


class TestSearchWithShardedStore:
    """The sharded store is a drop-in for the serial searches too."""

    @pytest.mark.parametrize("search", [dfs_search, bfs_search])
    def test_counts_match_flat_fingerprint_store(self, search):
        entry = multicast_entry(2, 1, 0, 1)
        invariant = agreement_invariant()
        flat = search(
            entry.quorum_model(), invariant, SearchConfig(state_store="fingerprint")
        )
        sharded = search(
            entry.quorum_model(),
            invariant,
            SearchConfig(state_store="sharded-fingerprint"),
        )
        assert sharded.verified == flat.verified
        assert sharded.statistics.states_visited == flat.statistics.states_visited
        assert (
            sharded.statistics.transitions_executed
            == flat.statistics.transitions_executed
        )
