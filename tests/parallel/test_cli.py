"""End-to-end tests of the ``python -m repro`` command line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


class TestCells:
    def test_lists_catalog(self):
        code, output = run_cli(["cells"])
        assert code == 0
        assert "paxos-2-2-1" in output
        assert "expected: CE" in output


class TestEngines:
    def test_lists_every_registered_engine_with_capabilities(self):
        code, output = run_cli(["engines"])
        assert code == 0
        for name in ("serial-dfs", "serial-bfs", "frontier-bfs",
                     "worksteal-dfs", "dpor"):
            assert name in output
        assert "reduction=none|spor|spor-net" in output
        assert "workers >= 2" in output


class TestCheckPlanAxes:
    def test_axis_flags_match_the_strategy_route(self, tmp_path):
        by_strategy = tmp_path / "strategy.json"
        by_axes = tmp_path / "axes.json"
        assert run_cli(
            ["check", "multicast-2-1-0-1", "--strategy", "spor",
             "--json", str(by_strategy)]
        )[0] == 0
        assert run_cli(
            ["check", "multicast-2-1-0-1", "--shape", "dfs",
             "--reduction", "spor", "--json", str(by_axes)]
        )[0] == 0
        first = json.loads(by_strategy.read_text())["results"][0]
        second = json.loads(by_axes.read_text())["results"][0]
        for key in ("verified", "states_visited", "strategy",
                    "shape", "reduction", "backend", "engine"):
            assert first[key] == second[key]

    def test_records_carry_the_resolved_axes(self, tmp_path):
        target = tmp_path / "check.json"
        code, _ = run_cli(
            ["check", "multicast-2-1-0-1", "--strategy", "bfs",
             "--json", str(target)]
        )
        assert code == 0
        record = json.loads(target.read_text())["results"][0]
        assert record["shape"] == "bfs"
        assert record["reduction"] == "none"
        assert record["backend"] == "serial"
        assert record["engine"] == "serial-bfs"

    def test_progress_streams_the_event_feed(self):
        code, output = run_cli(
            ["check", "multicast-2-1-0-1", "--strategy", "bfs", "--progress"]
        )
        assert code == 0
        assert "[serial-bfs]" in output
        assert "level" in output

    def test_workers_zero_is_serial_in_both_forms(self):
        # The legacy 0-means-serial spelling must behave identically through
        # the strategy form and the equivalent axis form.
        for argv in (
            ["check", "multicast-2-1-0-1", "--strategy", "spor",
             "--workers", "0"],
            ["check", "multicast-2-1-0-1", "--shape", "dfs",
             "--reduction", "spor", "--workers", "0"],
        ):
            code, output = run_cli(argv)
            assert code == 0
            assert "Verified" in output

    def test_strategy_and_axis_flags_are_mutually_exclusive(self):
        # Mixing the two forms would have to silently drop one of them
        # (e.g. --strategy spor --shape dfs running unreduced), so it is an
        # explicit usage error instead.
        code, output = run_cli(
            ["check", "multicast-2-1-0-1", "--strategy", "spor",
             "--shape", "dfs"]
        )
        assert code == 2
        assert "alternative ways" in output

    def test_unsupported_axis_combinations_exit_with_the_diagnostic(self):
        code, output = run_cli(
            ["check", "multicast-2-1-0-1", "--reduction", "dpor",
             "--workers", "2"]
        )
        assert code == 2
        assert "backtrack sets" in output
        assert "nearest supported alternative" in output
        assert "Traceback" not in output


class TestCheck:
    def test_verified_cell_exits_zero(self):
        code, output = run_cli(["check", "multicast-2-1-0-1"])
        assert code == 0
        assert "Verified" in output

    def test_expected_violation_exits_zero(self):
        code, output = run_cli(["check", "storage-3-2-wrong"])
        assert code == 0
        assert "CE" in output

    def test_json_payload(self, tmp_path):
        target = tmp_path / "check.json"
        code, _ = run_cli(
            ["check", "multicast-2-1-0-1", "--strategy", "bfs", "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["results"][0]["cell"] == "multicast-2-1-0-1"
        assert payload["results"][0]["verified"] is True

    def test_parallel_bfs_matches_serial(self, tmp_path):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert run_cli(
            ["check", "storage-3-1", "--strategy", "bfs", "--json", str(serial_path)]
        )[0] == 0
        assert run_cli(
            [
                "check", "storage-3-1", "--strategy", "bfs",
                "--workers", "2", "--json", str(parallel_path),
            ]
        )[0] == 0
        serial = json.loads(serial_path.read_text())["results"][0]
        parallel = json.loads(parallel_path.read_text())["results"][0]
        assert serial["states_visited"] == parallel["states_visited"]

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            run_cli(["check", "not-a-cell"])


class TestSweepAndReport:
    def test_sweep_writes_bench_payload(self, tmp_path):
        code, output = run_cli(
            [
                "sweep", "--cells", "multicast-2-1-0-1,storage-3-1",
                "--workers", "2", "--output", str(tmp_path),
            ]
        )
        assert code == 0
        files = list(tmp_path.glob("BENCH_sweep_*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["kind"] == "sweep"
        assert len(payload["results"]) == 2
        assert "swept 2 cells" in output

    def test_serial_flag_forces_loop(self, tmp_path):
        code, output = run_cli(
            [
                "sweep", "--cells", "multicast-2-1-0-1", "--serial",
                "--workers", "8", "--output", str(tmp_path),
            ]
        )
        assert code == 0
        assert "serial loop" in output

    def test_report_aggregates_directory(self, tmp_path):
        for _ in range(2):
            assert run_cli(
                [
                    "sweep", "--cells", "multicast-2-1-0-1",
                    "--serial", "--output", str(tmp_path),
                ]
            )[0] == 0
        code, output = run_cli(["report", str(tmp_path)])
        assert code == 0
        assert "multicast-2-1-0-1" in output
        assert "2 payloads" in output

    def test_report_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_cli(["report", str(tmp_path / "missing")])


class TestBench:
    def test_bench_emits_sweep_comparison(self, tmp_path):
        code, output = run_cli(
            [
                "bench", "--cells", "multicast-2-1-0-1", "--workers", "2",
                "--skip-frontier", "--output", str(tmp_path), "--label", "t",
            ]
        )
        assert code == 0
        assert "cell-parallel sweep" in output
        files = list(tmp_path.glob("BENCH_bench_t_*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["sweep_serial_seconds"] > 0
        assert payload["sweep_parallel_seconds"] > 0
        modes = {record["batch_mode"] for record in payload["results"]}
        # The default strategy (spor) is DFS-shaped, so the work-stealing
        # axis runs alongside the cell-parallel comparison.
        assert modes == {"serial-loop", "cell-parallel", "worksteal"}
        worksteal = [
            record for record in payload["results"]
            if record["batch_mode"] == "worksteal"
        ]
        assert {record["workers"] for record in worksteal} == {1, 2}
        assert all(record["verified"] for record in worksteal)

    def test_bench_axes_can_be_skipped(self, tmp_path):
        code, _ = run_cli(
            [
                "bench", "--cells", "multicast-2-1-0-1", "--workers", "2",
                "--skip-frontier", "--skip-worksteal",
                "--output", str(tmp_path), "--label", "bare",
            ]
        )
        assert code == 0
        payload = json.loads(next(iter(tmp_path.glob("BENCH_bench_bare_*.json"))).read_text())
        modes = {record["batch_mode"] for record in payload["results"]}
        assert modes == {"serial-loop", "cell-parallel"}
