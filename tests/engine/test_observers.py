"""The progress/event observer API, across every engine."""

from __future__ import annotations

import io
import multiprocessing

import pytest

from repro.engine import (
    CheckPlan,
    CollectingObserver,
    EngineEvent,
    MultiObserver,
    ProgressPrinter,
    run_plan,
)
from repro.engine.events import emit
from repro.protocols.catalog import multicast_entry, paxos_entry

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

VERIFIED = multicast_entry(2, 1, 0, 1)     # 45 states, verified
VIOLATING = multicast_entry(2, 1, 2, 1)    # expected counterexample


def run_observed(entry, plan):
    observer = CollectingObserver()
    result = run_plan(entry.quorum_model(), entry.invariant, plan, observer=observer)
    return result, observer


class TestObserverPrimitives:
    def test_emit_tolerates_none(self):
        emit(None, "progress", states_visited=1)  # must not raise

    def test_collecting_observer_counts_and_last(self):
        observer = CollectingObserver()
        emit(observer, "progress", states_visited=1)
        emit(observer, "progress", states_visited=2)
        assert observer.kinds() == ["progress", "progress"]
        assert observer.counts() == {"progress": 2}
        assert observer.last("progress").payload["states_visited"] == 2
        assert observer.last("violation-found") is None

    def test_multi_observer_fans_out(self):
        first, second = CollectingObserver(), CollectingObserver()
        emit(MultiObserver([first, second]), "progress", states_visited=7)
        assert first.counts() == second.counts() == {"progress": 1}

    def test_events_are_frozen(self):
        event = EngineEvent(kind="progress", payload={"states_visited": 1})
        with pytest.raises(AttributeError):
            event.kind = "other"


class TestOneStreamPerEngine:
    """Every engine brackets its run with started/finished on one stream."""

    @pytest.mark.parametrize("plan", [
        CheckPlan(),
        CheckPlan(reduction="spor"),
        CheckPlan(reduction="dpor"),
        CheckPlan(shape="bfs"),
    ], ids=["serial-dfs", "serial-spor", "dpor", "serial-bfs"])
    def test_serial_engines_bracket_the_run(self, plan):
        result, observer = run_observed(VERIFIED, plan)
        kinds = observer.kinds()
        assert kinds[0] == "search-started"
        assert kinds[-1] == "search-finished"
        started = observer.events[0].payload
        assert started["engine"] == result.engine
        assert started["plan"]["shape"] == plan.shape
        finished = observer.last("search-finished").payload
        assert finished["verified"] is True
        assert finished["states_visited"] == result.statistics.states_visited

    def test_serial_bfs_reports_levels(self):
        result, observer = run_observed(VERIFIED, CheckPlan(shape="bfs"))
        levels = [e for e in observer.events if e.kind == "level-completed"]
        assert levels
        depths = [event.payload["depth"] for event in levels]
        assert depths == sorted(depths)
        assert depths[-1] == result.statistics.max_depth
        assert sum(event.payload["new_states"] for event in levels) \
            == result.statistics.states_visited - 1

    def test_violations_are_events(self):
        result, observer = run_observed(VIOLATING, CheckPlan())
        assert not result.verified
        assert observer.counts().get("violation-found", 0) >= 1

    @pytest.mark.parametrize("plan", [
        CheckPlan(),
        CheckPlan(shape="bfs"),
        CheckPlan(reduction="dpor"),
        pytest.param(CheckPlan(workers=2),
                     marks=pytest.mark.skipif(not HAS_FORK, reason="fork")),
        pytest.param(CheckPlan(shape="bfs", workers=2),
                     marks=pytest.mark.skipif(not HAS_FORK, reason="fork")),
    ], ids=["serial-dfs", "serial-bfs", "dpor", "worksteal", "frontier"])
    def test_initial_state_violations_are_events_too(self, plan):
        # The initial-state check predates the exploration loop in every
        # engine; it must not bypass the event contract.
        from repro.checker.property import Invariant

        never = Invariant(name="never", predicate=lambda _s, _p: False)
        observer = CollectingObserver()
        result = run_plan(
            VERIFIED.quorum_model(), never, plan, observer=observer
        )
        assert not result.verified
        assert observer.counts().get("violation-found", 0) == 1
        assert observer.last("violation-found").payload["depth"] == 0

    def test_progress_ticks_fire_at_the_interval(self, monkeypatch):
        monkeypatch.setattr("repro.checker.search.PROGRESS_INTERVAL", 10)
        entry = paxos_entry(2, 2, 1)  # 168 states
        result, observer = run_observed(entry, CheckPlan())
        ticks = [e for e in observer.events if e.kind == "progress"]
        assert len(ticks) == result.statistics.states_visited // 10
        assert ticks[0].payload["states_visited"] == 10

    def test_dpor_progress_ticks(self, monkeypatch):
        monkeypatch.setattr("repro.por.dpor.PROGRESS_INTERVAL", 50)
        _, observer = run_observed(paxos_entry(2, 2, 1), CheckPlan(reduction="dpor"))
        assert observer.counts().get("progress", 0) >= 1


@pytest.mark.skipif(not HAS_FORK, reason="parallel engines require fork")
class TestParallelStreams:
    def test_frontier_bfs_reports_levels_with_deltas(self):
        result, observer = run_observed(VERIFIED, CheckPlan(shape="bfs", workers=2))
        assert result.engine == "frontier-bfs"
        levels = [e for e in observer.events if e.kind == "level-completed"]
        assert levels
        assert all("deltas" in event.payload for event in levels)
        assert sum(event.payload["new_states"] for event in levels) \
            == result.statistics.states_visited - 1

    def test_worksteal_reports_every_worker(self):
        result, observer = run_observed(VERIFIED, CheckPlan(workers=2))
        assert result.engine == "worksteal-dfs"
        reports = [e for e in observer.events if e.kind == "worker-report"]
        assert len(reports) == 2
        assert {event.payload["worker"] for event in reports} == {0, 1}
        # Claims partition the non-initial states across workers.
        assert sum(event.payload["claimed"] for event in reports) \
            == result.statistics.states_visited - 1

    def test_worksteal_violation_event(self):
        result, observer = run_observed(VIOLATING, CheckPlan(workers=2))
        assert not result.verified
        assert observer.counts().get("violation-found", 0) == 1

    def test_bfs_violation_stream_shape_matches_serial(self):
        # Uniform-stream contract: on a violating cell with
        # stop-at-first-violation, neither BFS engine emits a
        # "level-completed" for the level that ended the search, so the
        # deepest level event sits strictly below the violation depth in
        # both — an observer deriving the violation's level from the stream
        # gets the same answer regardless of the engine.
        streams = {}
        for workers in (1, 2):
            result, observer = run_observed(
                VIOLATING, CheckPlan(shape="bfs", workers=workers)
            )
            assert not result.verified
            violation = observer.last("violation-found")
            levels = [e for e in observer.events if e.kind == "level-completed"]
            streams[workers] = (
                violation.payload["depth"],
                max(e.payload["depth"] for e in levels),
            )
            assert streams[workers][1] < streams[workers][0]
        assert streams[1] == streams[2]


class TestProgressPrinter:
    def test_renders_one_line_per_event(self):
        stream = io.StringIO()
        observer = ProgressPrinter(stream)
        result = run_plan(
            VERIFIED.quorum_model(), VERIFIED.invariant, CheckPlan(shape="bfs"),
            observer=observer,
        )
        output = stream.getvalue()
        assert "[serial-bfs]" in output
        assert "level" in output
        assert "Verified" in output
        assert f"{result.statistics.states_visited:,} states" in output
