"""Event-kind validation in ``emit`` and the ProgressPrinter rendering."""

from __future__ import annotations

import io

import pytest

from repro.engine.events import (
    EVENT_KINDS,
    EVENT_VALIDATION_ENV,
    CollectingObserver,
    ProgressPrinter,
    emit,
    known_event_kinds,
    register_event_kind,
)


class TestEmitValidation:
    def test_every_documented_kind_passes(self):
        observer = CollectingObserver()
        for kind in EVENT_KINDS:
            emit(observer, kind)
        assert observer.kinds() == list(EVENT_KINDS)

    def test_unknown_kind_raises_by_default(self, monkeypatch):
        monkeypatch.delenv(EVENT_VALIDATION_ENV, raising=False)
        observer = CollectingObserver()
        with pytest.raises(ValueError, match="unknown event kind 'serach-started'"):
            emit(observer, "serach-started")
        assert observer.events == []

    def test_the_error_names_the_escape_hatches(self, monkeypatch):
        monkeypatch.delenv(EVENT_VALIDATION_ENV, raising=False)
        with pytest.raises(ValueError, match="register_event_kind"):
            emit(CollectingObserver(), "nope")
        with pytest.raises(ValueError, match=EVENT_VALIDATION_ENV):
            emit(CollectingObserver(), "nope")

    def test_no_observer_skips_validation_entirely(self, monkeypatch):
        # The ``observer is None`` early-out comes first: the no-sink hot
        # path must not pay for (or trip over) kind validation.
        monkeypatch.delenv(EVENT_VALIDATION_ENV, raising=False)
        emit(None, "definitely-not-a-kind")  # must not raise

    def test_warn_mode_delivers_with_a_runtime_warning(self, monkeypatch):
        monkeypatch.setenv(EVENT_VALIDATION_ENV, "warn")
        observer = CollectingObserver()
        with pytest.warns(RuntimeWarning, match="unknown event kind"):
            emit(observer, "from-the-future", value=1)
        assert observer.kinds() == ["from-the-future"]

    @pytest.mark.parametrize("mode", ["off", "OFF", "0", "false"])
    def test_off_modes_deliver_silently(self, monkeypatch, mode):
        monkeypatch.setenv(EVENT_VALIDATION_ENV, mode)
        observer = CollectingObserver()
        emit(observer, "from-the-future")
        assert observer.kinds() == ["from-the-future"]

    def test_registered_extension_kinds_pass_strict_validation(self, monkeypatch):
        monkeypatch.delenv(EVENT_VALIDATION_ENV, raising=False)
        register_event_kind("custom-engine-tick")
        try:
            observer = CollectingObserver()
            emit(observer, "custom-engine-tick", value=3)
            assert observer.kinds() == ["custom-engine-tick"]
            assert "custom-engine-tick" in known_event_kinds()
        finally:
            from repro.engine import events

            events._known_kinds.discard("custom-engine-tick")

    def test_register_event_kind_rejects_empty(self):
        with pytest.raises(ValueError):
            register_event_kind("")

    def test_known_kinds_cover_the_documented_tuple(self):
        assert set(EVENT_KINDS) <= known_event_kinds()


class TestProgressPrinterRendering:
    def render(self, kind, **payload):
        stream = io.StringIO()
        emit(ProgressPrinter(stream), kind, **payload)
        return stream.getvalue()

    def test_search_started_prints_every_plan_axis(self):
        # Regression: the axes line used to stop at the backend, silently
        # dropping the successors and goal axes added by later plans.
        output = self.render(
            "search-started",
            engine="serial-ndfs-fast",
            protocol="crash-recovery-2-1",
            plan={
                "shape": "dfs", "reduction": "none", "store": "fingerprint",
                "backend": "serial", "workers": 1, "successors": "fast",
                "goal": "liveness", "stateful": True,
            },
        )
        assert "dfs/none/fingerprint/serial/fast/liveness" in output
        assert "[serial-ndfs-fast]" in output
        assert "crash-recovery-2-1" in output

    def test_search_started_appends_worker_multiplicity(self):
        plan = {"shape": "dfs", "reduction": "none", "store": "full",
                "backend": "worksteal", "workers": 4, "successors": "object",
                "goal": "invariant"}
        assert " x4 " in self.render(
            "search-started", engine="worksteal-dfs", protocol="p", plan=plan
        )
        plan_serial = dict(plan, backend="serial", workers=1)
        assert " x1 " not in self.render(
            "search-started", engine="serial-dfs", protocol="p", plan=plan_serial
        )

    def test_worker_stalled_renders_loudly(self):
        output = self.render("worker-stalled", worker=2, idle_seconds=6.25)
        assert "!! worker 2 stalled" in output
        assert "6.2s" in output

    @pytest.mark.parametrize(
        "kind", ["span-started", "span-finished", "worker-telemetry"]
    )
    def test_high_frequency_telemetry_kinds_stay_silent(self, kind):
        assert self.render(kind, span="search", worker=0) == ""
