"""The ``Strategy`` compatibility shim over the plan/registry layer.

Covers the two API-redesign satellites: explicit (non-value-aliased) alias
resolution for ``Strategy.DFS``/``Strategy.STUBBORN``, and the guarantee
that every legacy ``ModelChecker.run(Strategy.X)`` call resolves to a plan
with identical semantics.
"""

from __future__ import annotations

import pickle

import pytest

from repro.checker import (
    STRATEGY_ALIASES,
    CheckerOptions,
    ModelChecker,
    SearchConfig,
    Strategy,
    check_plan,
    plan_for_strategy,
)
from repro.engine import CheckPlan, run_plan
from repro.protocols.catalog import multicast_entry


class TestStrategyAliases:
    """Regression tests for identity and CLI strings (the alias table moved
    out of the enum body; the old value-aliased members silently shared
    string literals)."""

    def test_attribute_aliases_are_identical_objects(self):
        assert Strategy.DFS is Strategy.UNREDUCED
        assert Strategy.STUBBORN is Strategy.SPOR

    def test_cli_strings_resolve_through_the_alias_table(self):
        assert Strategy("dfs") is Strategy.UNREDUCED
        assert Strategy("stubborn") is Strategy.SPOR
        assert Strategy("unreduced") is Strategy.UNREDUCED
        assert Strategy("spor") is Strategy.SPOR

    def test_alias_table_is_explicit(self):
        assert STRATEGY_ALIASES == {"dfs": "unreduced", "stubborn": "spor"}

    def test_canonical_members_only_in_iteration(self):
        # No value-aliased members: iteration and __members__ stay canonical.
        assert [member.value for member in Strategy] == [
            "unreduced", "spor", "spor-net", "dpor", "bfs",
        ]
        assert set(Strategy.__members__) == {
            "UNREDUCED", "SPOR", "SPOR_NET", "DPOR", "BFS",
        }

    def test_alias_values_are_canonical(self):
        assert Strategy.DFS.value == "unreduced"
        assert Strategy.STUBBORN.value == "spor"

    def test_unknown_strings_still_raise(self):
        with pytest.raises(ValueError):
            Strategy("zigzag")

    def test_aliases_pickle_to_the_canonical_member(self):
        assert pickle.loads(pickle.dumps(Strategy.DFS)) is Strategy.UNREDUCED
        assert pickle.loads(pickle.dumps(Strategy.STUBBORN)) is Strategy.SPOR

    def test_constructor_accepts_members(self):
        assert Strategy(Strategy.DFS) is Strategy.UNREDUCED

    def test_subscript_lookup_resolves_aliases(self):
        # Regression: plain attribute aliases are invisible to
        # EnumMeta.__getitem__, so Strategy["DFS"] raised KeyError until the
        # metaclass routed failed lookups through the alias table.
        assert Strategy["DFS"] is Strategy.UNREDUCED
        assert Strategy["STUBBORN"] is Strategy.SPOR

    def test_subscript_lookup_keeps_canonical_names(self):
        assert Strategy["UNREDUCED"] is Strategy.UNREDUCED
        assert Strategy["SPOR"] is Strategy.SPOR
        assert Strategy["SPOR_NET"] is Strategy.SPOR_NET

    def test_subscript_lookup_still_raises_on_unknown_names(self):
        with pytest.raises(KeyError):
            Strategy["NOPE"]


class TestCheckerOptionsDefaults:
    def test_search_defaults_to_a_fresh_config(self):
        options = CheckerOptions()
        assert isinstance(options.search, SearchConfig)

    def test_instances_do_not_share_the_mutable_default(self):
        first, second = CheckerOptions(), CheckerOptions()
        assert first.search is not second.search
        first.search.max_states = 7
        assert second.search.max_states is None

    def test_explicit_search_none_still_means_defaults(self):
        # The historical default value; legacy callers spelled it out.
        options = CheckerOptions(search=None)
        assert isinstance(options.search, SearchConfig)
        assert plan_for_strategy(Strategy.SPOR, options).store == "full"


class TestPlanForStrategy:
    def test_unreduced(self):
        plan = plan_for_strategy(Strategy.UNREDUCED)
        assert (plan.shape, plan.reduction, plan.stateful) == ("dfs", "none", True)
        assert plan.backend == "auto"

    def test_shape_aliases_map_like_their_canonical_member(self):
        assert plan_for_strategy(Strategy.DFS) == plan_for_strategy(Strategy.UNREDUCED)
        assert plan_for_strategy("stubborn") == plan_for_strategy(Strategy.SPOR)

    def test_spor_variants(self):
        assert plan_for_strategy(Strategy.SPOR).reduction == "spor"
        assert plan_for_strategy(Strategy.SPOR_NET).reduction == "spor-net"

    def test_bfs_is_always_stateful(self):
        options = CheckerOptions(search=SearchConfig(stateful=False))
        plan = plan_for_strategy(Strategy.BFS, options)
        assert plan.shape == "bfs"
        assert plan.stateful
        assert plan.store == "full"

    def test_dpor_is_always_stateless(self):
        plan = plan_for_strategy(Strategy.DPOR)
        assert plan.reduction == "dpor"
        assert not plan.stateful
        assert plan.store == "none"

    def test_stateless_dfs_drops_the_store(self):
        options = CheckerOptions(search=SearchConfig(stateful=False))
        assert plan_for_strategy(Strategy.DFS, options).store == "none"

    def test_workers_zero_keeps_the_legacy_serial_meaning(self):
        # The old facade dispatched serially for any workers <= 1; 0 was a
        # documented "no pool" spelling and must not start raising.
        plan = plan_for_strategy(Strategy.DFS, CheckerOptions(workers=0))
        assert plan.workers == 1
        entry = multicast_entry(2, 1, 0, 1)
        result = ModelChecker(
            entry.quorum_model(), entry.invariant, CheckerOptions(workers=0)
        ).run(Strategy.DFS)
        assert result.verified
        assert result.engine == "serial-dfs"

    def test_options_carry_over(self):
        options = CheckerOptions(
            search=SearchConfig(
                state_store="fingerprint",
                state_store_shards=32,
                max_depth=4,
                max_states=100,
                max_seconds=2.0,
                stop_at_first_violation=False,
                check_deadlocks=True,
                engine_cache_capacity=64,
                fastpath_memo_capacity=16,
            ),
            seed_heuristic="first",
            workers=3,
        )
        plan = plan_for_strategy(Strategy.SPOR, options)
        assert plan.store == "fingerprint"
        assert plan.store_shards == 32
        assert plan.max_depth == 4
        assert plan.max_states == 100
        assert plan.max_seconds == 2.0
        assert not plan.stop_at_first_violation
        assert plan.check_deadlocks
        assert plan.engine_cache_capacity == 64
        assert plan.fastpath_memo_capacity == 16
        assert plan.seed_heuristic == "first"
        assert plan.workers == 3


class TestBothApisAgree:
    """The executable shim contract on a small cell: identical verdicts,
    counts and record fields whichever API the caller used."""

    ENTRY = multicast_entry(2, 1, 0, 1)

    @pytest.mark.parametrize(
        "strategy", [Strategy.DFS, Strategy.SPOR, Strategy.SPOR_NET,
                     Strategy.DPOR, Strategy.BFS],
        ids=["dfs", "spor", "spor-net", "dpor", "bfs"],
    )
    def test_run_equals_run_plan(self, strategy):
        legacy = ModelChecker(self.ENTRY.quorum_model(), self.ENTRY.invariant).run(strategy)
        plan = plan_for_strategy(strategy)
        direct = run_plan(self.ENTRY.quorum_model(), self.ENTRY.invariant, plan)
        assert legacy.verified == direct.verified
        assert legacy.statistics.states_visited == direct.statistics.states_visited
        assert legacy.strategy == direct.strategy
        assert legacy.stateful == direct.stateful
        assert legacy.engine == direct.engine
        assert legacy.plan == direct.plan

    def test_legacy_results_carry_the_resolved_plan(self):
        result = ModelChecker(self.ENTRY.quorum_model(), self.ENTRY.invariant).run(
            Strategy.SPOR
        )
        assert result.engine == "serial-dfs"
        assert result.plan.reduction == "spor"
        assert result.plan.backend == "serial"

    def test_check_plan_helper(self):
        result = check_plan(
            self.ENTRY.quorum_model(), self.ENTRY.invariant, CheckPlan(shape="bfs")
        )
        assert result.verified
        assert result.engine == "serial-bfs"

    def test_run_plan_warns_when_constructor_options_would_be_ignored(self):
        # Plans are self-contained; silently dropping explicitly supplied
        # CheckerOptions would be the downgrade the layer forbids.
        checker = ModelChecker(
            self.ENTRY.quorum_model(),
            self.ENTRY.invariant,
            CheckerOptions(workers=4),
        )
        with pytest.warns(UserWarning, match="ignores the CheckerOptions"):
            checker.run_plan(CheckPlan())

    def test_run_plan_without_options_does_not_warn(self, recwarn):
        ModelChecker(self.ENTRY.quorum_model(), self.ENTRY.invariant).run_plan(
            CheckPlan()
        )
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_run_plan_warns_on_post_construction_option_mutation(self):
        checker = ModelChecker(self.ENTRY.quorum_model(), self.ENTRY.invariant)
        checker.options.workers = 4
        with pytest.warns(UserWarning, match="ignores the CheckerOptions"):
            checker.run_plan(CheckPlan())

    def test_run_plan_with_default_options_does_not_warn(self, recwarn):
        # A default options object carries nothing run_plan could ignore.
        ModelChecker(
            self.ENTRY.quorum_model(), self.ENTRY.invariant, CheckerOptions()
        ).run_plan(CheckPlan())
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_run_plan_does_not_warn_when_the_plan_incorporates_the_options(
        self, recwarn
    ):
        # The warning's own advice — build the plan with plan_for_strategy
        # from the same options — must not itself trigger the warning.
        options = CheckerOptions(seed_heuristic="first")
        checker = ModelChecker(
            self.ENTRY.quorum_model(), self.ENTRY.invariant, options
        )
        checker.run_plan(plan_for_strategy(Strategy.SPOR, options))
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_run_plan_does_not_warn_when_rerunning_a_resolved_plan(self, recwarn):
        # CheckResult.plan carries the concretised backend; re-running it is
        # still "the plan derived from these options", not a mistake.
        options = CheckerOptions(seed_heuristic="first")
        checker = ModelChecker(
            self.ENTRY.quorum_model(), self.ENTRY.invariant, options
        )
        first = checker.run(Strategy.SPOR)
        assert first.plan.backend == "serial"
        checker.run_plan(first.plan)
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_run_plan_warning_check_tolerates_options_invalid_for_some_strategy(self):
        # A stateless 'none'-store options object cannot derive a BFS plan
        # (BFS is always stateful); the warning diagnostic must skip that
        # strategy, not crash a perfectly valid run_plan call.
        options = CheckerOptions(
            search=SearchConfig(stateful=False, state_store="none")
        )
        checker = ModelChecker(
            self.ENTRY.quorum_model(), self.ENTRY.invariant, options
        )
        with pytest.warns(UserWarning, match="ignores the CheckerOptions"):
            result = checker.run_plan(CheckPlan(reduction="spor"))
        assert result.verified

    def test_legacy_run_with_options_does_not_warn(self, recwarn):
        checker = ModelChecker(
            self.ENTRY.quorum_model(),
            self.ENTRY.invariant,
            CheckerOptions(seed_heuristic="first"),
        )
        checker.run(Strategy.SPOR)
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]
