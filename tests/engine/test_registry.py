"""Unit tests for the engine registry and plan resolution."""

from __future__ import annotations

import pytest

from repro.engine import (
    Capabilities,
    CheckPlan,
    Engine,
    EngineRegistry,
    UnsupportedPlanError,
    builtin_engines,
    default_registry,
    resolve,
)


class TestRegistryBasics:
    def test_default_registry_holds_every_builtin_engine(self):
        names = [engine.name for engine in default_registry().engines()]
        assert names == [
            "serial-dfs", "serial-bfs", "frontier-bfs", "worksteal-dfs", "dpor",
            "serial-ndfs",
            "serial-dfs-fast", "serial-bfs-fast", "frontier-bfs-fast",
            "worksteal-dfs-fast", "serial-ndfs-fast",
            "swarm", "swarm-parallel",
        ]

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_duplicate_names_rejected(self):
        registry = EngineRegistry(builtin_engines())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(builtin_engines()[0])

    def test_unnamed_engines_rejected(self):
        with pytest.raises(ValueError, match="name"):
            EngineRegistry().register(Engine())

    def test_incoherent_stateless_capabilities_rejected_at_registration(self):
        # Stateless plans always carry store='none'; an engine claiming
        # stateless support without that store could never match one.
        class IncoherentEngine(Engine):
            name = "incoherent"
            description = "stateless without the none store"
            capabilities = Capabilities(
                shapes=("dfs",),
                reductions=("none",),
                backends=("serial",),
                stores=("full",),
                statefulness=(True, False),
            )

        with pytest.raises(ValueError, match="store='none'"):
            EngineRegistry().register(IncoherentEngine())

    def test_nearest_plan_survives_the_stateless_store_normalisation(self):
        # Fixing the store axis of a stateless plan must also flip
        # statefulness, or CheckPlan.__post_init__ reverts the fix and the
        # "alternative" equals the rejected plan.
        caps = Capabilities(
            shapes=("dfs",),
            reductions=("none",),
            backends=("serial",),
            stores=("full",),
            statefulness=(True, False),
        )
        plan = CheckPlan(stateful=False)
        alternative = caps.nearest_plan(plan)
        assert alternative != plan
        assert caps.supports(alternative)
        assert alternative.stateful
        assert alternative.store == "full"

    def test_get_unknown_engine(self):
        with pytest.raises(KeyError, match="unknown engine"):
            default_registry().get("quantum")

    def test_empty_registry_cannot_resolve(self):
        with pytest.raises(ValueError, match="empty registry"):
            EngineRegistry().resolve(CheckPlan())

    def test_custom_engines_resolve_without_facade_edits(self):
        # The point of the registry: a new axis combination lands as one
        # registration, no if-chain edits anywhere.  Reduced BFS is
        # unsupported by every built-in engine; registering an engine that
        # claims it makes the same plan resolve.
        class ReducedBfsEngine(Engine):
            name = "reduced-bfs"
            description = "pretend reduced breadth-first engine"
            capabilities = Capabilities(
                shapes=("bfs",),
                reductions=("none", "spor"),
                backends=("serial",),
                stores=("full", "fingerprint"),
                statefulness=(True,),
                min_workers=1,
                max_workers=1,
            )

        plan = CheckPlan(shape="bfs", reduction="spor")
        registry = EngineRegistry(builtin_engines())
        with pytest.raises(UnsupportedPlanError):
            registry.resolve(plan)
        registry.register(ReducedBfsEngine())
        engine, resolved = registry.resolve(plan)
        assert engine.name == "reduced-bfs"
        assert resolved.backend == "serial"


class TestAutoBackendResolution:
    @pytest.mark.parametrize("plan,engine_name,backend", [
        (CheckPlan(), "serial-dfs", "serial"),
        (CheckPlan(reduction="spor"), "serial-dfs", "serial"),
        (CheckPlan(reduction="spor-net", workers=4), "worksteal-dfs", "worksteal"),
        (CheckPlan(workers=2), "worksteal-dfs", "worksteal"),
        (CheckPlan(shape="bfs"), "serial-bfs", "serial"),
        (CheckPlan(shape="bfs", workers=2), "frontier-bfs", "frontier"),
        (CheckPlan(reduction="dpor"), "dpor", "serial"),
        (CheckPlan(stateful=False), "serial-dfs", "serial"),
    ])
    def test_resolution_picks_the_backend_automatically(self, plan, engine_name, backend):
        engine, resolved = resolve(plan)
        assert engine.name == engine_name
        assert resolved.backend == backend
        # Resolution never rewrites any axis the caller pinned.
        for axis, value in plan.axes().items():
            if axis == "backend":
                continue
            assert resolved.axes()[axis] == value

    def test_explicit_backends_are_honoured(self):
        engine, resolved = resolve(CheckPlan(backend="worksteal", workers=2))
        assert engine.name == "worksteal-dfs"
        assert resolved.backend == "worksteal"


class TestStructuredDiagnostics:
    def test_dpor_rejects_workers_declaratively(self):
        with pytest.raises(UnsupportedPlanError, match="backtrack sets") as excinfo:
            resolve(CheckPlan(reduction="dpor", workers=2))
        error = excinfo.value
        assert error.axis == "workers"
        assert error.value == 2
        # The nearest supported alternative is itself runnable.
        engine, _ = resolve(error.alternative)
        assert engine.name == "dpor"

    def test_stateless_parallel_dfs_names_the_stateful_axis(self):
        with pytest.raises(UnsupportedPlanError, match="stateful") as excinfo:
            resolve(CheckPlan(stateful=False, workers=2))
        error = excinfo.value
        assert error.axis == "stateful"
        engine, _ = resolve(error.alternative)
        assert engine.name == "worksteal-dfs"

    def test_reduced_bfs_is_unsupported(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            resolve(CheckPlan(shape="bfs", reduction="spor"))
        error = excinfo.value
        assert error.axis in ("shape", "reduction")
        resolve(error.alternative)

    def test_explicit_worksteal_with_one_worker(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            resolve(CheckPlan(backend="worksteal", workers=1))
        resolve(excinfo.value.alternative)

    def test_message_names_axis_engine_and_alternative(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            resolve(CheckPlan(reduction="dpor", workers=4))
        message = str(excinfo.value)
        assert "workers" in message
        assert "dpor" in message
        assert "nearest supported alternative" in message


class TestSupportedPlans:
    def test_every_reported_combination_resolves_to_its_engine(self):
        registry = default_registry()
        combinations = list(registry.supported_plans(worker_counts=(1, 2, 4)))
        assert combinations
        for engine, plan in combinations:
            assert engine.capabilities.supports(plan)
            resolved_engine, _ = registry.resolve(plan)
            assert resolved_engine is engine

    def test_grid_covers_all_shapes_and_reductions(self):
        combinations = list(default_registry().supported_plans())
        shapes = {plan.shape for _, plan in combinations}
        reductions = {plan.reduction for _, plan in combinations}
        backends = {plan.backend for _, plan in combinations}
        assert shapes == {"dfs", "bfs"}
        assert reductions == {"none", "spor", "spor-net", "dpor"}
        assert backends == {"serial", "frontier", "worksteal"}

    def test_dpor_only_appears_serial(self):
        for _, plan in default_registry().supported_plans(worker_counts=(1, 2, 4)):
            if plan.reduction == "dpor":
                assert plan.workers == 1
                assert plan.backend == "serial"

    def test_grid_never_yields_duplicate_plans(self):
        # Stateless plans collapse the store axis, so a naive store loop
        # would yield the same DPOR plan once per store kind.
        plans = [
            plan
            for _, plan in default_registry().supported_plans(
                worker_counts=(1, 2),
                stores=("full", "fingerprint", "sharded-fingerprint"),
            )
        ]
        assert len(plans) == len(set(plans))


class TestPlatformRequirements:
    """Satellite of the honest-verdicts PR: multi-process engines declare a
    'fork' platform requirement, and resolution refuses (structured error,
    runnable serial alternative) instead of raising a raw runtime error or
    silently downgrading on spawn-only interpreters."""

    def test_parallel_engines_declare_the_fork_requirement(self):
        for engine in builtin_engines():
            # Multi-process engines are exactly those that cannot run with a
            # single worker (the parallel backends and the walker pool).
            if engine.capabilities.min_workers > 1:
                assert "fork" in engine.capabilities.requirements, engine.name
            else:
                assert "fork" not in engine.capabilities.requirements, engine.name

    def test_missing_requirements_reads_the_platform(self):
        capabilities = Capabilities(
            shapes=("dfs",), reductions=("none",), backends=("serial",),
            stores=("full",), requirements=("fork",),
        )
        assert capabilities.missing_requirements(frozenset()) == ("fork",)
        assert capabilities.missing_requirements(frozenset({"fork"})) == ()

    def test_spawn_only_platform_refuses_parallel_plans(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.registry.platform_requirements", frozenset
        )
        with pytest.raises(UnsupportedPlanError) as excinfo:
            resolve(CheckPlan(workers=4))
        error = excinfo.value
        assert error.axis == "backend"
        assert "fork" in str(error)
        assert "nearest supported alternative" in str(error)
        # The alternative is runnable on the very platform that refused.
        alternative = error.alternative
        assert alternative.workers == 1
        engine, resolved = resolve(alternative)
        assert resolved.backend == "serial"

    def test_spawn_only_platform_still_resolves_serial_plans(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.registry.platform_requirements", frozenset
        )
        engine, resolved = resolve(CheckPlan())
        assert resolved.backend == "serial"

    def test_fork_platform_resolves_parallel_plans(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.registry.platform_requirements",
            lambda: frozenset({"fork"}),
        )
        engine, resolved = resolve(CheckPlan(workers=4))
        assert resolved.backend == "worksteal"
