"""Stream ordering and payload-schema contract, across every engine family.

One stream, one grammar: every run starts with ``search-started``, ends
with exactly one ``search-finished``, keeps progress monotonic, balances
its span brackets and only ever emits documented event kinds.  The same
assertions run against the object-graph, fast-path, nested-DFS, frontier
and work-stealing engines so a new engine cannot quietly bend the
contract.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine import CheckPlan, CollectingObserver, run_plan
from repro.engine.events import known_event_kinds
from repro.protocols.catalog import crash_recovery_entry, multicast_entry

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="parallel engines require fork")

VERIFIED = multicast_entry(2, 1, 0, 1)
VIOLATING = multicast_entry(2, 1, 2, 1)
LIVENESS = crash_recovery_entry(2, 1)

ALL_FAMILY_PLANS = [
    pytest.param(CheckPlan(), id="object-dfs"),
    pytest.param(CheckPlan(shape="bfs"), id="object-bfs"),
    pytest.param(CheckPlan(reduction="spor"), id="object-spor"),
    pytest.param(CheckPlan(reduction="dpor"), id="dpor"),
    pytest.param(CheckPlan(store="fingerprint", successors="fast"), id="fast-dfs"),
    pytest.param(CheckPlan(shape="bfs", store="fingerprint", successors="fast"),
                 id="fast-bfs"),
    pytest.param(CheckPlan(workers=2), id="worksteal", marks=needs_fork),
    pytest.param(CheckPlan(shape="bfs", workers=2), id="frontier",
                 marks=needs_fork),
    pytest.param(CheckPlan(workers=2, store="fingerprint", successors="fast"),
                 id="fast-worksteal", marks=needs_fork),
    pytest.param(CheckPlan(shape="bfs", workers=2, store="fingerprint",
                           successors="fast"),
                 id="fast-frontier", marks=needs_fork),
]


def run_with_stream(entry, plan, prop=None):
    observer = CollectingObserver()
    result = run_plan(
        entry.quorum_model(), prop if prop is not None else entry.invariant,
        plan, observer=observer,
    )
    return result, observer


class TestStreamOrdering:
    @pytest.mark.parametrize("plan", ALL_FAMILY_PLANS)
    def test_bracketing_and_kind_hygiene(self, plan):
        result, observer = run_with_stream(VERIFIED, plan)
        kinds = observer.kinds()
        assert kinds[0] == "search-started"
        assert kinds[-1] == "search-finished"
        assert kinds.count("search-started") == 1
        assert kinds.count("search-finished") == 1
        assert set(kinds) <= known_event_kinds()
        assert result.verified

    @pytest.mark.parametrize("plan", ALL_FAMILY_PLANS)
    def test_violation_precedes_the_finish(self, plan):
        result, observer = run_with_stream(VIOLATING, plan)
        assert not result.verified
        kinds = observer.kinds()
        assert "violation-found" in kinds
        assert kinds.index("violation-found") < kinds.index("search-finished")

    @pytest.mark.parametrize("plan", ALL_FAMILY_PLANS)
    def test_progress_ticks_are_monotonic(self, plan, monkeypatch):
        monkeypatch.setattr("repro.checker.search.PROGRESS_INTERVAL", 8)
        monkeypatch.setattr("repro.fastpath.search.PROGRESS_INTERVAL", 8)
        result, observer = run_with_stream(VERIFIED, plan)
        ticks = [e.payload["states_visited"] for e in observer.events
                 if e.kind == "progress"]
        assert ticks == sorted(ticks)
        assert all(tick <= result.statistics.states_visited for tick in ticks)

    @pytest.mark.parametrize("plan", ALL_FAMILY_PLANS)
    def test_span_brackets_balance(self, plan):
        _, observer = run_with_stream(VERIFIED, plan)
        started = [e.payload["span"] for e in observer.events
                   if e.kind == "span-started"]
        finished = [e.payload["span"] for e in observer.events
                    if e.kind == "span-finished"]
        assert sorted(started) == sorted(finished)
        assert "search" in started

    @pytest.mark.parametrize("plan, expect_violation", [
        pytest.param(CheckPlan(goal="liveness"), False, id="ndfs-object"),
        pytest.param(CheckPlan(goal="liveness", store="fingerprint",
                               successors="fast"), False, id="ndfs-fast"),
    ])
    def test_liveness_streams_follow_the_same_grammar(self, plan,
                                                      expect_violation):
        result, observer = run_with_stream(LIVENESS, plan, prop=LIVENESS.liveness)
        kinds = observer.kinds()
        assert kinds[0] == "search-started"
        assert kinds[-1] == "search-finished"
        assert set(kinds) <= known_event_kinds()
        assert result.verified is not expect_violation


class TestPayloadSchemas:
    """Each kind's payload carries the keys its consumers rely on."""

    REQUIRED_KEYS = {
        "search-started": {"engine", "plan", "protocol", "invariant"},
        "search-finished": {"engine", "verified", "complete",
                            "states_visited", "elapsed_seconds"},
        "progress": {"states_visited"},
        "level-completed": {"depth", "new_states"},
        "violation-found": {"depth"},
        "worker-report": {"worker", "claimed"},
        "worker-telemetry": {"worker"},
        "worker-stalled": {"worker", "idle_seconds"},
        "span-started": {"span", "ts", "depth"},
        "span-finished": {"span", "start_ts", "elapsed_seconds", "depth"},
    }

    @pytest.mark.parametrize("plan", ALL_FAMILY_PLANS)
    def test_every_emitted_payload_is_complete(self, plan):
        _, observer = run_with_stream(VERIFIED, plan)
        for event in observer.events:
            required = self.REQUIRED_KEYS.get(event.kind, set())
            missing = required - set(event.payload)
            assert not missing, (
                f"{event.kind} payload is missing {sorted(missing)}: "
                f"{event.payload}"
            )

    def test_search_started_plan_axes_are_complete(self):
        _, observer = run_with_stream(VERIFIED, CheckPlan())
        plan_axes = observer.events[0].payload["plan"]
        assert {"shape", "reduction", "store", "backend", "workers",
                "successors", "goal"} <= set(plan_axes)

    @needs_fork
    def test_worksteal_worker_telemetry_is_cumulative(self):
        _, observer = run_with_stream(VERIFIED, CheckPlan(workers=2))
        by_worker = {}
        for event in observer.events:
            if event.kind != "worker-telemetry":
                continue
            payload = event.payload
            previous = by_worker.get(payload["worker"], (0, 0, 0))
            current = (payload["claimed"], payload["transitions_executed"],
                       payload["revisits"])
            assert current >= previous
            by_worker[payload["worker"]] = current
        assert by_worker, "no live worker telemetry reached the coordinator"


class TestJobScopedStreams:
    """The service layer wraps each engine stream in a per-job log; the
    job-lifecycle kinds are registered extensions and each job's log obeys
    the same grammar as a direct engine stream."""

    def test_job_event_kinds_are_registered(self):
        from repro.service import JOB_EVENT_KINDS

        assert set(JOB_EVENT_KINDS) <= known_event_kinds()

    def test_job_stream_wraps_one_engine_stream(self):
        from repro.service import JobRequest, run_jobs

        (job,) = run_jobs([JobRequest(cell="multicast-2-1-0-1")], workers=1)
        kinds = job.events.kinds()
        assert set(kinds) <= known_event_kinds()
        # Lifecycle brackets around exactly one engine bracket.
        assert kinds[0] == "job-submitted"
        assert kinds[-1] == "job-finished"
        engine_kinds = [k for k in kinds if not k.startswith("job-")]
        assert engine_kinds[0] == "search-started"
        assert engine_kinds[-1] == "search-finished"
        assert kinds.count("search-started") == 1

    def test_cache_hit_stream_has_no_engine_bracket(self):
        from repro.service import JobRequest, ResultCache, run_jobs

        cache = ResultCache()
        request = JobRequest(cell="multicast-2-1-0-1")
        run_jobs([request], workers=1, cache=cache)
        (job,) = run_jobs([request], workers=1, cache=cache)
        kinds = job.events.kinds()
        assert "job-cache-hit" in kinds
        assert "search-started" not in kinds
        assert kinds[-1] == "job-finished"
