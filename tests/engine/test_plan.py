"""Unit tests for :class:`repro.engine.plan.CheckPlan` and its validation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.plan import (
    BACKENDS,
    GOALS,
    PLAN_AXES,
    REDUCTIONS,
    SHAPES,
    STORES,
    CheckPlan,
    UnsupportedPlanError,
    strategy_label,
)


class TestVocabularies:
    def test_axis_vocabularies_are_closed(self):
        assert SHAPES == ("dfs", "bfs")
        assert REDUCTIONS == ("none", "spor", "spor-net", "dpor")
        assert set(STORES) == {"full", "fingerprint", "sharded-fingerprint", "none"}
        assert "auto" in BACKENDS
        assert GOALS == ("invariant", "liveness")

    def test_store_vocabulary_stays_in_lockstep_with_the_store_factory(self):
        # STORES is a literal (importing STORE_KINDS would cycle through
        # repro.checker.__init__ back into plan.py); this pin is what makes
        # the duplication safe.
        from repro.checker.statestore import STORE_KINDS

        assert set(STORES) == set(STORE_KINDS)

    def test_plan_axes_cover_the_capability_surface(self):
        assert set(PLAN_AXES) == {
            "shape", "reduction", "store", "backend", "workers", "stateful",
            "successors", "goal",
        }


class TestConstruction:
    def test_defaults_are_a_serial_exhaustive_stateful_dfs(self):
        plan = CheckPlan()
        assert plan.shape == "dfs"
        assert plan.reduction == "none"
        assert plan.store == "full"
        assert plan.backend == "auto"
        assert plan.workers == 1
        assert plan.stateful

    def test_plans_are_frozen_and_hashable(self):
        plan = CheckPlan()
        with pytest.raises(AttributeError):
            plan.shape = "bfs"
        assert CheckPlan() in {plan}

    @pytest.mark.parametrize("axis,value", [
        ("shape", "zigzag"),
        ("reduction", "magic"),
        ("store", "cloud"),
        ("backend", "gpu"),
        ("goal", "fairness"),
    ])
    def test_unknown_axis_values_raise_structured_errors(self, axis, value):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(**{axis: value})
        error = excinfo.value
        assert error.axis == axis
        assert error.value == value
        assert error.alternative is not None
        assert axis in str(error)

    def test_unknown_value_suggests_the_typo_correction(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(reduction="spor-nett")
        assert excinfo.value.alternative == "spor-net"

    @pytest.mark.parametrize("workers", [0, -3])
    def test_non_positive_workers_rejected(self, workers):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(workers=workers)
        assert excinfo.value.axis == "workers"
        assert excinfo.value.alternative == 1

    def test_unsupported_plan_error_is_a_value_error(self):
        # Legacy call sites guard the facade with ``except ValueError``.
        assert issubclass(UnsupportedPlanError, ValueError)

    def test_unsupported_plan_error_pickles_round_trip(self):
        # An unpicklable exception deadlocks multiprocessing pools that try
        # to ship it back to the parent (the run_cells sweep path).
        import pickle

        error = UnsupportedPlanError(
            "workers", 2, "no engine", alternative=CheckPlan()
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, UnsupportedPlanError)
        assert clone.axis == "workers"
        assert clone.value == 2
        assert str(clone) == "no engine"
        assert clone.alternative == CheckPlan()


class TestNormalisation:
    def test_dpor_is_stateless_by_definition(self):
        plan = CheckPlan(reduction="dpor")
        assert not plan.stateful
        assert plan.store == "none"

    def test_stateless_plans_store_nothing(self):
        plan = CheckPlan(stateful=False, store="full")
        assert plan.store == "none"

    def test_stateful_with_no_store_is_a_contradiction(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(stateful=True, store="none")
        error = excinfo.value
        assert error.axis == "store"
        assert isinstance(error.alternative, CheckPlan)
        assert error.alternative.store == "full"


class TestDerivedViews:
    def test_search_config_mirrors_the_plan(self):
        plan = CheckPlan(
            store="fingerprint",
            max_depth=3,
            max_states=10,
            max_seconds=1.5,
            stop_at_first_violation=False,
            check_deadlocks=True,
            engine_cache_capacity=128,
        )
        config = plan.search_config()
        assert config.stateful
        assert config.state_store == "fingerprint"
        assert config.max_depth == 3
        assert config.max_states == 10
        assert config.max_seconds == 1.5
        assert not config.stop_at_first_violation
        assert config.check_deadlocks
        assert config.engine_cache_capacity == 128

    def test_stateless_search_config(self):
        config = CheckPlan(stateful=False).search_config()
        assert not config.stateful

    def test_store_shards_reach_the_search_config(self):
        config = CheckPlan(store="sharded-fingerprint", store_shards=32).search_config()
        assert config.state_store == "sharded-fingerprint"
        assert config.state_store_shards == 32

    def test_describe_is_compact(self):
        plan = CheckPlan(shape="dfs", reduction="spor", backend="worksteal", workers=4)
        assert plan.describe() == "dfs/spor/full/worksteal x4"
        assert CheckPlan().describe() == "dfs/none/full/auto"

    def test_describe_marks_liveness_plans(self):
        # Invariant renderings stay byte-identical; liveness plans carry an
        # explicit marker so logs and diagnostics distinguish the goal.
        assert CheckPlan(goal="liveness").describe() == "dfs/none/full/auto+liveness"

    def test_fastpath_memo_capacity_reaches_the_search_config(self):
        config = CheckPlan(fastpath_memo_capacity=64).search_config()
        assert config.fastpath_memo_capacity == 64
        assert CheckPlan().search_config().fastpath_memo_capacity is None

    def test_axes_round_trip(self):
        plan = CheckPlan(shape="bfs", workers=2)
        axes = plan.axes()
        assert axes["shape"] == "bfs"
        assert axes["workers"] == 2
        assert axes["goal"] == "invariant"
        assert replace(plan) == plan


class TestStrategyLabel:
    @pytest.mark.parametrize("plan,label", [
        (CheckPlan(), "unreduced"),
        (CheckPlan(reduction="spor"), "spor"),
        (CheckPlan(reduction="spor-net"), "spor-net"),
        (CheckPlan(reduction="dpor"), "dpor"),
        (CheckPlan(shape="bfs"), "bfs"),
        (CheckPlan(goal="liveness"), "ndfs"),
    ])
    def test_labels_match_the_legacy_strategy_strings(self, plan, label):
        assert strategy_label(plan) == label
