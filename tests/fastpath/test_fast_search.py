"""Serial fast-path searches against their object-graph twins."""

from __future__ import annotations

import pytest

from repro.checker.search import SearchConfig, bfs_search, dfs_search
from repro.engine.engines import make_reducer
from repro.engine.events import CollectingObserver
from repro.engine.plan import CheckPlan
from repro.fastpath.search import fast_bfs_search, fast_dfs_search
from repro.protocols.catalog import default_catalog, multicast_entry, storage_entry

SMALL_CELLS = [
    pytest.param(entry, id=entry.key) for entry in default_catalog("small")
]

STORES = ("full", "fingerprint", "sharded-fingerprint")


def assert_outcomes_match(a, b, counts=True):
    assert a.verified == b.verified
    assert a.complete == b.complete
    if counts:
        assert a.statistics.states_visited == b.statistics.states_visited
        assert a.statistics.transitions_executed == b.statistics.transitions_executed
        assert a.statistics.revisits == b.statistics.revisits
        assert a.statistics.max_depth == b.statistics.max_depth
        assert (
            a.statistics.enabled_set_computations
            == b.statistics.enabled_set_computations
        )
    if a.counterexample is None:
        assert b.counterexample is None
    else:
        assert b.counterexample is not None
        assert len(a.counterexample.steps) == len(b.counterexample.steps)


class TestSerialDfsTwin:
    @pytest.mark.parametrize("entry", SMALL_CELLS)
    def test_unreduced_statistics_identical(self, entry):
        invariant = entry.invariant
        slow = dfs_search(entry.quorum_model(), invariant)
        fast = fast_dfs_search(entry.quorum_model(), invariant)
        assert_outcomes_match(slow, fast)

    @pytest.mark.parametrize("entry", SMALL_CELLS)
    def test_spor_statistics_identical(self, entry):
        invariant = entry.invariant
        plan = CheckPlan(shape="dfs", reduction="spor")
        p_slow = entry.quorum_model()
        p_fast = entry.quorum_model()
        slow = dfs_search(p_slow, invariant, reducer=make_reducer(p_slow, plan))
        fast = fast_dfs_search(p_fast, invariant, reducer=make_reducer(p_fast, plan))
        assert_outcomes_match(slow, fast)

    @pytest.mark.parametrize("store", STORES)
    def test_every_store_kind_matches(self, store):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(state_store=store)
        slow = dfs_search(entry.quorum_model(), entry.invariant, config=config)
        fast = fast_dfs_search(entry.quorum_model(), entry.invariant, config=config)
        assert_outcomes_match(slow, fast)

    def test_stateless_mode_matches(self):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(stateful=False)
        slow = dfs_search(entry.quorum_model(), entry.invariant, config=config)
        fast = fast_dfs_search(entry.quorum_model(), entry.invariant, config=config)
        assert_outcomes_match(slow, fast)

    def test_budget_truncation_matches(self):
        entry = storage_entry(3, 1)
        config = SearchConfig(max_states=100)
        slow = dfs_search(entry.quorum_model(), entry.invariant, config=config)
        fast = fast_dfs_search(entry.quorum_model(), entry.invariant, config=config)
        assert not fast.complete
        assert_outcomes_match(slow, fast)

    def test_max_depth_matches(self):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(max_depth=3)
        slow = dfs_search(entry.quorum_model(), entry.invariant, config=config)
        fast = fast_dfs_search(entry.quorum_model(), entry.invariant, config=config)
        assert_outcomes_match(slow, fast)


class TestSerialBfsTwin:
    @pytest.mark.parametrize("entry", SMALL_CELLS)
    def test_statistics_identical(self, entry):
        invariant = entry.invariant
        slow = bfs_search(entry.quorum_model(), invariant)
        fast = fast_bfs_search(entry.quorum_model(), invariant)
        assert_outcomes_match(slow, fast)

    def test_counterexamples_have_minimal_depth(self):
        entry = multicast_entry(2, 1, 2, 1)
        slow = bfs_search(entry.quorum_model(), entry.invariant)
        fast = fast_bfs_search(entry.quorum_model(), entry.invariant)
        assert not fast.verified
        assert len(fast.counterexample.steps) == len(slow.counterexample.steps)


class TestObserverStream:
    def test_bfs_level_events_match_serial(self):
        entry = multicast_entry(2, 1, 0, 1)
        slow_events = CollectingObserver()
        fast_events = CollectingObserver()
        bfs_search(entry.quorum_model(), entry.invariant, observer=slow_events)
        fast_bfs_search(entry.quorum_model(), entry.invariant, observer=fast_events)
        assert fast_events.kinds() == slow_events.kinds()
        assert [e.payload for e in fast_events.events] == [
            e.payload for e in slow_events.events
        ]

    def test_dfs_violation_event_fires(self):
        entry = multicast_entry(2, 1, 2, 1)
        events = CollectingObserver()
        outcome = fast_dfs_search(entry.quorum_model(), entry.invariant,
                                  observer=events)
        assert not outcome.verified
        assert "violation-found" in events.kinds()


class TestSearchConfigKnob:
    """``SearchConfig.successor_engine`` is the drop-in spelling."""

    def test_dfs_search_delegates_to_the_fast_path(self):
        entry = multicast_entry(2, 1, 0, 1)
        via_knob = dfs_search(
            entry.quorum_model(), entry.invariant,
            config=SearchConfig(successor_engine="fast"),
        )
        direct = fast_dfs_search(entry.quorum_model(), entry.invariant)
        assert_outcomes_match(via_knob, direct)

    def test_bfs_search_delegates_to_the_fast_path(self):
        entry = multicast_entry(2, 1, 0, 1)
        via_knob = bfs_search(
            entry.quorum_model(), entry.invariant,
            config=SearchConfig(successor_engine="fast"),
        )
        direct = fast_bfs_search(entry.quorum_model(), entry.invariant)
        assert_outcomes_match(via_knob, direct)

    def test_unknown_engine_kind_is_rejected(self):
        entry = multicast_entry(2, 1, 0, 1)
        with pytest.raises(ValueError, match="successor_engine"):
            dfs_search(entry.quorum_model(), entry.invariant,
                       config=SearchConfig(successor_engine="warp"))

    def test_explicit_object_engine_conflicts_with_the_knob(self):
        from repro.mp.semantics import SuccessorEngine

        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        with pytest.raises(ValueError, match="FastSuccessorEngine"):
            dfs_search(
                protocol,
                multicast_entry(2, 1, 0, 1).invariant,
                config=SearchConfig(successor_engine="fast"),
                engine=SuccessorEngine.for_search(protocol, stateful=True),
            )


class TestNetworkSensitiveInvariants:
    """Undeclared invariants stay correct (no locals-vector memo)."""

    def test_network_reading_invariant_is_not_memoised_wrongly(self):
        from repro.checker.property import Invariant

        entry = multicast_entry(2, 1, 0, 1)
        # Deliberately network-dependent: bounded in-flight message count.
        bound = Invariant(
            name="bounded-network",
            predicate=lambda state, _protocol: len(state.network) <= 4,
        )
        assert bound.network_sensitive
        slow = dfs_search(entry.quorum_model(), bound)
        fast = fast_dfs_search(entry.quorum_model(), bound)
        assert_outcomes_match(slow, fast)
