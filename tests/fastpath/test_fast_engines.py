"""The fast engines behind the plan layer: resolution, downgrades, CLI."""

from __future__ import annotations

import io
import multiprocessing

import pytest

from repro.cli import main
from repro.engine import CheckPlan, UnsupportedPlanError, default_registry, run_plan
from repro.engine.plan import SUCCESSOR_MODES
from repro.protocols.catalog import multicast_entry

FORK = "fork" in multiprocessing.get_all_start_methods()

FAST_NAMES = {
    "serial-dfs-fast", "serial-bfs-fast", "frontier-bfs-fast",
    "worksteal-dfs-fast",
}


class TestResolution:
    def test_vocabulary(self):
        assert SUCCESSOR_MODES == ("object", "fast")

    @pytest.mark.parametrize("plan,expected", [
        (CheckPlan(successors="fast"), "serial-dfs-fast"),
        (CheckPlan(successors="fast", reduction="spor"), "serial-dfs-fast"),
        (CheckPlan(successors="fast", shape="bfs"), "serial-bfs-fast"),
        (
            CheckPlan(successors="fast", shape="bfs", workers=4,
                      store="fingerprint"),
            "frontier-bfs-fast",
        ),
        (CheckPlan(successors="fast", workers=4), "worksteal-dfs-fast"),
        (
            CheckPlan(successors="fast", reduction="spor-net", workers=2),
            "worksteal-dfs-fast",
        ),
    ])
    def test_fast_plans_resolve_to_fast_engines(self, plan, expected):
        engine, resolved = default_registry().resolve(plan)
        assert engine.name == expected
        assert resolved.backend != "auto"

    def test_object_plans_never_reach_fast_engines(self):
        for engine, plan in default_registry().supported_plans():
            assert plan.successors == "object"
            assert engine.name not in FAST_NAMES

    def test_fast_plans_never_reach_object_engines(self):
        grid = default_registry().supported_plans(
            stores=("full", "fingerprint"),
            successor_modes=("fast",),
        )
        names = {engine.name for engine, _plan in grid}
        assert names
        assert names <= FAST_NAMES

    def test_unknown_successor_mode_suggests_the_vocabulary(self):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            CheckPlan(successors="turbo")
        assert excinfo.value.axis == "successors"

    def test_fast_dpor_is_rejected_not_downgraded(self):
        plan = CheckPlan(successors="fast", reduction="dpor")
        with pytest.raises(UnsupportedPlanError) as excinfo:
            default_registry().resolve(plan)
        error = excinfo.value
        # The structured alternative is runnable and names a real engine.
        assert isinstance(error.alternative, CheckPlan)
        engine, _ = default_registry().resolve(error.alternative)
        assert engine.name in FAST_NAMES | {"dpor"}

    def test_fast_frontier_full_store_alternative_keeps_fast(self):
        plan = CheckPlan(successors="fast", shape="bfs", workers=4,
                         store="full")
        with pytest.raises(UnsupportedPlanError) as excinfo:
            default_registry().resolve(plan)
        error = excinfo.value
        assert error.axis == "store"
        assert error.alternative.successors == "fast"
        assert error.alternative.store in ("fingerprint", "sharded-fingerprint")


class TestRunPlan:
    ENTRY = multicast_entry(2, 1, 0, 1)

    def test_fast_serial_plan_runs_with_identical_counts(self):
        slow = run_plan(self.ENTRY.quorum_model(), self.ENTRY.invariant,
                        CheckPlan())
        fast = run_plan(self.ENTRY.quorum_model(), self.ENTRY.invariant,
                        CheckPlan(successors="fast"))
        assert fast.engine == "serial-dfs-fast"
        assert fast.verified == slow.verified
        assert (
            fast.statistics.states_visited == slow.statistics.states_visited
        )
        assert fast.plan.successors == "fast"

    @pytest.mark.skipif(not FORK, reason="parallel engines need fork")
    def test_fast_worksteal_plan_runs_with_identical_counts(self):
        slow = run_plan(self.ENTRY.quorum_model(), self.ENTRY.invariant,
                        CheckPlan(workers=2))
        fast = run_plan(self.ENTRY.quorum_model(), self.ENTRY.invariant,
                        CheckPlan(successors="fast", workers=2))
        assert fast.engine == "worksteal-dfs-fast"
        assert (
            fast.statistics.states_visited == slow.statistics.states_visited
        )


class TestCli:
    def test_engines_listing_shows_the_successors_axis(self):
        stream = io.StringIO()
        assert main(["engines"], stream=stream) == 0
        output = stream.getvalue()
        assert "serial-dfs-fast" in output
        assert "successors=fast" in output

    def test_engines_plan_dry_run_resolves(self):
        stream = io.StringIO()
        code = main(
            ["engines", "--plan", "--shape", "dfs", "--reduction", "spor",
             "--workers", "4", "--successors", "fast"],
            stream=stream,
        )
        assert code == 0
        output = stream.getvalue()
        assert "worksteal-dfs-fast" in output
        assert "backend worksteal" in output

    def test_engines_plan_dry_run_reports_unsupported(self):
        stream = io.StringIO()
        code = main(
            ["engines", "--plan", "--shape", "bfs", "--workers", "4",
             "--store", "full", "--successors", "fast"],
            stream=stream,
        )
        assert code == 2
        output = stream.getvalue()
        assert "unsupported" in output
        assert "axis: store" in output
        assert "alternative" in output

    def test_check_accepts_successors_fast(self):
        stream = io.StringIO()
        code = main(
            ["check", "multicast-2-1-0-1", "--shape", "dfs",
             "--reduction", "none", "--successors", "fast"],
            stream=stream,
        )
        assert code == 0
        assert "Verified" in stream.getvalue()


class TestLegacyShimCarriesTheFastPath:
    """``SearchConfig.successor_engine`` flows through ``plan_for_strategy``
    (regression: the shim must not silently downgrade to the object engine)."""

    def test_strategy_shim_resolves_to_the_fast_engine(self):
        from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy

        entry = multicast_entry(2, 1, 0, 1)
        options = CheckerOptions(
            search=SearchConfig(successor_engine="fast")
        )
        result = ModelChecker(
            entry.quorum_model(), entry.invariant, options
        ).run(Strategy.DFS)
        assert result.engine == "serial-dfs-fast"
        assert result.plan.successors == "fast"

    def test_plan_for_strategy_maps_the_knob_to_the_axis(self):
        from repro.checker import CheckerOptions, SearchConfig, plan_for_strategy, Strategy

        plan = plan_for_strategy(
            Strategy.SPOR,
            CheckerOptions(search=SearchConfig(successor_engine="fast")),
        )
        assert plan.successors == "fast"
        assert plan_for_strategy(Strategy.SPOR).successors == "object"
