"""Compiler conformance: the packed engine against the object-graph engine.

The executable contract of the fast path's tentpole claim: for every
reachable state of every bundled protocol model, the compiled engine
produces the *same* enabled executions in the *same* order, the same
successors, and bit-identical fingerprints — while its packed round trip
(encode → decode → re-encode) is the identity.
"""

from __future__ import annotations

import pytest

from repro.fastpath.compiler import FastSuccessorEngine
from repro.mp.errors import MPError
from repro.mp.semantics import SuccessorEngine
from repro.protocols.catalog import (
    multicast_entry,
    paxos_entry,
    storage_entry,
)

CELLS = [
    pytest.param(paxos_entry(2, 2, 1), id="paxos-2-2-1"),
    pytest.param(multicast_entry(2, 1, 0, 1), id="multicast-2-1-0-1"),
    pytest.param(multicast_entry(3, 0, 1, 1), id="multicast-3-0-1-1"),
    pytest.param(storage_entry(3, 1), id="storage-3-1"),
]

#: Edge-comparison budget per (cell, model); enough to cover the smaller
#: cells exhaustively and a representative prefix of the larger ones.
MAX_EDGES = 2500


def walk_in_lockstep(protocol, max_edges=MAX_EDGES):
    """BFS both engines together, asserting parity on every edge."""
    fast = FastSuccessorEngine(protocol)
    obj = SuccessorEngine.for_search(protocol, stateful=True)
    initial_obj = obj.initial_state()
    initial_packed = fast.initial_packed()
    assert initial_packed[3] == initial_obj.fingerprint()
    assert fast.decode(initial_packed) == initial_obj
    seen = {initial_packed[0]}
    frontier = [(initial_obj, initial_packed)]
    edges = 0
    while frontier and edges < max_edges:
        next_frontier = []
        for state_obj, state_packed in frontier:
            enabled_obj = obj.enabled(state_obj)
            enabled_packed = fast.enabled_packed(state_packed)
            assert len(enabled_obj) == len(enabled_packed)
            for execution_obj, execution_packed in zip(enabled_obj, enabled_packed):
                # Same executions, same deterministic order.
                assert fast.execution_of(execution_packed) == execution_obj
                successor_obj = obj.successor(state_obj, execution_obj)
                successor_packed = fast.successor_packed(
                    state_packed, execution_packed
                )
                # Bit-identical fingerprints, exact decode, identity round trip.
                assert successor_packed[3] == successor_obj.fingerprint()
                assert fast.decode(successor_packed) == successor_obj
                assert fast.encode(successor_obj) == successor_packed
                edges += 1
                if successor_packed[0] not in seen:
                    seen.add(successor_packed[0])
                    next_frontier.append((successor_obj, successor_packed))
        frontier = next_frontier
    assert edges > 0
    return fast, edges


class TestEdgeLevelParity:
    @pytest.mark.parametrize("entry", CELLS)
    def test_quorum_model(self, entry):
        walk_in_lockstep(entry.quorum_model())

    @pytest.mark.parametrize("entry", CELLS)
    def test_single_model(self, entry):
        walk_in_lockstep(entry.single_model())


class TestTables:
    def test_memo_tables_fill_and_stay_small(self):
        protocol = storage_entry(3, 1).quorum_model()
        fast, edges = walk_in_lockstep(protocol)
        sizes = fast.table_sizes()
        # The whole point of the compiler: far fewer distinct inputs than
        # edges, so guards/actions run a fraction of the edge count.
        assert 0 < sizes["action_entries"] < edges
        assert 0 < sizes["enabled_entries"]
        assert 0 < sizes["locals"]
        assert 0 < sizes["messages"]

    def test_replay_path_reaches_the_same_state(self):
        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        fast = FastSuccessorEngine(protocol)
        cursor = fast.initial_packed()
        path = []
        for _ in range(4):
            enabled = fast.enabled_packed(cursor)
            if not enabled:
                break
            index = len(enabled) - 1
            path.append(index)
            cursor = fast.successor_packed(cursor, enabled[index])
        assert fast.replay_path(tuple(path)) == cursor

    def test_encode_rejects_foreign_layout(self):
        fast = FastSuccessorEngine(multicast_entry(2, 1, 0, 1).quorum_model())
        other = storage_entry(3, 1).quorum_model().initial_state()
        with pytest.raises(MPError):
            fast.encode(other)

    def test_object_level_convenience_mirrors(self):
        protocol = paxos_entry(2, 2, 1).quorum_model()
        fast = FastSuccessorEngine(protocol)
        obj = SuccessorEngine.for_search(protocol, stateful=True)
        state = protocol.initial_state()
        assert fast.enabled(state) == obj.enabled(state)
        execution = obj.enabled(state)[0]
        assert fast.successor(state, execution) == obj.successor(state, execution)
