"""LRU bounding of the fast path's memo tables.

The packed engine memoises guard/enabled-set and action evaluations per
transition, and the searches memoise property verdicts per locals vector.
Unbounded, those tables grow with the reachable state space; the
``fastpath_memo_capacity`` knob turns each of them into an LRU whose size
never exceeds the configured capacity.  Bounding is a space/time trade
only — verdicts and visit counts must be bit-identical to the unbounded
run.
"""

from __future__ import annotations

import pytest

from repro.checker import SearchConfig
from repro.engine import CheckPlan
from repro.engine.registry import run_plan
from repro.fastpath.compiler import FastSuccessorEngine
from repro.fastpath.search import (
    _memoised_predicate,
    fast_dfs_search,
    fast_ndfs_search,
    make_invariant_checker,
)
from repro.protocols.catalog import crash_recovery_entry, multicast_entry


def explore_packed(engine, max_states=200):
    """Exhaustive packed BFS driving the enabled/action memos."""
    initial = engine.initial_packed()
    seen = {engine.fingerprint(initial)}
    frontier = [initial]
    while frontier and len(seen) < max_states:
        packed = frontier.pop()
        for execution in engine.enabled_packed(packed):
            successor = engine.successor_packed(packed, execution)
            fingerprint = engine.fingerprint(successor)
            if fingerprint not in seen:
                seen.add(fingerprint)
                frontier.append(successor)
    return seen


class TestEngineMemoBounds:
    def test_capacity_must_be_positive(self):
        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        with pytest.raises(ValueError, match="memo_capacity"):
            FastSuccessorEngine(protocol, memo_capacity=0)
        with pytest.raises(ValueError, match="memo_capacity"):
            FastSuccessorEngine(protocol, memo_capacity=-4)

    def test_bounded_memos_evict_and_stay_within_capacity(self):
        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        engine = FastSuccessorEngine(protocol, memo_capacity=1)
        explore_packed(engine)
        assert engine.memo_evictions > 0
        for transition in engine._transitions:
            assert len(transition.enabled_memo) <= 1
            assert len(transition.action_memo) <= 1

    def test_unbounded_engine_never_evicts(self):
        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        engine = FastSuccessorEngine(protocol)
        explore_packed(engine)
        assert engine.memo_evictions == 0

    def test_bounded_exploration_matches_unbounded(self):
        protocol = multicast_entry(2, 1, 0, 1).quorum_model()
        unbounded = explore_packed(FastSuccessorEngine(protocol))
        bounded = explore_packed(FastSuccessorEngine(protocol, memo_capacity=2))
        assert bounded == unbounded


class TestPredicateMemoBounds:
    def test_lru_of_one_re_evaluates_on_alternation(self):
        entry = crash_recovery_entry(2, 1)
        protocol = entry.quorum_model()
        engine = FastSuccessorEngine(protocol)
        initial = engine.initial_packed()
        other = engine.successor_packed(initial, engine.enabled_packed(initial)[0])
        calls = []

        def evaluate(state):
            calls.append(1)
            return True

        check = _memoised_predicate(engine, evaluate, False, capacity=1)
        for packed in (initial, other, initial, other):
            assert check(packed)
        # Every lookup misses: each state evicts the other from the
        # single-slot LRU.  Unbounded, the same sequence costs two calls.
        assert len(calls) == 4
        calls.clear()
        check = _memoised_predicate(engine, evaluate, False)
        for packed in (initial, other, initial, other):
            assert check(packed)
        assert len(calls) == 2

    def test_invalid_capacity_rejected(self):
        entry = crash_recovery_entry(2, 1)
        engine = FastSuccessorEngine(entry.quorum_model())
        with pytest.raises(ValueError, match="capacity"):
            _memoised_predicate(engine, lambda state: True, False, capacity=0)

    def test_invariant_checker_accepts_a_capacity(self):
        entry = crash_recovery_entry(2, 1)
        protocol = entry.quorum_model()
        engine = FastSuccessorEngine(protocol)
        check = make_invariant_checker(engine, entry.invariant, protocol, capacity=4)
        assert check(engine.initial_packed())


class TestConfigThreading:
    def test_bounded_fast_dfs_matches_unbounded(self):
        entry = crash_recovery_entry(2, 1)
        unbounded = fast_dfs_search(entry.quorum_model(), entry.invariant)
        bounded = fast_dfs_search(
            entry.quorum_model(),
            entry.invariant,
            SearchConfig(fastpath_memo_capacity=1),
        )
        assert bounded.verified == unbounded.verified
        assert (
            bounded.statistics.states_visited
            == unbounded.statistics.states_visited
        )

    def test_bounded_fast_ndfs_matches_unbounded(self):
        entry = crash_recovery_entry(2, 1, starved=True)
        unbounded = fast_ndfs_search(entry.quorum_model(), entry.liveness)
        bounded = fast_ndfs_search(
            entry.quorum_model(),
            entry.liveness,
            SearchConfig(fastpath_memo_capacity=1),
        )
        assert bounded.verified == unbounded.verified
        assert (
            bounded.counterexample.cycle_start
            == unbounded.counterexample.cycle_start
        )

    def test_plan_axis_reaches_the_fast_engine(self):
        # End to end: plan knob -> SearchConfig -> FastSuccessorEngine.
        entry = multicast_entry(2, 1, 0, 1)
        plan = CheckPlan(successors="fast", fastpath_memo_capacity=8)
        assert plan.search_config().fastpath_memo_capacity == 8
        result = run_plan(entry.quorum_model(), entry.invariant, plan)
        assert result.verified == (not entry.expect_violation)
