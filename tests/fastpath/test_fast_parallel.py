"""Parallel fast-path engines against their twins (fork platforms only)."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.checker.search import SearchConfig, bfs_search
from repro.engine.engines import make_reducer
from repro.engine.events import CollectingObserver
from repro.engine.plan import CheckPlan
from repro.fastpath.parallel import (
    FastStolenFrame,
    fast_parallel_bfs_search,
    fast_parallel_dfs_search,
)
from repro.fastpath.search import fast_dfs_search
from repro.parallel.bfs import parallel_bfs_search
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the parallel engines require the fork start method",
)

VERIFIED = [
    pytest.param(paxos_entry(2, 2, 1), id="paxos-2-2-1"),
    pytest.param(multicast_entry(2, 1, 0, 1), id="multicast-2-1-0-1"),
]
VIOLATING = [pytest.param(multicast_entry(2, 1, 2, 1), id="multicast-2-1-2-1")]


class TestFastWorksteal:
    @pytest.mark.parametrize("entry", VERIFIED)
    def test_unreduced_counts_equal_serial(self, entry):
        serial = fast_dfs_search(entry.quorum_model(), entry.invariant)
        parallel = fast_parallel_dfs_search(
            entry.quorum_model(), entry.invariant, workers=2
        )
        assert parallel.verified
        assert (
            parallel.statistics.states_visited
            == serial.statistics.states_visited
        )
        assert parallel.statistics.max_depth == serial.statistics.max_depth

    @pytest.mark.parametrize("entry", VERIFIED)
    def test_spor_verdicts_agree_and_stay_bounded(self, entry):
        serial = fast_dfs_search(entry.quorum_model(), entry.invariant)
        plan = CheckPlan(shape="dfs", reduction="spor")
        protocol = entry.quorum_model()
        reduced = fast_parallel_dfs_search(
            protocol, entry.invariant, workers=2,
            reducer=make_reducer(protocol, plan),
        )
        assert reduced.verified
        assert (
            reduced.statistics.states_visited <= serial.statistics.states_visited
        )

    @pytest.mark.parametrize("entry", VIOLATING)
    def test_violations_replay_to_counterexamples(self, entry):
        outcome = fast_parallel_dfs_search(
            entry.quorum_model(), entry.invariant, workers=2
        )
        assert not outcome.verified
        assert outcome.counterexample is not None
        assert len(outcome.counterexample.steps) > 0
        # The replayed trace really ends in a violating state.
        final = outcome.counterexample.steps[-1].state
        assert not entry.invariant.holds_in(final, entry.quorum_model())

    def test_one_worker_delegates_to_the_serial_fast_dfs(self):
        entry = multicast_entry(2, 1, 0, 1)
        serial = fast_dfs_search(entry.quorum_model(), entry.invariant)
        delegated = fast_parallel_dfs_search(
            entry.quorum_model(), entry.invariant, workers=1
        )
        assert (
            delegated.statistics.states_visited
            == serial.statistics.states_visited
        )

    def test_stolen_frames_are_pure_int_tuples(self):
        frame = FastStolenFrame(pending=(0, 2), path=(1, 0), ancestors=(7, 9))
        flat = (frame.pending or ()) + frame.path + frame.ancestors
        assert all(isinstance(value, int) for value in flat)
        import pickle

        assert len(pickle.dumps(frame)) < 200

    def test_worker_reports_arrive_through_the_observer(self):
        entry = storage_entry(3, 1)
        events = CollectingObserver()
        fast_parallel_dfs_search(
            entry.quorum_model(), entry.invariant, workers=2, observer=events
        )
        assert events.counts().get("worker-report") == 2


class TestFastFrontier:
    @pytest.mark.parametrize("entry", VERIFIED)
    @pytest.mark.parametrize("workers", (2, 3))
    def test_counts_equal_serial_fingerprint_bfs(self, entry, workers):
        config = SearchConfig(state_store="fingerprint")
        serial = bfs_search(entry.quorum_model(), entry.invariant,
                            config=SearchConfig(state_store="fingerprint"))
        parallel = fast_parallel_bfs_search(
            entry.quorum_model(), entry.invariant, config=config, workers=workers
        )
        assert parallel.verified == serial.verified
        assert (
            parallel.statistics.states_visited
            == serial.statistics.states_visited
        )
        assert parallel.statistics.max_depth == serial.statistics.max_depth
        assert (
            parallel.statistics.transitions_executed
            == serial.statistics.transitions_executed
        )

    @pytest.mark.parametrize("entry", VIOLATING)
    def test_violating_cells_match_the_object_frontier(self, entry):
        config = SearchConfig(state_store="fingerprint")
        fast = fast_parallel_bfs_search(
            entry.quorum_model(), entry.invariant, config=config, workers=2
        )
        slow = parallel_bfs_search(
            entry.quorum_model(), entry.invariant,
            config=SearchConfig(state_store="fingerprint"), workers=2,
        )
        assert not fast.verified
        # Level-synchronous engines count the whole violating level.
        assert fast.statistics.states_visited == slow.statistics.states_visited
        assert fast.counterexample is not None
        assert len(fast.counterexample.steps) == len(slow.counterexample.steps)
        final = fast.counterexample.steps[-1].state
        assert not entry.invariant.holds_in(final, entry.quorum_model())

    def test_level_events_report_int_deltas(self):
        entry = multicast_entry(2, 1, 0, 1)
        events = CollectingObserver()
        fast_parallel_bfs_search(
            entry.quorum_model(), entry.invariant,
            config=SearchConfig(state_store="fingerprint"), workers=2,
            observer=events,
        )
        levels = [e for e in events.events if e.kind == "level-completed"]
        assert levels
        assert all(event.payload["deltas"] >= event.payload["new_states"]
                   for event in levels)

    def test_one_worker_delegates_to_the_serial_fast_bfs(self):
        entry = multicast_entry(2, 1, 0, 1)
        config = SearchConfig(state_store="fingerprint")
        serial = bfs_search(entry.quorum_model(), entry.invariant,
                            config=SearchConfig(state_store="fingerprint"))
        delegated = fast_parallel_bfs_search(
            entry.quorum_model(), entry.invariant, config=config, workers=1
        )
        assert (
            delegated.statistics.states_visited
            == serial.statistics.states_visited
        )


class TestLiveProgress:
    def test_fast_worksteal_emits_in_flight_progress_ticks(self):
        entry = storage_entry(3, 2, wrong_specification=True)
        events = CollectingObserver()
        outcome = fast_parallel_dfs_search(
            entry.quorum_model(),
            entry.invariant,
            config=SearchConfig(stop_at_first_violation=False),
            workers=2,
            observer=events,
        )
        assert outcome.statistics.states_visited > 1000
        kinds = events.kinds()
        assert "progress" in kinds
        assert kinds.index("progress") < kinds.index("worker-report")
