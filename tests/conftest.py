"""Shared fixtures: small hand-built protocols used across the test suite.

The toy protocols here are deliberately tiny so that unit tests of the
checker, the reduction and the refinement strategies can enumerate full
state graphs in milliseconds; the real protocol models have their own test
modules under ``tests/protocols``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.mp import (
    ActionContext,
    LporAnnotation,
    ProtocolBuilder,
    SendSpec,
    exact_quorum,
)
from repro.mp.process import LocalState


# --------------------------------------------------------------------------- #
# Ping-pong: two processes, single-message transitions only
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PingState(LocalState):
    """Pinger local state: pings sent and pongs received."""

    sent: int = 0
    pongs: int = 0


@dataclass(frozen=True)
class PongState(LocalState):
    """Ponger local state: how many pings it has answered."""

    pings: int = 0


def _start_action(local: PingState, _messages, ctx: ActionContext) -> PingState:
    ctx.send("pong", "PING")
    return local.update(sent=local.sent + 1)


def _ping_action(local: PongState, messages, ctx: ActionContext) -> PongState:
    (message,) = messages
    ctx.send(message.sender, "PONG")
    return local.update(pings=local.pings + 1)


def _pong_action(local: PingState, _messages, _ctx: ActionContext) -> PingState:
    return local.update(pongs=local.pongs + 1)


def build_ping_pong(rounds: int = 1):
    """The driver starts ``rounds`` pings; the ponger echoes each one."""
    builder = ProtocolBuilder(f"ping-pong x{rounds}")
    builder.add_process("ping", "pinger", PingState())
    builder.add_process("pong", "ponger", PongState())
    builder.add_transition(
        name="START@ping",
        process_id="ping",
        message_type="START",
        action=_start_action,
        annotation=LporAnnotation(
            sends=(SendSpec("PING", recipients=frozenset({"pong"})),),
            possible_senders=frozenset({"driver"}),
            starts_instance=True,
        ),
    )
    builder.add_transition(
        name="PING@pong",
        process_id="pong",
        message_type="PING",
        action=_ping_action,
        annotation=LporAnnotation(
            sends=(SendSpec("PONG", to_senders_only=True),),
            possible_senders=frozenset({"ping"}),
            is_reply=True,
        ),
    )
    builder.add_transition(
        name="PONG@ping",
        process_id="ping",
        message_type="PONG",
        action=_pong_action,
        annotation=LporAnnotation(
            possible_senders=frozenset({"pong"}),
            visible=True,
            finishes_instance=True,
        ),
    )
    for _ in range(rounds):
        builder.trigger("START", "ping")
    return builder.build()


# --------------------------------------------------------------------------- #
# Vote collection: one collector with a quorum transition over n voters
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class VoterState(LocalState):
    """Voter local state: whether it has voted yet."""

    voted: bool = False


@dataclass(frozen=True)
class CollectorState(LocalState):
    """Collector local state: whether the decision was taken."""

    decided: bool = False
    votes_seen: int = 0


def _vote_action(local: VoterState, _messages, ctx: ActionContext) -> VoterState:
    ctx.send("collector", "VOTE", choice="yes")
    return local.update(voted=True)


def _collect_action(local: CollectorState, messages, _ctx: ActionContext) -> CollectorState:
    return local.update(decided=True, votes_seen=len(messages))


def build_vote_collection(voters: int = 3, quorum: int = 2):
    """``voters`` voter processes each cast one vote; the collector needs ``quorum``."""
    builder = ProtocolBuilder(f"vote-collection {voters}/{quorum}")
    voter_ids = tuple(f"voter{i + 1}" for i in range(voters))
    builder.add_process("collector", "collector", CollectorState())
    for pid in voter_ids:
        builder.add_process(pid, "voter", VoterState())
        builder.add_transition(
            name=f"CAST@{pid}",
            process_id=pid,
            message_type="CAST",
            action=_vote_action,
            annotation=LporAnnotation(
                sends=(SendSpec("VOTE", recipients=frozenset({"collector"})),),
                possible_senders=frozenset({"driver"}),
                starts_instance=True,
            ),
        )
        builder.trigger("CAST", pid)
    builder.add_transition(
        name="VOTE@collector",
        process_id="collector",
        message_type="VOTE",
        quorum=exact_quorum(quorum),
        action=_collect_action,
        annotation=LporAnnotation(
            possible_senders=frozenset(voter_ids),
            visible=True,
            finishes_instance=True,
        ),
    )
    return builder.build()


# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture
def ping_pong():
    """Single-round ping-pong protocol."""
    return build_ping_pong(rounds=1)


@pytest.fixture
def ping_pong_two_rounds():
    """Two-round ping-pong protocol (non-trivial interleavings)."""
    return build_ping_pong(rounds=2)


@pytest.fixture
def vote_collection():
    """Three voters, quorum of two."""
    return build_vote_collection(voters=3, quorum=2)
