"""Phase-span tracing: nesting, emission pairing, record cap."""

from __future__ import annotations

import pytest

from repro.engine.events import CollectingObserver
from repro.obs.spans import SPAN_RECORD_CAP, SpanTracer


class TestSpanEmission:
    def test_span_emits_started_and_finished(self):
        observer = CollectingObserver()
        tracer = SpanTracer(observer=observer)
        with tracer.span("compile", protocol="demo"):
            pass
        assert observer.kinds() == ["span-started", "span-finished"]
        started = observer.events[0].payload
        assert started["span"] == "compile"
        assert started["protocol"] == "demo"
        assert started["depth"] == 0
        finished = observer.events[1].payload
        assert finished["span"] == "compile"
        assert finished["elapsed_seconds"] >= 0.0
        assert finished["start_ts"] == started["ts"]

    def test_spans_nest_with_depth(self):
        observer = CollectingObserver()
        tracer = SpanTracer(observer=observer)
        with tracer.span("search"):
            with tracer.span("red-phase"):
                pass
            with tracer.span("red-phase"):
                pass
        starts = [e.payload for e in observer.events if e.kind == "span-started"]
        assert [(p["span"], p["depth"]) for p in starts] \
            == [("search", 0), ("red-phase", 1), ("red-phase", 1)]
        # Inner spans finish before the outer one.
        finishes = [e.payload["span"] for e in observer.events
                    if e.kind == "span-finished"]
        assert finishes == ["red-phase", "red-phase", "search"]

    def test_exceptional_exit_still_closes_the_span(self):
        observer = CollectingObserver()
        tracer = SpanTracer(observer=observer)
        with pytest.raises(RuntimeError):
            with tracer.span("search"):
                raise RuntimeError("engine crashed")
        assert observer.counts() == {"span-started": 1, "span-finished": 1}
        assert tracer._depth == 0

    def test_body_can_attach_attrs_mid_phase(self):
        observer = CollectingObserver()
        tracer = SpanTracer(observer=observer)
        with tracer.span("ce-replay") as attrs:
            attrs["path_length"] = 7
        assert observer.last("span-finished").payload["path_length"] == 7

    def test_no_observer_records_without_emitting(self):
        tracer = SpanTracer()
        with tracer.span("search"):
            pass
        assert len(tracer.finished) == 1


class TestSpanRecords:
    def test_record_shape(self):
        tracer = SpanTracer()
        tracer.record("search", start_ts=100.0, elapsed_seconds=0.5, engine="x")
        (record,) = tracer.finished
        assert record == {
            "span": "search",
            "start_ts": 100.0,
            "elapsed_seconds": 0.5,
            "depth": 0,
            "attrs": {"engine": "x"},
        }

    def test_elapsed_sums_by_name(self):
        tracer = SpanTracer()
        tracer.record("red-phase", 0.0, 0.25)
        tracer.record("red-phase", 1.0, 0.75)
        tracer.record("search", 0.0, 2.0)
        assert tracer.elapsed("red-phase") == 1.0
        assert tracer.elapsed("search") == 2.0
        assert tracer.elapsed("missing") is None

    def test_cap_reports_dropped_instead_of_truncating_silently(self):
        observer = CollectingObserver()
        tracer = SpanTracer(observer=observer, max_records=2)
        for index in range(5):
            tracer.record("red-phase", float(index), 0.1)
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3
        # The event stream still saw every span.
        assert observer.counts()["span-finished"] == 5
        snapshot = tracer.snapshot()
        assert snapshot["dropped"] == 3
        assert len(snapshot["finished"]) == 2

    def test_default_cap_is_the_module_constant(self):
        assert SpanTracer().max_records == SPAN_RECORD_CAP
