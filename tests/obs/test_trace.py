"""Chrome trace-event export: kind mapping, validation, file conversion."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    COORDINATOR_TID,
    TRACE_PID,
    chrome_trace,
    convert_file,
    validate_chrome_trace,
)

T0 = 1_000_000.0


def record(kind, ts, **payload):
    return {"kind": kind, "ts": T0 + ts, "payload": payload}


def slices(document, phase):
    return [e for e in document["traceEvents"] if e["ph"] == phase]


def named(document, name):
    return [e for e in document["traceEvents"] if e["name"] == name]


class TestKindMapping:
    def test_span_finished_becomes_a_complete_slice(self):
        document = chrome_trace([
            record("span-finished", 1.5, span="search", start_ts=T0 + 0.5,
                   elapsed_seconds=1.0, depth=0, engine="serial-dfs"),
        ])
        (x,) = slices(document, "X")
        assert x["name"] == "search"
        assert x["ts"] == 0  # start_ts is the earliest time → clock zero
        assert x["dur"] == 1_000_000  # 1s in microseconds
        assert x["tid"] == COORDINATOR_TID
        assert x["args"] == {"depth": 0, "engine": "serial-dfs"}

    def test_span_started_contributes_only_clock_zero(self):
        document = chrome_trace([
            record("span-started", 0.0, span="search", depth=0),
            record("search-finished", 2.0, verified=True),
        ])
        assert not named(document, "span-started")
        (instant,) = named(document, "search-finished")
        assert instant["ts"] == 2_000_000

    def test_progress_and_levels_become_counters(self):
        document = chrome_trace([
            record("progress", 1.0, states_visited=1000),
            record("level-completed", 2.0, depth=3, new_states=40),
        ])
        counters = slices(document, "C")
        assert [c["name"] for c in counters] == ["states", "frontier"]
        assert counters[0]["args"] == {"states_visited": 1000}
        assert all(c["tid"] == COORDINATOR_TID for c in counters)

    def test_worker_telemetry_counts_on_the_worker_track(self):
        document = chrome_trace([
            record("worker-telemetry", 1.0, worker=2, claimed=10,
                   transitions_executed=25, revisits=3),
        ])
        (counter,) = slices(document, "C")
        assert counter["name"] == "worker-2"
        assert counter["tid"] == 3  # worker id + 1
        assert "worker" not in counter["args"]
        assert counter["args"]["claimed"] == 10

    def test_worker_report_spans_the_run_from_search_started(self):
        document = chrome_trace([
            record("search-started", 0.0, engine="worksteal-dfs", protocol="p"),
            record("worker-report", 2.0, worker=0, claimed=20),
        ])
        (x,) = slices(document, "X")
        assert x["name"] == "worker-0 active"
        assert x["ts"] == 0
        assert x["dur"] == 2_000_000
        assert x["tid"] == 1

    def test_instants_and_scopes(self):
        document = chrome_trace([
            record("violation-found", 1.0, depth=4),
            record("worker-stalled", 2.0, worker=1, idle_seconds=6.0),
        ])
        instants = slices(document, "i")
        by_name = {e["name"]: e for e in instants}
        assert by_name["violation-found"]["s"] == "g"
        assert by_name["worker-stalled"]["s"] == "t"
        assert by_name["worker-stalled"]["tid"] == 2

    def test_unknown_kinds_degrade_to_instants(self):
        document = chrome_trace([record("future-kind", 1.0, value=3)])
        (instant,) = slices(document, "i")
        assert instant["name"] == "future-kind"

    def test_metadata_names_process_and_threads(self):
        document = chrome_trace([
            record("search-started", 0.0, engine="worksteal-dfs", protocol="paxos"),
            record("worker-report", 1.0, worker=0, claimed=5),
            record("worker-report", 1.0, worker=1, claimed=5),
        ])
        metadata = slices(document, "M")
        process = [m for m in metadata if m["name"] == "process_name"]
        assert process[0]["args"]["name"] == "repro check [worksteal-dfs] paxos"
        threads = {m["tid"]: m["args"]["name"] for m in metadata
                   if m["name"] == "thread_name"}
        assert threads == {0: "coordinator", 1: "worker-0", 2: "worker-1"}

    def test_document_is_json_roundtrippable_and_valid(self):
        document = chrome_trace([
            record("search-started", 0.0, engine="serial-dfs", protocol="p"),
            record("progress", 0.5, states_visited=1000),
            record("span-finished", 1.0, span="search", start_ts=T0,
                   elapsed_seconds=1.0, depth=0),
            record("search-finished", 1.0, verified=True, states_visited=1234),
        ])
        assert json.loads(json.dumps(document)) == document
        assert validate_chrome_trace(document) == len(document["traceEvents"])
        assert document["otherData"]["source_events"] == 4


class TestValidateChromeTrace:
    def well_formed(self):
        return chrome_trace([record("progress", 0.0, states_visited=1)])

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.clear(), "no traceEvents"),
        (lambda d: d.update(traceEvents=[]), "no traceEvents"),
        (lambda d: d["traceEvents"].append("nope"), "not an object"),
        (lambda d: d["traceEvents"][-1].update(ph="Z"), "invalid phase"),
        (lambda d: d["traceEvents"][-1].pop("name"), "no string name"),
        (lambda d: d["traceEvents"][-1].update(pid="x"), "no integer pid"),
        (lambda d: d["traceEvents"][-1].update(ts=-5), "invalid ts"),
        (lambda d: d["traceEvents"][-1].update(args=[1]), "non-object args"),
    ])
    def test_rejections(self, mutate, message):
        document = self.well_formed()
        mutate(document)
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(document)

    def test_x_slices_need_a_duration(self):
        document = self.well_formed()
        document["traceEvents"].append(
            {"name": "s", "ph": "X", "ts": 0, "pid": TRACE_PID, "tid": 0}
        )
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(document)

    def test_not_a_dict(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_chrome_trace([])


class TestConvertFile:
    def test_jsonl_to_trace_json(self, tmp_path):
        source = tmp_path / "run.jsonl"
        lines = [
            record("search-started", 0.0, engine="serial-dfs", protocol="p"),
            record("span-finished", 1.0, span="search", start_ts=T0,
                   elapsed_seconds=1.0, depth=0),
            record("search-finished", 1.0, verified=True),
        ]
        source.write_text("".join(json.dumps(line) + "\n" for line in lines))
        destination = tmp_path / "run.trace.json"
        count = convert_file(source, destination)
        document = json.loads(destination.read_text())
        assert validate_chrome_trace(document) == count
        assert document["otherData"]["source_events"] == 3
