"""The metrics registry: counters, gauges, histograms, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("states_visited")
        counter.inc()
        counter.inc(41)
        assert counter.value() == 42
        assert counter.total() == 42

    def test_labelled_series_are_independent(self):
        counter = Counter("worker_claimed")
        counter.inc(10, worker=0)
        counter.inc(20, worker=1)
        counter.inc(5, worker=0)
        assert counter.value(worker=0) == 15
        assert counter.value(worker=1) == 20
        assert counter.total() == 35

    def test_label_order_is_irrelevant(self):
        counter = Counter("c")
        counter.inc(1, a="x", b="y")
        assert counter.value(b="y", a="x") == 1

    def test_unknown_series_reads_zero(self):
        assert Counter("c").value(worker=7) == 0

    def test_snapshot_carries_total_and_sorted_series(self):
        counter = Counter("c", description="a count", unit="1")
        counter.inc(2, worker=1)
        counter.inc(1, worker=0)
        snapshot = counter.snapshot()
        assert snapshot["kind"] == "counter"
        assert snapshot["description"] == "a count"
        assert snapshot["total"] == 3
        assert [entry["labels"]["worker"] for entry in snapshot["values"]] \
            == ["0", "1"]


class TestGauge:
    def test_set_and_value(self):
        gauge = Gauge("frontier_peak")
        gauge.set(17)
        gauge.set(23)
        assert gauge.value() == 23

    def test_inc_accumulates(self):
        gauge = Gauge("g")
        gauge.inc(1.5)
        gauge.inc(0.5)
        assert gauge.value() == 2.0

    def test_unset_series_reads_none(self):
        assert Gauge("g").value(shard=3) is None

    def test_labelled_snapshot(self):
        gauge = Gauge("state_store_shard_size")
        for shard, size in enumerate((10, 20, 30)):
            gauge.set(size, shard=shard)
        values = gauge.snapshot()["values"]
        assert len(values) == 3
        assert {entry["value"] for entry in values} == {10, 20, 30}
        assert "total" not in gauge.snapshot()


class TestHistogram:
    def test_observe_tracks_count_sum_extremes(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        series = histogram.series()
        assert series.count == 3
        assert series.total == 55.5
        assert series.minimum == 0.5
        assert series.maximum == 50.0

    def test_bucket_assignment_including_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()["values"][0]
        by_bound = {entry["le"]: entry["count"] for entry in snapshot["buckets"]}
        assert by_bound[1.0] == 2       # 0.5 and the boundary value 1.0
        assert by_bound[10.0] == 1      # 5.0
        assert by_bound["inf"] == 1     # 100.0 overflows
        assert snapshot["mean"] == pytest.approx(106.5 / 4)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("states_visited", "described once")
        second = registry.counter("states_visited", "described differently")
        assert first is second
        assert second.description == "described once"

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("states_visited")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("states_visited")

    def test_names_and_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        assert registry.get("a") is not None
        assert registry.get("missing") is None

    def test_snapshot_is_json_roundtrippable(self):
        registry = MetricsRegistry()
        registry.counter("states_visited").inc(45, engine="serial-dfs")
        registry.gauge("reduction_ratio").set(0.4)
        registry.histogram("level_seconds", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["states_visited"]["total"] == 45
        assert snapshot["reduction_ratio"]["values"][0]["value"] == 0.4
