"""JSONL event sinks: capture, schema validation, round-trips."""

from __future__ import annotations

import io
import json

import pytest

from repro.engine.events import EngineEvent
from repro.obs.sinks import JsonlSink, read_events, validate_event_record


def event(kind="progress", **payload):
    return EngineEvent(kind=kind, payload=payload)


class TestJsonlSink:
    def test_round_trip_through_a_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.on_event(event("search-started", engine="serial-dfs"))
            sink.on_event(event("progress", states_visited=1000))
        assert sink.events_written == 2
        records = read_events(path)
        assert [r["kind"] for r in records] == ["search-started", "progress"]
        assert records[1]["payload"]["states_visited"] == 1000
        assert all(isinstance(r["ts"], float) for r in records)

    def test_timestamps_are_monotonic_in_the_capture(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            for _ in range(5):
                sink.on_event(event())
        stamps = [r["ts"] for r in read_events(path)]
        assert stamps == sorted(stamps)

    def test_non_json_payload_values_are_stringified(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.on_event(event("violation-found", state=frozenset({1, 2})))
        (record,) = read_events(path)
        assert isinstance(record["payload"]["state"], str)

    def test_borrowed_stream_is_flushed_but_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.on_event(event())
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["kind"] == "progress"
        assert sink.path is None

    def test_events_after_close_are_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.on_event(event())
        sink.close()
        sink.on_event(event())
        sink.close()  # idempotent
        assert sink.events_written == 1
        assert len(read_events(path)) == 1


class TestValidation:
    def test_accepts_a_well_formed_record(self):
        record = {"kind": "progress", "ts": 1.0, "payload": {}}
        assert validate_event_record(record) is record

    @pytest.mark.parametrize("record, message", [
        ([], "not an object"),
        ({"ts": 1.0, "payload": {}}, "no string 'kind'"),
        ({"kind": "", "ts": 1.0, "payload": {}}, "no string 'kind'"),
        ({"kind": "progress", "payload": {}}, "no numeric 'ts'"),
        ({"kind": "progress", "ts": 1.0}, "no object 'payload'"),
        ({"kind": "progress", "ts": 1.0, "payload": []}, "no object 'payload'"),
    ])
    def test_rejects_schema_violations(self, record, message):
        with pytest.raises(ValueError, match=message):
            validate_event_record(record, line_number=3)

    def test_read_events_names_the_offending_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress", "ts": 1.0, "payload": {}}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"kind": "progress", "ts": 1.0, "payload": {}}\n\n')
        assert len(read_events(path)) == 1

    def test_read_events_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_events(tmp_path / "absent.jsonl")
