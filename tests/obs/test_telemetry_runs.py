"""End-to-end run telemetry: every engine family fills the run report."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.engine import CheckPlan, CollectingObserver, run_plan
from repro.obs.telemetry import RunTelemetry, maybe_span
from repro.protocols.catalog import crash_recovery_entry, multicast_entry

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

VERIFIED = multicast_entry(2, 1, 0, 1)


def check(plan, entry=VERIFIED, observer=None):
    return run_plan(entry.quorum_model(), entry.invariant, plan, observer=observer)


def metric(result, name):
    return result.telemetry["metrics"].get(name)


def span_names(result):
    return [record["span"] for record in result.telemetry["spans"]["finished"]]


class TestRunReports:
    def test_every_plan_run_carries_a_telemetry_snapshot(self):
        result = check(CheckPlan())
        report = result.telemetry
        assert set(report) >= {"metrics", "spans"}
        assert metric(result, "states_visited")["total"] \
            == result.statistics.states_visited
        assert metric(result, "transitions_executed")["total"] \
            == result.statistics.transitions_executed
        assert "search" in span_names(result)
        assert json.loads(json.dumps(report)) == report

    def test_search_span_duration_brackets_the_statistics(self):
        result = check(CheckPlan())
        (search,) = [r for r in result.telemetry["spans"]["finished"]
                     if r["span"] == "search"]
        assert search["elapsed_seconds"] >= result.statistics.elapsed_seconds
        assert search["attrs"]["engine"] == result.engine

    def test_store_occupancy_is_recorded(self):
        result = check(CheckPlan())
        store = metric(result, "state_store_size")
        assert store["values"][0]["value"] == result.statistics.states_visited

    def test_bfs_records_the_frontier_peak(self):
        result = check(CheckPlan(shape="bfs"))
        peak = metric(result, "frontier_peak")["values"][0]["value"]
        assert 1 <= peak <= result.statistics.states_visited

    def test_spor_records_reduction_effectiveness(self):
        result = check(CheckPlan(reduction="spor"))
        ratio = metric(result, "reduction_ratio")
        assert ratio is not None
        assert 0.0 <= ratio["values"][0]["value"] <= 1.0
        assert metric(result, "reduced_expansions")["total"] \
            == result.statistics.reduced_expansions

    def test_dpor_records_reduction_effectiveness(self):
        result = check(CheckPlan(reduction="dpor"))
        assert metric(result, "enabled_set_computations") is not None

    def test_fastpath_records_compile_span_and_memo_counters(self):
        result = check(CheckPlan(store="fingerprint", successors="fast"))
        assert "compile" in span_names(result)
        hits = metric(result, "fastpath_memo_hits")
        misses = metric(result, "fastpath_memo_misses")
        assert hits is not None and misses is not None
        assert misses["total"] >= 1  # first guard evaluation always misses
        assert metric(result, "fastpath_memo_evictions") is not None
        assert metric(result, "fastpath_table_size") is not None

    def test_ndfs_records_red_phase_spans_and_gauges(self):
        entry = crash_recovery_entry(2, 1)
        result = run_plan(
            entry.quorum_model(), entry.liveness, CheckPlan(goal="liveness")
        )
        assert result.verified
        assert metric(result, "ndfs_red_states") is not None
        assert "red-phase" in span_names(result)

    def test_observer_sees_the_span_events_the_report_records(self):
        observer = CollectingObserver()
        result = check(CheckPlan(store="fingerprint", successors="fast"),
                       observer=observer)
        emitted = [e.payload["span"] for e in observer.events
                   if e.kind == "span-finished"]
        assert emitted == span_names(result)

    def test_throughput_gauge_matches_statistics(self):
        result = check(CheckPlan())
        gauge = metric(result, "states_per_second")
        if result.statistics.elapsed_seconds > 0:
            assert gauge["values"][0]["value"] == pytest.approx(
                result.statistics.states_visited
                / result.statistics.elapsed_seconds
            )


@pytest.mark.skipif(not HAS_FORK, reason="parallel engines require fork")
class TestParallelRunReports:
    def test_worksteal_records_per_worker_counters(self):
        result = check(CheckPlan(workers=2))
        claimed = metric(result, "worker_claimed")
        assert {v["labels"]["worker"] for v in claimed["values"]} == {"0", "1"}
        assert claimed["total"] == result.statistics.states_visited - 1
        assert metric(result, "worksteal_steals") is not None
        assert metric(result, "worksteal_publishes") is not None
        assert metric(result, "claim_table_stripe_size") is not None

    def test_worksteal_streams_live_worker_telemetry(self):
        observer = CollectingObserver()
        result = check(CheckPlan(workers=2), observer=observer)
        live = [e.payload for e in observer.events
                if e.kind == "worker-telemetry"]
        assert live, "coordinator never relayed a worker gauge flush"
        for payload in live:
            assert set(payload) == {
                "worker", "claimed", "transitions_executed", "revisits"
            }
            assert payload["worker"] in (0, 1)
        assert result.statistics.states_visited > 0

    def test_frontier_records_peak_and_worker_totals(self):
        observer = CollectingObserver()
        result = check(CheckPlan(shape="bfs", workers=2), observer=observer)
        assert metric(result, "frontier_peak") is not None
        transitions = metric(result, "worker_transitions_executed")
        assert transitions["total"] == result.statistics.transitions_executed
        live = [e.payload for e in observer.events
                if e.kind == "worker-telemetry"]
        for payload in live:
            assert set(payload) == {"worker", "expansions", "transitions_executed"}
        # Cumulative per-worker counters never decrease.
        by_worker = {}
        for payload in live:
            previous = by_worker.get(payload["worker"], (0, 0))
            current = (payload["expansions"], payload["transitions_executed"])
            assert current >= previous
            by_worker[payload["worker"]] = current

    def test_fast_worksteal_also_records_memo_counters(self):
        result = check(
            CheckPlan(workers=2, store="fingerprint", successors="fast")
        )
        assert metric(result, "fastpath_memo_misses") is not None
        assert metric(result, "worker_claimed") is not None


class TestTelemetryPlumbing:
    def test_run_plan_accepts_a_caller_owned_telemetry(self):
        telemetry = RunTelemetry()
        telemetry.metrics.counter("custom_metric").inc(7)
        result = run_plan(
            VERIFIED.quorum_model(), VERIFIED.invariant, CheckPlan(),
            telemetry=telemetry,
        )
        assert result.telemetry["metrics"]["custom_metric"]["total"] == 7
        assert result.telemetry["metrics"]["states_visited"]["total"] \
            == result.statistics.states_visited

    def test_direct_search_calls_need_no_telemetry(self):
        from repro.checker.search import SearchConfig, dfs_search

        outcome = dfs_search(
            VERIFIED.quorum_model(), VERIFIED.invariant, SearchConfig()
        )
        assert outcome.verified

    def test_maybe_span_is_a_noop_without_telemetry(self):
        with maybe_span(None, "compile"):
            pass
        telemetry = RunTelemetry()
        with maybe_span(telemetry, "compile", protocol="p"):
            pass
        assert telemetry.tracer.finished[0]["span"] == "compile"

    def test_peak_rss_is_reported_on_posix(self):
        report = RunTelemetry().snapshot()
        assert report.get("peak_rss_kb", 0) > 0
