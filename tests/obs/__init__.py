"""Tests for the observability layer (metrics, spans, sinks, trace export)."""
