"""Fault plans and the worker-side chaos hook.

The plan layer's promise is determinism: an explicit spec round-trips
through its string spelling, a seeded spec is a pure function of the root
seed, and the hook fires exactly the injections the plan names — at the
command indices it names — with nothing left to timing.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    CHAOS_ENV,
    ChaosHook,
    FaultPlan,
    FaultPlanError,
    chaos_hook_for_worker,
)
from repro.chaos.faults import DEFAULT_SLOW_SECONDS, DEFAULT_STALL_SECONDS


class TestFaultPlanParse:
    def test_none_and_empty_mean_no_plan(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None

    def test_explicit_crash(self):
        plan = FaultPlan.parse("crash:1@3")
        assert len(plan.injections) == 1
        injection = plan.injections[0]
        assert (injection.kind, injection.worker, injection.at_command) == (
            "crash", 1, 3
        )
        assert injection.seconds is None

    def test_stall_and_slow_default_seconds(self):
        plan = FaultPlan.parse("stall:0@2,slow:2@5")
        stall, slow = plan.injections
        assert stall.seconds == DEFAULT_STALL_SECONDS
        assert slow.seconds == DEFAULT_SLOW_SECONDS

    def test_explicit_seconds(self):
        plan = FaultPlan.parse("stall:0@2:7.5")
        assert plan.injections[0].seconds == 7.5

    def test_round_trip_through_spec(self):
        spec = "crash:1@3,stall:0@2:30,slow:2@5:0.2"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:1@3",        # unknown kind
            "crash:1",            # missing @nth
            "crash:x@3",          # non-integer worker
            "crash:1@0",          # commands count from 1
            "crash:-1@3",         # negative worker
            "stall:0@2:soon",     # bad seconds
            ",",                  # no injections
            "seed:abc",           # bad seed
            "seed:1:boom=2",      # unknown seeded kind
            "seed:1:crash",       # missing =count
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad, workers=4)


class TestSeededPlans:
    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(42, workers=4) == FaultPlan.seeded(42, workers=4)

    def test_different_seeds_differ(self):
        # Not guaranteed for every pair in principle, but pinned for these
        # two so a broken derivation (constant output) cannot pass.
        assert FaultPlan.seeded(1, workers=4) != FaultPlan.seeded(2, workers=4)

    def test_seeded_spec_defaults_to_one_crash(self):
        plan = FaultPlan.parse("seed:42", workers=4)
        assert len(plan.injections) == 1
        assert plan.injections[0].kind == "crash"

    def test_seeded_spec_counts(self):
        plan = FaultPlan.parse("seed:7:crash=2:stall=1", workers=4)
        kinds = sorted(injection.kind for injection in plan.injections)
        assert kinds == ["crash", "crash", "stall"]

    def test_seeded_workers_in_range(self):
        plan = FaultPlan.seeded(123, workers=3, crashes=8)
        assert all(0 <= injection.worker < 3 for injection in plan.injections)
        assert all(injection.at_command >= 1 for injection in plan.injections)

    def test_for_worker_sorted_by_command(self):
        plan = FaultPlan.parse("slow:1@5,crash:1@2,stall:0@1")
        mine = plan.for_worker(1)
        assert [injection.at_command for injection in mine] == [2, 5]
        assert plan.for_worker(3) == ()


class TestChaosHook:
    def test_crash_fires_at_exact_command(self):
        exits, sleeps = [], []
        hook = ChaosHook(
            FaultPlan.parse("crash:0@3"), worker=0,
            sleep=sleeps.append, exit=exits.append,
        )
        hook.on_command("a")
        hook.on_command("b")
        assert exits == []
        hook.on_command("c")
        assert exits == [1]
        assert [injection.kind for injection in hook.fired] == ["crash"]

    def test_other_workers_injections_never_fire(self):
        exits = []
        hook = ChaosHook(
            FaultPlan.parse("crash:1@1"), worker=0,
            sleep=lambda _s: None, exit=exits.append,
        )
        for _ in range(5):
            hook.on_command()
        assert exits == []

    def test_stall_and_slow_sleep(self):
        sleeps = []
        hook = ChaosHook(
            FaultPlan.parse("stall:0@1:9,slow:0@2:0.5"), worker=0,
            sleep=sleeps.append, exit=lambda _c: None,
        )
        hook.on_command()
        hook.on_command()
        assert sleeps == [9.0, 0.5]

    def test_multiple_injections_same_command(self):
        sleeps = []
        hook = ChaosHook(
            FaultPlan.parse("slow:0@2:0.1,slow:0@2:0.2"), worker=0,
            sleep=sleeps.append, exit=lambda _c: None,
        )
        hook.on_command()
        hook.on_command()
        assert sleeps == [0.1, 0.2]


class TestHookConstruction:
    def test_no_spec_no_env_means_none(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert chaos_hook_for_worker(None, 0, 4) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:2@4")
        hook = chaos_hook_for_worker(None, 2, 4)
        assert hook is not None
        assert hook._pending[0].at_command == 4

    def test_explicit_spec_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:0@1")
        hook = chaos_hook_for_worker("crash:0@9", 0, 4)
        assert hook._pending[0].at_command == 9

    def test_invalid_env_spec_raises(self, monkeypatch):
        # A typo'd plan must fail loudly, not make chaos tests pass vacuously.
        monkeypatch.setenv(CHAOS_ENV, "kaboom:0@1")
        with pytest.raises(FaultPlanError):
            chaos_hook_for_worker(None, 0, 4)
