"""Checkpoint/resume of the breadth-first searches.

A checkpoint written at a level barrier must restore into exactly the run
that wrote it: resuming completes with the same verdict and the same
visited/transition counts as the uninterrupted run — including resuming a
parallel checkpoint at a *different* worker count, since states (not
fingerprints) are serialised and the shard partition is recomputed at
load time.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.checker.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
)
from repro.checker.search import SearchConfig, bfs_search, dfs_search, ndfs_search
from repro.engine.events import CollectingObserver
from repro.parallel import parallel_bfs_search
from repro.protocols.catalog import storage_entry

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel checkpoint tests require the fork start method",
)


@pytest.fixture()
def cell():
    entry = storage_entry(3, 1)
    return entry.single_model(), entry.invariant


class TestCheckpointFiles:
    def test_serial_run_writes_checkpoints(self, cell, tmp_path):
        protocol, invariant = cell
        observer = CollectingObserver()
        outcome = bfs_search(
            protocol, invariant,
            SearchConfig(checkpoint_dir=str(tmp_path)),
            observer=observer,
        )
        assert outcome.complete
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names
        assert all(name.startswith("checkpoint-") for name in names)
        written = [
            event for event in observer.events
            if event.kind == "checkpoint-written"
        ]
        assert len(written) == len(names)
        assert written[0].payload["path"] == str(
            checkpoint_path(str(tmp_path), written[0].payload["depth"])
        )

    def test_checkpoint_every_thins_the_series(self, cell, tmp_path):
        protocol, invariant = cell
        every = tmp_path / "every"
        sparse = tmp_path / "sparse"
        bfs_search(protocol, invariant, SearchConfig(checkpoint_dir=str(every)))
        bfs_search(
            protocol, invariant,
            SearchConfig(checkpoint_dir=str(sparse), checkpoint_every=3),
        )
        assert 0 < len(list(sparse.iterdir())) < len(list(every.iterdir()))

    def test_latest_checkpoint_picks_deepest(self, cell, tmp_path):
        protocol, invariant = cell
        bfs_search(protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path)))
        names = sorted(path.name for path in tmp_path.iterdir())
        assert latest_checkpoint(str(tmp_path)).endswith(names[-1])

    def test_load_rejects_missing_and_garbage(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path))  # empty directory
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(garbage))

    def test_load_validates_version(self, cell, tmp_path):
        import pickle

        protocol, invariant = cell
        bfs_search(protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path)))
        path = latest_checkpoint(str(tmp_path))
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["version"] == CHECKPOINT_VERSION
        payload["version"] = CHECKPOINT_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_describe_mentions_depth_and_states(self, cell, tmp_path):
        protocol, invariant = cell
        bfs_search(protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path)))
        checkpoint = load_checkpoint(str(tmp_path))
        description = checkpoint.describe()
        assert str(checkpoint.depth) in description
        assert str(len(checkpoint.states)) in description


class TestSerialResume:
    def test_resume_from_every_checkpoint_matches(self, cell, tmp_path):
        protocol, invariant = cell
        base = bfs_search(
            protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path))
        )
        for path in sorted(tmp_path.iterdir()):
            resumed = bfs_search(
                protocol, invariant, SearchConfig(resume_from=str(path))
            )
            assert resumed.verified == base.verified
            assert resumed.complete
            assert (
                resumed.statistics.states_visited
                == base.statistics.states_visited
            )
            assert (
                resumed.statistics.transitions_executed
                == base.statistics.transitions_executed
            )

    def test_resume_from_directory_uses_latest(self, cell, tmp_path):
        protocol, invariant = cell
        base = bfs_search(
            protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path))
        )
        resumed = bfs_search(
            protocol, invariant, SearchConfig(resume_from=str(tmp_path))
        )
        assert resumed.statistics.states_visited == base.statistics.states_visited

    def test_resume_rejects_wrong_protocol(self, cell, tmp_path):
        protocol, invariant = cell
        bfs_search(protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path)))
        other = storage_entry(3, 2).single_model()
        with pytest.raises(CheckpointError):
            bfs_search(
                other, invariant, SearchConfig(resume_from=str(tmp_path))
            )

    def test_truncated_run_resumes_to_completion(self, cell, tmp_path):
        # The kill→resume story in miniature: a budget-truncated run
        # stands in for a killed process (same on-disk state), and the
        # resumed run must land on the uninterrupted totals.
        protocol, invariant = cell
        base = bfs_search(protocol, invariant)
        truncated = bfs_search(
            protocol, invariant,
            SearchConfig(checkpoint_dir=str(tmp_path), max_states=500),
        )
        assert truncated.complete is False
        resumed = bfs_search(
            protocol, invariant, SearchConfig(resume_from=str(tmp_path))
        )
        assert resumed.complete
        assert resumed.statistics.states_visited == base.statistics.states_visited


@needs_fork
class TestParallelResume:
    def test_parallel_checkpoint_resumes_at_any_worker_count(self, cell, tmp_path):
        protocol, invariant = cell
        base = bfs_search(protocol, invariant)
        full = parallel_bfs_search(
            protocol, invariant,
            SearchConfig(checkpoint_dir=str(tmp_path), checkpoint_every=2),
            workers=4,
        )
        assert full.statistics.states_visited == base.statistics.states_visited
        first = sorted(tmp_path.iterdir())[0]
        for workers in (1, 2, 3):
            resumed = parallel_bfs_search(
                protocol, invariant,
                SearchConfig(resume_from=str(first)), workers=workers,
            )
            assert resumed.verified == base.verified
            assert resumed.complete
            assert (
                resumed.statistics.states_visited
                == base.statistics.states_visited
            )

    def test_serial_checkpoint_resumes_in_parallel_and_back(self, cell, tmp_path):
        protocol, invariant = cell
        base = bfs_search(
            protocol, invariant, SearchConfig(checkpoint_dir=str(tmp_path))
        )
        middle = sorted(tmp_path.iterdir())[len(list(tmp_path.iterdir())) // 2]
        crossed = parallel_bfs_search(
            protocol, invariant, SearchConfig(resume_from=str(middle)), workers=2
        )
        assert crossed.statistics.states_visited == base.statistics.states_visited

    def test_checkpointing_requires_parent_tracking(self, cell, tmp_path):
        protocol, invariant = cell
        with pytest.raises(ValueError, match="track_parents"):
            parallel_bfs_search(
                protocol, invariant,
                SearchConfig(checkpoint_dir=str(tmp_path)),
                workers=2, track_parents=False,
            )


class TestCheckpointKnobRejection:
    """Engines without level barriers refuse the knobs loudly."""

    @pytest.mark.parametrize("knob", [
        {"checkpoint_dir": "/tmp/nope"},
        {"resume_from": "/tmp/nope"},
    ])
    def test_dfs_rejects(self, cell, knob):
        protocol, invariant = cell
        with pytest.raises(ValueError, match="checkpoint"):
            dfs_search(protocol, invariant, SearchConfig(**knob))

    def test_ndfs_rejects(self, cell):
        protocol, invariant = cell
        with pytest.raises(ValueError, match="checkpoint"):
            ndfs_search(
                protocol, invariant,
                SearchConfig(checkpoint_dir="/tmp/nope"),
            )
