"""Worker crash detection and supervised recovery.

The contract under test, at both ends of the supervision switch:

* ``supervise=False``: an injected hard worker death (``os._exit``, the
  same shape as a SIGKILL or the OOM killer) surfaces promptly as a
  structured :class:`WorkerCrashError` inside the engine and as an honest
  ``Inconclusive (worker crash)`` outcome outside it — never a hang,
  never a bare traceback.
* ``supervise=True`` (the default): the dead worker is restarted, its
  lost work re-executed deterministically, and the run's verdict *and
  exact counts* equal the uninterrupted serial run's.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.checker.search import SearchConfig, bfs_search
from repro.engine.events import CollectingObserver
from repro.obs.telemetry import RunTelemetry
from repro.parallel import default_mp_context, parallel_bfs_search
from repro.parallel.worker import (
    WorkerCrashError,
    collect_replies,
    shutdown_processes,
)
from repro.protocols.catalog import multicast_entry, storage_entry
from repro.swarm.search import parallel_swarm_search

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos recovery tests require the fork start method",
)


def _reply_then_exit(result_queue, worker_id):
    result_queue.put(("expanded", worker_id, [], 0, 0))


def _die_silently():
    os._exit(1)


class TestCollectReplies:
    """The collector itself, driven with real processes at 2 and 4 workers."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_crashed_worker_raises_structured_error(self, workers):
        context = default_mp_context()
        result_queue = context.Queue()
        processes = []
        # Worker 0 dies without replying; everyone else replies then exits.
        for worker_id in range(workers):
            if worker_id == 0:
                process = context.Process(target=_die_silently)
            else:
                process = context.Process(
                    target=_reply_then_exit, args=(result_queue, worker_id)
                )
            process.start()
            processes.append(process)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                collect_replies(
                    result_queue, workers, "expanded",
                    timeout=60.0, processes=processes,
                )
            crash = excinfo.value
            assert crash.phase == "expanded"
            assert crash.workers == (0,)
            # Survivors' replies are preserved for the supervisor.
            assert crash.replies is not None
            assert crash.replies[0] is None
            for worker_id in range(1, workers):
                assert crash.replies[worker_id] is not None
            assert "worker(s) 0" in str(crash)
        finally:
            shutdown_processes(processes, queues=[result_queue])

    def test_prefilled_replies_are_not_reawaited(self):
        context = default_mp_context()
        result_queue = context.Queue()
        process = context.Process(
            target=_reply_then_exit, args=(result_queue, 1)
        )
        process.start()
        # Worker 0's reply is pre-filled (as after a restart); only worker
        # 1's reply is actually collected.
        prefilled = [("expanded", 0, [], 0, 0)[1:], None]
        try:
            replies = collect_replies(
                result_queue, 2, "expanded", timeout=60.0,
                processes=[process, process], replies=prefilled,
            )
            assert replies[0] == (0, [], 0, 0)
            assert replies[1] == (1, [], 0, 0)
        finally:
            shutdown_processes([process], queues=[result_queue])


class TestShutdownLadder:
    def test_exited_workers_need_no_escalation(self):
        context = default_mp_context()
        processes = [context.Process(target=_noop) for _ in range(3)]
        for process in processes:
            process.start()
        assert shutdown_processes(processes) == 0
        assert all(not process.is_alive() for process in processes)

    def test_wedged_worker_is_terminated_and_counted(self):
        context = default_mp_context()
        process = context.Process(target=_sleep_forever)
        process.start()
        telemetry = RunTelemetry()
        # Patch the grace down so the test doesn't wait the full ladder.
        import repro.parallel.worker as worker_module

        original = worker_module._SHUTDOWN_GRACE_SECONDS
        worker_module._SHUTDOWN_GRACE_SECONDS = 0.2
        try:
            escalated = shutdown_processes([process], telemetry=telemetry)
        finally:
            worker_module._SHUTDOWN_GRACE_SECONDS = original
        assert escalated == 1
        assert not process.is_alive()
        assert (
            telemetry.metrics.counter("worker_shutdown_escalations").total() == 1
        )


def _noop():
    pass


def _sleep_forever():
    import time

    while True:
        time.sleep(60)


class TestFrontierRecovery:
    """Chaos-injected crashes against the frontier-parallel BFS."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_supervised_run_matches_serial_exactly(self, workers):
        entry = storage_entry(3, 1)
        serial = bfs_search(entry.single_model(), entry.invariant)
        observer = CollectingObserver()
        telemetry = RunTelemetry()
        recovered = parallel_bfs_search(
            entry.single_model(), entry.invariant,
            SearchConfig(chaos="crash:1@3"),
            workers=workers, observer=observer, telemetry=telemetry,
        )
        assert recovered.verified == serial.verified
        assert recovered.complete
        assert recovered.incomplete_reason is None
        assert (
            recovered.statistics.states_visited
            == serial.statistics.states_visited
        )
        assert (
            recovered.statistics.transitions_executed
            == serial.statistics.transitions_executed
        )
        counts = observer.counts()
        assert counts.get("worker-crashed") == 1
        assert counts.get("worker-restarted") == 1
        assert telemetry.metrics.counter("worker_crashes").total() == 1
        assert telemetry.metrics.counter("worker_restarts").total() == 1

    def test_crash_at_expand_barrier_recovers(self):
        # Command 2 is the first expand: the worker dies before sending
        # any expanded reply, exercising the expand-phase resend path.
        entry = storage_entry(3, 1)
        serial = bfs_search(entry.single_model(), entry.invariant)
        recovered = parallel_bfs_search(
            entry.single_model(), entry.invariant,
            SearchConfig(chaos="crash:0@2"), workers=4,
        )
        assert recovered.complete
        assert (
            recovered.statistics.states_visited
            == serial.statistics.states_visited
        )

    def test_violating_cell_verdict_survives_crash(self):
        entry = multicast_entry(2, 1, 2, 1)
        baseline = parallel_bfs_search(
            entry.quorum_model(), entry.invariant, workers=4
        )
        recovered = parallel_bfs_search(
            entry.quorum_model(), entry.invariant,
            SearchConfig(chaos="crash:1@3"), workers=4,
        )
        assert baseline.verified is False
        assert recovered.verified is False
        assert recovered.counterexample is not None

    @pytest.mark.parametrize("workers", [2, 4])
    def test_unsupervised_run_fails_honestly(self, workers):
        entry = storage_entry(3, 1)
        observer = CollectingObserver()
        outcome = parallel_bfs_search(
            entry.single_model(), entry.invariant,
            SearchConfig(chaos="crash:1@3", supervise=False),
            workers=workers, observer=observer,
        )
        assert outcome.complete is False
        assert outcome.incomplete_reason == "worker crash"
        assert outcome.verified is True  # no violation seen — inconclusive
        assert observer.counts().get("worker-crashed") == 1
        assert "worker-restarted" not in observer.counts()

    def test_restart_budget_exhaustion_gives_up(self):
        # More planned crashes than MAX_WORKER_RESTARTS allows: the
        # supervisor must stop restarting and report honestly.  Each
        # restarted worker gets chaos=None, so distinct workers must crash
        # to spend the budget.
        from repro.parallel.bfs import MAX_WORKER_RESTARTS

        entry = storage_entry(3, 1)
        spec = ",".join(
            f"crash:{worker}@3" for worker in range(MAX_WORKER_RESTARTS + 1)
        )
        outcome = parallel_bfs_search(
            entry.single_model(), entry.invariant,
            SearchConfig(chaos=spec), workers=MAX_WORKER_RESTARTS + 1,
        )
        assert outcome.complete is False
        assert outcome.incomplete_reason == "worker crash"


class TestSwarmRecovery:
    """Chaos-injected crashes against the swarm walker pool."""

    def test_supervised_swarm_verdict_identical(self):
        entry = storage_entry(3, 1)
        config = SearchConfig(stateful=False)
        baseline = parallel_swarm_search(
            entry.single_model(), entry.invariant, config,
            walks=200, walk_seed=7, workers=4,
        )
        observer = CollectingObserver()
        recovered = parallel_swarm_search(
            entry.single_model(), entry.invariant,
            SearchConfig(stateful=False, chaos="crash:2@5"),
            walks=200, walk_seed=7, workers=4, observer=observer,
        )
        assert recovered.verified == baseline.verified
        assert recovered.incomplete_reason is None
        counts = observer.counts()
        assert counts.get("worker-crashed") == 1
        assert counts.get("worker-restarted") == 1

    def test_unsupervised_swarm_reports_crash(self):
        entry = storage_entry(3, 1)
        outcome = parallel_swarm_search(
            entry.single_model(), entry.invariant,
            SearchConfig(stateful=False, chaos="crash:2@5", supervise=False),
            walks=200, walk_seed=7, workers=4,
        )
        assert outcome.incomplete_reason == "worker crash"
        assert outcome.complete is False
