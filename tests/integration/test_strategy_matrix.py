"""Cross-strategy conformance matrix.

The executable contract of the whole search stack: for every small catalog
cell, every engine — serial DFS, serial BFS, the frontier-parallel BFS, the
work-stealing parallel DFS and the stubborn-set reduction on top of either
DFS engine — must return the *same verdict*, and the exhaustive engines
(everything without a reduction) must visit *exactly* the same number of
states, pinned here as literal counts for 1, 2 and 4 workers.

Reduced (stubborn-set) runs are verdict-checked only: which access path
claims a state first is scheduling-dependent under work stealing, so their
visited counts may legitimately vary across runs, while always staying at
or below the exhaustive count on verified cells.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import replace

import pytest

from repro.checker import (
    CheckerOptions,
    ModelChecker,
    SearchConfig,
    Strategy,
    plan_for_strategy,
)
from repro.engine import CheckPlan, UnsupportedPlanError, default_registry, run_plan
from repro.engine.plan import REDUCTIONS, SHAPES
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the parallel engines require the fork start method",
)

#: Worker counts every parallel engine is pinned at.
WORKER_COUNTS = (1, 2, 4)

#: Exhaustive reachable-set sizes of the verified cells (the quorum model).
#: These are the serial DFS/BFS closures; every exhaustive engine at every
#: worker count must reproduce them exactly.
EXPECTED_STATES = {
    "paxos-2-2-1": 168,
    "multicast-3-0-1-1": 65,
    "multicast-2-1-0-1": 45,
    "storage-3-1": 697,
}

VERIFIED_CELLS = [
    pytest.param(paxos_entry(2, 2, 1), id="paxos-2-2-1"),
    pytest.param(multicast_entry(3, 0, 1, 1), id="multicast-3-0-1-1"),
    pytest.param(multicast_entry(2, 1, 0, 1), id="multicast-2-1-0-1"),
    pytest.param(storage_entry(3, 1), id="storage-3-1", marks=pytest.mark.slow),
]

VIOLATING_CELLS = [
    pytest.param(multicast_entry(2, 1, 2, 1), id="multicast-2-1-2-1"),
    pytest.param(
        paxos_entry(2, 3, 1, faulty=True),
        id="faulty-paxos-2-3-1",
        marks=pytest.mark.slow,
    ),
    pytest.param(
        storage_entry(3, 2, wrong_specification=True),
        id="storage-3-2-wrong",
        marks=pytest.mark.slow,
    ),
]

#: Exhaustive (reduction-free) strategies: DFS-shaped runs use the
#: work-stealing engine for workers > 1, BFS the frontier-parallel one.
EXHAUSTIVE_STRATEGIES = (Strategy.DFS, Strategy.BFS)


def run_cell(entry, strategy: Strategy, workers: int):
    options = CheckerOptions(search=SearchConfig(), workers=workers)
    return ModelChecker(entry.quorum_model(), entry.invariant, options).run(strategy)


class TestExhaustiveCountsPinned:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize(
        "strategy", EXHAUSTIVE_STRATEGIES, ids=["dfs", "bfs"]
    )
    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_visited_counts_identical_to_serial(self, entry, strategy, workers):
        result = run_cell(entry, strategy, workers)
        assert result.verified
        assert result.complete
        assert result.statistics.states_visited == EXPECTED_STATES[entry.key]


class TestVerdictAgreement:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VERIFIED_CELLS + VIOLATING_CELLS)
    def test_all_strategies_agree(self, entry, workers):
        expected = not entry.expect_violation
        for strategy in (Strategy.DFS, Strategy.BFS, Strategy.STUBBORN):
            result = run_cell(entry, strategy, workers)
            assert result.verified == expected, (
                f"{entry.key}: {strategy} x{workers} returned "
                f"{result.verified}, expected {expected}"
            )

    @pytest.mark.parametrize("entry", VIOLATING_CELLS)
    def test_violations_come_with_counterexamples(self, entry):
        result = run_cell(entry, Strategy.DFS, workers=2)
        assert not result.verified
        assert result.counterexample is not None
        assert len(result.counterexample.steps) > 0


class TestReducedRunsStayBelowExhaustive:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_stubborn_never_exceeds_exhaustive_count(self, entry, workers):
        reduced = run_cell(entry, Strategy.STUBBORN, workers)
        assert reduced.verified
        assert reduced.statistics.states_visited <= EXPECTED_STATES[entry.key]


class TestPlanApiConformance:
    """The plan/registry API against the legacy ``Strategy`` path.

    Acceptance contract of the API redesign: every (shape × reduction ×
    backend × workers) combination the registry reports as supported
    produces the same verdict — and, for the exhaustive engines, the same
    visited-state count — as the legacy path; unsupported combinations
    raise :class:`UnsupportedPlanError` naming the axis; and
    ``ModelChecker.run(Strategy.X)`` stays green through the shim.
    """

    ENTRY = multicast_entry(2, 1, 0, 1)

    def supported(self):
        return list(default_registry().supported_plans(worker_counts=WORKER_COUNTS))

    def test_every_supported_combination_matches_the_legacy_path(self):
        entry = self.ENTRY
        expected_states = EXPECTED_STATES[entry.key]
        combinations = self.supported()
        assert combinations
        for engine, plan in combinations:
            result = run_plan(entry.quorum_model(), entry.invariant, plan)
            assert result.engine == engine.name
            assert result.verified, f"{plan.describe()} via {engine.name}"
            if plan.reduction == "none":
                # Exhaustive engines reproduce the serial closure exactly.
                assert result.statistics.states_visited == expected_states, (
                    f"{plan.describe()} via {engine.name}"
                )
            elif plan.reduction in ("spor", "spor-net"):
                # Reduced runs are scheduling-dependent under work stealing;
                # the invariant is the verdict plus the exhaustive bound.
                assert result.statistics.states_visited <= expected_states
            else:  # dpor: serial and deterministic — compare to the legacy run.
                legacy = ModelChecker(entry.quorum_model(), entry.invariant).run(
                    Strategy.DPOR
                )
                assert (
                    result.statistics.states_visited
                    == legacy.statistics.states_visited
                )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize(
        "strategy",
        [Strategy.DFS, Strategy.STUBBORN, Strategy.SPOR_NET, Strategy.BFS],
        ids=["dfs", "stubborn", "spor-net", "bfs"],
    )
    def test_shim_and_plan_api_agree(self, strategy, workers):
        entry = self.ENTRY
        options = CheckerOptions(search=SearchConfig(), workers=workers)
        legacy = ModelChecker(entry.quorum_model(), entry.invariant, options).run(
            strategy
        )
        direct = run_plan(
            entry.quorum_model(), entry.invariant, plan_for_strategy(strategy, options)
        )
        assert legacy.verified == direct.verified
        assert legacy.strategy == direct.strategy
        assert legacy.engine == direct.engine
        if strategy in (Strategy.DFS, Strategy.BFS):
            assert (
                legacy.statistics.states_visited
                == direct.statistics.states_visited
                == EXPECTED_STATES[entry.key]
            )

    def test_unsupported_combinations_raise_with_the_axis_named(self):
        registry = default_registry()
        supported = {
            (plan.shape, plan.reduction, plan.backend, plan.workers)
            for _, plan in self.supported()
        }
        backends = ("serial", "frontier", "worksteal")
        for shape, reduction, backend, workers in itertools.product(
            SHAPES, REDUCTIONS, backends, WORKER_COUNTS
        ):
            stateful = reduction != "dpor"
            plan = CheckPlan(
                shape=shape,
                reduction=reduction,
                store="full" if stateful else "none",
                backend=backend,
                workers=workers,
                stateful=stateful,
            )
            if (shape, reduction, backend, workers) in supported:
                engine, _ = registry.resolve(plan)
                assert engine.capabilities.supports(plan)
            else:
                with pytest.raises(UnsupportedPlanError) as excinfo:
                    registry.resolve(plan)
                assert excinfo.value.axis in plan.axes()

    def test_dpor_workers_stay_rejected_through_the_shim(self):
        checker = ModelChecker(
            self.ENTRY.quorum_model(),
            self.ENTRY.invariant,
            CheckerOptions(workers=2),
        )
        with pytest.raises(ValueError, match="backtrack sets"):
            checker.run(Strategy.DPOR)


class TestFastpathTwinConformance:
    """Every fast-path engine variant against its object-graph twin.

    The ISSUE-5 acceptance contract: byte-identical verdicts and
    visited-state counts across the conformance matrix for workers 1, 2
    and 4.  Exhaustive fast runs must reproduce the pinned serial closures
    exactly; reduced fast runs are verdict-checked and bounded, mirroring
    the treatment of their object twins.
    """

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_fast_dfs_counts_identical_to_pinned_closure(self, entry, workers):
        # workers=1 resolves to serial-dfs-fast, above to worksteal-dfs-fast.
        result = run_plan(
            entry.quorum_model(), entry.invariant,
            CheckPlan(successors="fast", workers=workers),
        )
        assert result.engine == (
            "serial-dfs-fast" if workers == 1 else "worksteal-dfs-fast"
        )
        assert result.verified
        assert result.complete
        assert result.statistics.states_visited == EXPECTED_STATES[entry.key]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_fast_bfs_counts_identical_to_pinned_closure(self, entry, workers):
        # workers=1 resolves to serial-bfs-fast, above to frontier-bfs-fast
        # (fingerprint store — collision-free on these cells, so the
        # fingerprint closure equals the exact closure).
        result = run_plan(
            entry.quorum_model(), entry.invariant,
            CheckPlan(shape="bfs", store="fingerprint",
                      successors="fast", workers=workers),
        )
        assert result.engine == (
            "serial-bfs-fast" if workers == 1 else "frontier-bfs-fast"
        )
        assert result.verified
        assert result.statistics.states_visited == EXPECTED_STATES[entry.key]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_fast_spor_verdicts_agree_and_stay_bounded(self, entry, workers):
        result = run_plan(
            entry.quorum_model(), entry.invariant,
            CheckPlan(reduction="spor", successors="fast", workers=workers),
        )
        assert result.verified
        assert result.statistics.states_visited <= EXPECTED_STATES[entry.key]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("entry", VIOLATING_CELLS)
    def test_fast_engines_find_the_violations(self, entry, workers):
        for plan in (
            CheckPlan(successors="fast", workers=workers),
            CheckPlan(shape="bfs", store="fingerprint",
                      successors="fast", workers=workers),
        ):
            result = run_plan(entry.quorum_model(), entry.invariant, plan)
            assert not result.verified, f"{entry.key}: {plan.describe()}"
            assert result.counterexample is not None
            assert len(result.counterexample.steps) > 0

    def test_every_supported_fast_combination_matches_its_object_twin(self):
        """The full fast grid against the object grid, axis for axis."""
        entry = multicast_entry(2, 1, 0, 1)
        registry = default_registry()
        fast_grid = list(registry.supported_plans(
            worker_counts=WORKER_COUNTS,
            stores=("fingerprint",),
            successor_modes=("fast",),
        ))
        assert fast_grid
        for engine, plan in fast_grid:
            twin = replace(plan, successors="object", backend="auto")
            fast_result = run_plan(entry.quorum_model(), entry.invariant, plan)
            twin_result = run_plan(entry.quorum_model(), entry.invariant, twin)
            assert fast_result.engine == engine.name
            assert fast_result.verified == twin_result.verified, plan.describe()
            if plan.reduction == "none":
                assert (
                    fast_result.statistics.states_visited
                    == twin_result.statistics.states_visited
                ), plan.describe()


class TestDepthConsistency:
    """All engines count ``max_depth`` in edges (regression for the
    historical off-by-one where BFS counted its final empty level)."""

    @pytest.mark.parametrize("entry", VERIFIED_CELLS)
    def test_dfs_and_bfs_depths_agree(self, entry):
        # The bundled protocols have graded state graphs (every path to a
        # state has the same length), so DFS depth == BFS depth holds and
        # pins the shared edge-counting convention.
        dfs = run_cell(entry, Strategy.DFS, workers=1)
        bfs = run_cell(entry, Strategy.BFS, workers=1)
        assert dfs.statistics.max_depth == bfs.statistics.max_depth

    @pytest.mark.parametrize("workers", (2, 4))
    def test_parallel_engines_report_the_same_depth(self, workers):
        entry = multicast_entry(2, 1, 0, 1)
        serial = run_cell(entry, Strategy.DFS, workers=1)
        worksteal = run_cell(entry, Strategy.DFS, workers=workers)
        frontier = run_cell(entry, Strategy.BFS, workers=workers)
        assert (
            worksteal.statistics.max_depth
            == frontier.statistics.max_depth
            == serial.statistics.max_depth
        )
