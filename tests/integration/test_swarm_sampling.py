"""Integration: swarm sampling against the exhaustive ground truth.

Swarm walks are incomplete by construction, so the cross-strategy contract
is one-sided: a swarm *violation* must be a real counterexample (replayable,
end state falsifies the invariant, agreeing with the exhaustive verdict),
and a swarm *budget exhaustion* must stay inconclusive — it may never
contradict an exhaustive "verified" with anything stronger.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine.plan import CheckPlan
from repro.engine.registry import run_plan
from repro.protocols.catalog import entry_by_key

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: The paper's "wrong agreement" Echo Multicast setting: Byzantine receivers
#: above the assumed threshold, violated in the exhaustive search.
VIOLATING_KEY = "multicast-2-1-2-1"
CLEAN_KEY = "multicast-2-1-0-1"
ROOT_SEED = 7


def swarm_check(key, walks=50_000, workers=1, **overrides):
    entry = entry_by_key(key, "small")
    protocol = entry.quorum_model()
    plan = CheckPlan(
        shape="dfs", reduction="none", backend="swarm", stateful=False,
        walks=walks, walk_seed=ROOT_SEED, workers=workers, **overrides,
    )
    return run_plan(protocol, entry.invariant, plan), protocol, entry


def exhaustive_check(key):
    entry = entry_by_key(key, "small")
    return run_plan(entry.quorum_model(), entry.invariant, CheckPlan())


class TestSwarmFindsTheKnownViolation:
    def test_seeded_run_finds_the_multicast_violation(self):
        result, protocol, entry = swarm_check(VIOLATING_KEY)
        assert result.outcome() == "violated"
        assert exhaustive_check(VIOLATING_KEY).outcome() == "violated"

        ce = result.counterexample
        assert ce.cycle_start is None  # lasso-free: a finite safety trace
        states = ce.replay(protocol)   # raises on any divergence
        # The walk genuinely ends in a bad state, not merely a deep one.
        assert not entry.invariant.holds_in(states[-1], protocol)
        for state in states[:-1]:
            assert entry.invariant.holds_in(state, protocol)

    def test_violating_trace_is_seed_reproducible(self):
        first, _, _ = swarm_check(VIOLATING_KEY)
        second, _, _ = swarm_check(VIOLATING_KEY)
        assert (first.counterexample.transition_names()
                == second.counterexample.transition_names())
        assert first.statistics.transitions_executed \
            == second.statistics.transitions_executed

    def test_fast_walker_agrees_with_the_object_walker(self):
        object_result, _, _ = swarm_check(VIOLATING_KEY)
        fast_result, _, _ = swarm_check(VIOLATING_KEY, successors="fast")
        assert (object_result.counterexample.transition_names()
                == fast_result.counterexample.transition_names())

    @pytest.mark.skipif(not HAS_FORK, reason="walker pool requires fork")
    def test_walker_pool_agrees_with_the_serial_walker(self):
        serial, _, _ = swarm_check(VIOLATING_KEY)
        pooled, protocol, _ = swarm_check(VIOLATING_KEY, workers=4)
        assert pooled.outcome() == "violated"
        assert (pooled.counterexample.transition_names()
                == serial.counterexample.transition_names())
        pooled.counterexample.replay(protocol)


class TestSwarmNeverContradictsExhaustiveVerification:
    def test_clean_cell_budget_exhaustion_stays_inconclusive(self):
        exhaustive = exhaustive_check(CLEAN_KEY)
        assert exhaustive.outcome() == "verified"
        sampled, _, _ = swarm_check(CLEAN_KEY, walks=500)
        assert sampled.outcome() == "inconclusive"
        assert not sampled.complete
        assert sampled.counterexample is None

    def test_lossy_catalog_cells_keep_the_expectation_formula(self):
        # Message loss only removes deliveries: the lossy clean cell stays
        # clean under sampling, the lossy wrong-agreement cell still yields
        # a replayable counterexample.
        clean, _, _ = swarm_check(CLEAN_KEY + "-lossy", walks=500)
        assert clean.outcome() == "inconclusive"
        violated, protocol, _ = swarm_check(VIOLATING_KEY + "-lossy")
        assert violated.outcome() == "violated"
        violated.counterexample.replay(protocol)
