"""Integration: transition refinement preserves state graphs and verdicts.

Theorem 1 of the paper states that a property preserved by POR holds in the
reduction of a transition system iff it holds in the reduction of any of its
refinements; Theorem 2 states quorum-split is such a refinement.  These
tests check both executable consequences on the bundled protocols: the
refined models generate identical state graphs (on instances small enough to
enumerate) and every split strategy produces the same verdict under every
search strategy.
"""

import pytest

from repro.checker import ModelChecker, Strategy
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry
from repro.refine import combined_split, is_transition_refinement, quorum_split, reply_split

REFINEMENTS = [
    ("reply-split", reply_split),
    ("quorum-split", quorum_split),
    ("combined-split", combined_split),
]

ENTRIES = [
    paxos_entry(2, 2, 1),
    paxos_entry(2, 3, 1, faulty=True),
    multicast_entry(3, 0, 1, 1),
    multicast_entry(2, 1, 2, 1),
    storage_entry(2, 1),
    storage_entry(3, 2, wrong_specification=True),
]

SMALL_GRAPH_ENTRIES = [
    paxos_entry(1, 3, 1),
    multicast_entry(2, 1, 0, 1),
    storage_entry(2, 1),
]


@pytest.mark.parametrize("label, split", REFINEMENTS, ids=[name for name, _ in REFINEMENTS])
class TestStateGraphEquivalence:
    @pytest.mark.parametrize(
        "entry", SMALL_GRAPH_ENTRIES, ids=[e.key for e in SMALL_GRAPH_ENTRIES]
    )
    def test_refined_model_generates_same_state_graph(self, label, split, entry):
        original = entry.quorum_model()
        refined = split(original)
        assert is_transition_refinement(original, refined, max_states=100_000)


@pytest.mark.parametrize("label, split", REFINEMENTS, ids=[name for name, _ in REFINEMENTS])
@pytest.mark.parametrize("entry", ENTRIES, ids=[e.key for e in ENTRIES])
class TestVerdictPreservation:
    def test_split_model_same_verdict_under_spor_net(self, label, split, entry):
        original = entry.quorum_model()
        refined = split(original)
        base_result = ModelChecker(original, entry.invariant).run(Strategy.SPOR_NET)
        refined_result = ModelChecker(refined, entry.invariant).run(Strategy.SPOR_NET)
        assert base_result.verified == refined_result.verified == (not entry.expect_violation)

    def test_split_model_same_verdict_under_unreduced_search(self, label, split, entry):
        if entry.key in ("paxos-2-2-1", "faulty-paxos-2-3-1", "storage-3-2-wrong"):
            pytest.skip("unreduced exploration of this instance is slow; covered by SPOR-NET")
        original = entry.quorum_model()
        refined = split(original)
        base_result = ModelChecker(original, entry.invariant).run(Strategy.UNREDUCED)
        refined_result = ModelChecker(refined, entry.invariant).run(Strategy.UNREDUCED)
        assert base_result.verified == refined_result.verified


class TestRefinementReductionTrends:
    def test_combined_split_never_worse_for_multicast_3111(self):
        entry = multicast_entry(3, 1, 1, 1)
        original = entry.quorum_model()
        unsplit = ModelChecker(original, entry.invariant).run(Strategy.SPOR_NET)
        combined = ModelChecker(combined_split(original), entry.invariant).run(Strategy.SPOR_NET)
        assert combined.verified and unsplit.verified
        assert combined.statistics.states_visited <= unsplit.statistics.states_visited

    def test_reply_split_helps_paxos(self):
        entry = paxos_entry(2, 3, 1)
        original = entry.quorum_model()
        unsplit = ModelChecker(original, entry.invariant).run(Strategy.SPOR_NET)
        split = ModelChecker(reply_split(original), entry.invariant).run(Strategy.SPOR_NET)
        assert split.verified and unsplit.verified
        assert split.statistics.states_visited <= unsplit.statistics.states_visited
