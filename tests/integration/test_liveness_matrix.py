"""Liveness conformance matrix over the cyclic crash-recovery family.

Extends the cross-strategy matrix with the rows the liveness layer adds:

* the two nested-DFS engines (object-graph and packed) agree on verdicts,
  trace lengths and lasso shape for every cyclic catalog cell;
* stubborn-set reduction on the *cyclic* protocol stays sound — the
  cycle-aware proviso keeps the verdict identical while visiting at most
  the exhaustive state count (pinned);
* every unsupported goal x reduction x backend combination is refused with
  a structured :class:`UnsupportedPlanError` whose suggested alternative is
  itself runnable — no silent unsoundness, no dead-end diagnostics.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.checker import ndfs_search
from repro.engine import CheckPlan, UnsupportedPlanError, default_registry, run_plan
from repro.engine.registry import resolve
from repro.fastpath.search import fast_ndfs_search
from repro.protocols.catalog import crash_recovery_entry

pytestmark = pytest.mark.liveness

#: The cyclic catalog cells: (entry, expected liveness verdict).
CYCLIC_CELLS = [
    pytest.param(crash_recovery_entry(2, 1), id="crashrecovery-2-1"),
    pytest.param(
        crash_recovery_entry(2, 1, starved=True), id="crashrecovery-2-1-starved"
    ),
]

#: Exhaustive reachable-set sizes of the crash-recovery (2,1) cells.
EXPECTED_STATES = {"quorum": 18, "single": 30}

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the parallel engines require the fork start method",
)


class TestEngineParity:
    @pytest.mark.parametrize("entry", CYCLIC_CELLS)
    @pytest.mark.parametrize("model", ["quorum", "single"])
    def test_object_and_packed_ndfs_agree(self, entry, model):
        protocol = (
            entry.quorum_model() if model == "quorum" else entry.single_model()
        )
        slow = ndfs_search(protocol, entry.liveness)
        fast = fast_ndfs_search(protocol, entry.liveness)
        assert slow.verified == fast.verified
        assert slow.verified == (not entry.expect_liveness_violation)
        assert slow.statistics.states_visited == fast.statistics.states_visited
        if entry.expect_liveness_violation:
            assert len(slow.counterexample.steps) == len(fast.counterexample.steps)
            assert slow.counterexample.cycle_start == fast.counterexample.cycle_start
            assert slow.counterexample.is_lasso

    @pytest.mark.parametrize("entry", CYCLIC_CELLS)
    def test_liveness_plans_route_through_the_registry(self, entry):
        protocol = entry.quorum_model()
        result = run_plan(protocol, entry.liveness, CheckPlan(goal="liveness"))
        assert result.verified == (not entry.expect_liveness_violation)


class TestCycleAwareReduction:
    """SPOR on the cyclic state graph: sound, and still a reduction."""

    @pytest.mark.parametrize("model", ["quorum", "single"])
    def test_spor_matches_the_exhaustive_verdict_with_fewer_states(self, model):
        entry = crash_recovery_entry(2, 1)
        build = entry.quorum_model if model == "quorum" else entry.single_model
        exhaustive = run_plan(build(), entry.invariant, CheckPlan())
        reduced = run_plan(build(), entry.invariant, CheckPlan(reduction="spor"))
        assert exhaustive.verified and reduced.verified
        assert exhaustive.statistics.states_visited == EXPECTED_STATES[model]
        # The cycle-aware proviso (full expansion on stack revisit) may cost
        # states relative to a blithely unsound proviso, but never more than
        # the exhaustive closure.
        assert (
            reduced.statistics.states_visited
            <= exhaustive.statistics.states_visited
        )

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_unreduced_parallel_runs_agree_on_the_cyclic_cell(self, workers):
        entry = crash_recovery_entry(2, 1)
        result = run_plan(
            entry.quorum_model(), entry.invariant, CheckPlan(workers=workers)
        )
        assert result.verified
        assert result.statistics.states_visited == EXPECTED_STATES["quorum"]

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worksteal_spor_on_a_cyclic_protocol_is_refused(self, workers):
        # The work-stealing DFS has no global stack, so the cycle proviso
        # cannot be enforced; the combination is refused, not silently run.
        entry = crash_recovery_entry(2, 1)
        plan = CheckPlan(reduction="spor", workers=workers)
        with pytest.raises(UnsupportedPlanError) as excinfo:
            run_plan(entry.quorum_model(), entry.invariant, plan)
        error = excinfo.value
        assert error.alternative is not None
        # The suggested alternative actually runs, with the right verdict.
        fallback = run_plan(entry.quorum_model(), entry.invariant, error.alternative)
        assert fallback.verified

    @needs_fork
    def test_worksteal_spor_still_runs_on_acyclic_protocols(self):
        # The refusal is keyed on the cyclic_state_graph metadata flag, not
        # on the reduction alone: acyclic families keep their parallel SPOR.
        from repro.protocols.catalog import multicast_entry

        entry = multicast_entry(2, 1, 0, 1)
        result = run_plan(
            entry.quorum_model(),
            entry.invariant,
            CheckPlan(reduction="spor", workers=2),
        )
        assert result.verified == (not entry.expect_violation)


class TestStructuredRefusals:
    def test_goal_mismatch_invariant_under_liveness_plan(self):
        entry = crash_recovery_entry(2, 1)
        with pytest.raises(UnsupportedPlanError) as excinfo:
            run_plan(entry.quorum_model(), entry.invariant, CheckPlan(goal="liveness"))
        error = excinfo.value
        assert error.axis == "goal"
        assert error.alternative.goal == "invariant"
        assert run_plan(
            entry.quorum_model(), entry.invariant, error.alternative
        ).verified

    def test_goal_mismatch_liveness_property_under_invariant_plan(self):
        entry = crash_recovery_entry(2, 1)
        with pytest.raises(UnsupportedPlanError) as excinfo:
            run_plan(entry.quorum_model(), entry.liveness, CheckPlan())
        error = excinfo.value
        assert error.axis == "goal"
        assert error.alternative.goal == "liveness"
        assert run_plan(
            entry.quorum_model(), entry.liveness, error.alternative
        ).verified

    @pytest.mark.parametrize("plan", [
        pytest.param(CheckPlan(goal="liveness", shape="bfs"), id="bfs"),
        pytest.param(CheckPlan(goal="liveness", workers=2), id="parallel"),
        pytest.param(CheckPlan(goal="liveness", reduction="spor"), id="spor"),
        pytest.param(CheckPlan(goal="liveness", reduction="dpor"), id="dpor"),
        pytest.param(CheckPlan(goal="liveness", stateful=False), id="stateless"),
    ])
    def test_unsupported_liveness_combinations_raise_resolvable_errors(self, plan):
        with pytest.raises(UnsupportedPlanError) as excinfo:
            resolve(plan)
        alternative = excinfo.value.alternative
        assert alternative is not None
        engine, _ = resolve(alternative)
        assert engine is not None


class TestSupportedPlansGrid:
    def test_liveness_plans_appear_in_the_extended_grid(self):
        combinations = list(
            default_registry().supported_plans(
                successor_modes=("object", "fast"),
                goals=("invariant", "liveness"),
            )
        )
        liveness = [
            (engine, plan)
            for engine, plan in combinations
            if plan.goal == "liveness"
        ]
        assert liveness
        names = {engine.name for engine, _ in liveness}
        assert names == {"serial-ndfs", "serial-ndfs-fast"}
        for _, plan in liveness:
            assert plan.shape == "dfs"
            assert plan.reduction == "none"
            assert plan.workers == 1

    def test_default_grid_is_invariant_only(self):
        for _, plan in default_registry().supported_plans():
            assert plan.goal == "invariant"
