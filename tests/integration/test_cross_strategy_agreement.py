"""Integration: every search strategy must agree on every bundled workload.

This is the executable soundness argument for the reductions: for each
catalog entry (protocol instance + property + expected outcome), the
unreduced search, both static POR variants and — on the smaller instances —
the dynamic POR must return the same verdict, and that verdict must match
the paper's expectation (Verified or CE).
"""

import pytest

from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy
from repro.protocols.catalog import default_catalog, multicast_entry, paxos_entry, storage_entry

SMALL_ENTRIES = [
    paxos_entry(2, 2, 1),
    paxos_entry(2, 3, 1, faulty=True),
    multicast_entry(3, 0, 1, 1),
    multicast_entry(2, 1, 0, 1),
    multicast_entry(2, 1, 2, 1),
    storage_entry(2, 1),
    storage_entry(2, 1, wrong_specification=True),
    storage_entry(3, 1),
]

ENTRY_IDS = [entry.key for entry in SMALL_ENTRIES]


@pytest.mark.parametrize("entry", SMALL_ENTRIES, ids=ENTRY_IDS)
class TestQuorumModelVerdicts:
    def test_unreduced_matches_expectation(self, entry):
        result = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.UNREDUCED)
        assert result.verified == (not entry.expect_violation)

    @pytest.mark.parametrize("strategy", [Strategy.SPOR, Strategy.SPOR_NET])
    def test_static_por_matches_expectation(self, entry, strategy):
        result = ModelChecker(entry.quorum_model(), entry.invariant).run(strategy)
        assert result.verified == (not entry.expect_violation)

    def test_static_por_explores_no_more_states_than_unreduced(self, entry):
        if entry.expect_violation:
            pytest.skip("state counts are only comparable for full verification runs")
        unreduced = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.UNREDUCED)
        reduced = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.SPOR_NET)
        assert reduced.statistics.states_visited <= unreduced.statistics.states_visited


@pytest.mark.parametrize("entry", SMALL_ENTRIES, ids=ENTRY_IDS)
class TestSingleMessageModelVerdicts:
    def test_single_message_model_agrees_with_quorum_model(self, entry):
        quorum_result = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.SPOR_NET)
        single_result = ModelChecker(entry.single_model(), entry.invariant).run(Strategy.SPOR_NET)
        assert quorum_result.verified == single_result.verified == (not entry.expect_violation)


DPOR_ENTRIES = [
    paxos_entry(1, 2, 1),
    multicast_entry(2, 1, 0, 1),
    storage_entry(2, 1),
    storage_entry(2, 1, wrong_specification=True),
]


@pytest.mark.parametrize("entry", DPOR_ENTRIES, ids=[e.key + "-dpor" for e in DPOR_ENTRIES])
class TestDynamicPorVerdicts:
    def test_dpor_on_single_message_model_matches_expectation(self, entry):
        options = CheckerOptions(search=SearchConfig(max_seconds=60))
        result = ModelChecker(entry.single_model(), entry.invariant, options).run(Strategy.DPOR)
        assert result.verified == (not entry.expect_violation)


class TestCatalogExpectations:
    @pytest.mark.parametrize(
        "entry", default_catalog("small"), ids=[e.key for e in default_catalog("small")]
    )
    def test_small_catalog_matches_paper_outcomes(self, entry):
        result = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.SPOR_NET)
        assert result.verified == (not entry.expect_violation)
