"""Unit tests for the quorum-split refinement strategy."""

import pytest

from repro.refine import (
    RefinementError,
    is_transition_refinement,
    quorum_split,
    split_quorum_transition,
    splittable_quorum_transitions,
)
from repro.protocols.multicast import MulticastConfig, build_multicast_quorum
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum

from ..conftest import build_vote_collection


class TestEligibility:
    def test_paxos_quorum_transitions_are_splittable(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        names = {t.name for t in splittable_quorum_transitions(protocol)}
        assert names == {
            "READ_REPL@proposer1",
            "READ_REPL@proposer2",
            "ACCEPT@learner1",
        }

    def test_single_message_transition_not_splittable(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RefinementError):
            split_quorum_transition(protocol, protocol.transition("READ@acceptor1"))

    def test_already_restricted_transition_not_splittable(self):
        protocol = quorum_split(build_paxos_quorum(PaxosConfig(1, 3, 1)))
        assert splittable_quorum_transitions(protocol) == ()

    def test_unknown_transition_name_rejected(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RefinementError):
            quorum_split(protocol, transition_names=["MISSING"])


class TestSplitStructure:
    def test_one_transition_per_sender_combination(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        replacements = split_quorum_transition(
            protocol, protocol.transition("READ_REPL@proposer1")
        )
        assert len(replacements) == 3  # C(3, 2)
        peers = {replacement.quorum_peers for replacement in replacements}
        assert peers == {
            frozenset({"acceptor1", "acceptor2"}),
            frozenset({"acceptor1", "acceptor3"}),
            frozenset({"acceptor2", "acceptor3"}),
        }

    def test_split_transitions_remember_their_origin(self):
        protocol = quorum_split(build_paxos_quorum(PaxosConfig(1, 3, 1)))
        split = protocol.transition("READ_REPL@proposer1__acceptor1_acceptor2")
        assert split.refined_from == "READ_REPL@proposer1"
        assert split.annotation.possible_senders == frozenset({"acceptor1", "acceptor2"})

    def test_non_quorum_transitions_untouched(self):
        original = build_paxos_quorum(PaxosConfig(1, 3, 1))
        refined = quorum_split(original)
        assert refined.transition("READ@acceptor1") == original.transition("READ@acceptor1")

    def test_transition_count_grows_as_expected(self):
        original = build_paxos_quorum(PaxosConfig(2, 3, 1))
        refined = quorum_split(original)
        # Each of the three exact majority-of-3 quorum transitions becomes 3.
        assert len(refined.transitions) == len(original.transitions) + 3 * 2

    def test_metadata_records_strategy(self):
        refined = quorum_split(build_paxos_quorum(PaxosConfig(1, 3, 1)))
        assert refined.metadata["refinement"] == "quorum-split"
        assert "[quorum-split]" in refined.name

    def test_selective_split_by_name(self):
        original = build_paxos_quorum(PaxosConfig(2, 3, 1))
        refined = quorum_split(original, transition_names=["ACCEPT@learner1"])
        assert "READ_REPL@proposer1" in refined.transition_names()
        assert "ACCEPT@learner1" not in refined.transition_names()
        assert "ACCEPT@learner1__acceptor1_acceptor2" in refined.transition_names()

    def test_impossible_quorum_rejected(self, vote_collection):
        # Restrict the candidate senders below the quorum size: splitting
        # must fail loudly instead of silently producing a dead transition.
        protocol = vote_collection.with_transitions(
            [
                t.with_annotation(possible_senders=frozenset({"voter1"}))
                if t.name == "VOTE@collector"
                else t
                for t in vote_collection.transitions
            ]
        )
        with pytest.raises(RefinementError):
            quorum_split(protocol)


class TestTheoremTwo:
    """Executable counterpart of Theorem 2: quorum-split preserves the state graph."""

    def test_paxos_equivalence(self):
        original = build_paxos_quorum(PaxosConfig(1, 3, 1))
        assert is_transition_refinement(original, quorum_split(original), max_states=20000)

    def test_vote_collection_equivalence(self, vote_collection):
        assert is_transition_refinement(vote_collection, quorum_split(vote_collection))

    def test_multicast_equivalence(self):
        original = build_multicast_quorum(MulticastConfig(2, 1, 0, 1))
        assert is_transition_refinement(original, quorum_split(original), max_states=20000)
