"""The refinement validator shares one successor engine per protocol."""

from __future__ import annotations

from repro.mp.semantics import SuccessorEngine, state_graph_edges
from repro.refine.quorum_split import quorum_split
from repro.refine.refinement import (
    compare_state_graphs,
    is_transition_refinement,
    shared_successor_engine,
)


class TestSharedEngine:
    def test_same_protocol_object_reuses_engine(self, vote_collection):
        first = shared_successor_engine(vote_collection)
        second = shared_successor_engine(vote_collection)
        assert first is second
        assert first.protocol is vote_collection

    def test_distinct_protocols_get_distinct_engines(self, ping_pong, vote_collection):
        assert shared_successor_engine(ping_pong) is not shared_successor_engine(
            vote_collection
        )

    def test_second_enumeration_hits_caches(self, vote_collection):
        engine = shared_successor_engine(vote_collection)
        state_graph_edges(vote_collection, engine=engine)
        misses_after_first = engine.enabled_misses
        assert misses_after_first > 0
        state_graph_edges(vote_collection, engine=engine)
        # Every enabled set of the second walk is a cache hit, not a miss.
        assert engine.enabled_misses == misses_after_first
        assert engine.enabled_hits >= misses_after_first


class TestEngineAwareEnumeration:
    def test_engine_enumeration_matches_primitives(self, ping_pong_two_rounds):
        plain_states, plain_edges = state_graph_edges(ping_pong_two_rounds)
        engine = SuccessorEngine(ping_pong_two_rounds)
        cached_states, cached_edges = state_graph_edges(
            ping_pong_two_rounds, engine=engine
        )
        assert cached_states == plain_states
        assert cached_edges == plain_edges

    def test_engine_protocol_mismatch_rejected(self, ping_pong, vote_collection):
        import pytest

        with pytest.raises(ValueError):
            state_graph_edges(ping_pong, engine=SuccessorEngine(vote_collection))


class TestValidatorStillCorrect:
    def test_quorum_split_validates_through_shared_engines(self, vote_collection):
        refined = quorum_split(vote_collection)
        report = compare_state_graphs(vote_collection, refined)
        assert report.equivalent
        assert report.original_states == report.refined_states
        # Validating a second refinement of the same original reuses its
        # cached enumeration rather than re-deriving every successor.
        engine = shared_successor_engine(vote_collection)
        misses = engine.enabled_misses
        assert is_transition_refinement(vote_collection, quorum_split(vote_collection))
        assert engine.enabled_misses == misses
