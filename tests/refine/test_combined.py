"""Unit tests for combined-split and the split-opportunity report."""

from repro.refine import (
    combined_split,
    describe_split_opportunities,
    is_transition_refinement,
    quorum_split,
    reply_split,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum
from repro.protocols.storage import StorageConfig, build_storage_quorum

from ..conftest import build_ping_pong


class TestCombinedSplit:
    def test_applies_both_strategies(self):
        original = build_paxos_quorum(PaxosConfig(2, 3, 1))
        combined = combined_split(original)
        names = combined.transition_names()
        assert "READ@acceptor1_proposer1" in names          # reply-split
        assert "READ_REPL@proposer1__acceptor1_acceptor2" in names  # quorum-split
        assert "READ@acceptor1" not in names
        assert "READ_REPL@proposer1" not in names

    def test_transition_count_matches_both_splits(self):
        original = build_paxos_quorum(PaxosConfig(2, 3, 1))
        combined = combined_split(original)
        only_reply = reply_split(original)
        only_quorum = quorum_split(original)
        expected = (
            len(original.transitions)
            + (len(only_reply.transitions) - len(original.transitions))
            + (len(only_quorum.transitions) - len(original.transitions))
        )
        assert len(combined.transitions) == expected

    def test_combined_is_a_refinement(self):
        original = build_paxos_quorum(PaxosConfig(1, 3, 1))
        assert is_transition_refinement(original, combined_split(original), max_states=20000)

    def test_name_and_metadata(self):
        combined = combined_split(build_paxos_quorum(PaxosConfig(1, 3, 1)))
        assert "[combined-split]" in combined.name
        assert combined.metadata["refinement"] == "combined-split"

    def test_storage_combined_refinement(self):
        original = build_storage_quorum(StorageConfig(2, 1))
        assert is_transition_refinement(original, combined_split(original), max_states=20000)


class TestSplitOpportunityReport:
    def test_lists_candidates_for_paxos(self):
        text = describe_split_opportunities(build_paxos_quorum(PaxosConfig(2, 3, 1)))
        assert "READ@acceptor1" in text
        assert "READ_REPL@proposer1" in text
        assert "quorum size 2" in text

    def test_reports_absence_of_candidates(self):
        text = describe_split_opportunities(build_ping_pong(rounds=1))
        assert "quorum-split candidates" in text
        assert "(none)" in text
