"""Unit tests for the reply-split refinement strategy."""

import pytest

from repro.refine import (
    RefinementError,
    is_transition_refinement,
    reply_split,
    split_reply_transition,
    splittable_reply_transitions,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum
from repro.protocols.storage import StorageConfig, build_storage_quorum


class TestEligibility:
    def test_paxos_read_is_a_reply_transition(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        names = {t.name for t in splittable_reply_transitions(protocol)}
        assert names == {"READ@acceptor1", "READ@acceptor2", "READ@acceptor3"}

    def test_quorum_transition_not_reply_splittable(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RefinementError):
            split_reply_transition(protocol, protocol.transition("READ_REPL@proposer1"))

    def test_non_reply_transition_rejected(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RefinementError):
            split_reply_transition(protocol, protocol.transition("WRITE@acceptor1"))

    def test_unknown_transition_name_rejected(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RefinementError):
            reply_split(protocol, transition_names=["MISSING"])


class TestSplitStructure:
    def test_one_transition_per_peer(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        replacements = split_reply_transition(protocol, protocol.transition("READ@acceptor1"))
        assert {r.name for r in replacements} == {
            "READ@acceptor1_proposer1",
            "READ@acceptor1_proposer2",
        }
        assert all(len(r.quorum_peers) == 1 for r in replacements)

    def test_reply_sends_narrowed_to_peer(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        refined = reply_split(protocol)
        split = refined.transition("READ@acceptor1_proposer1")
        (send,) = split.annotation.sends
        assert send.recipients == frozenset({"proposer1"})

    def test_single_peer_reply_split_is_identity_sized(self):
        # With a single proposer the reply transitions still split into one
        # transition per peer (exactly one), keeping behaviour identical.
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        refined = reply_split(protocol)
        assert len(refined.transitions) == len(protocol.transitions)

    def test_storage_reply_transitions_split_per_client(self):
        protocol = build_storage_quorum(StorageConfig(3, 2))
        refined = reply_split(protocol)
        # STORE replies only to the writer; GET replies to each reader.
        assert "STORE@base1_writer" in refined.transition_names()
        assert "GET@base1_reader1" in refined.transition_names()
        assert "GET@base1_reader2" in refined.transition_names()

    def test_metadata_records_strategy(self):
        refined = reply_split(build_paxos_quorum(PaxosConfig(1, 3, 1)))
        assert refined.metadata["refinement"] == "reply-split"


class TestTheoremTwo:
    """Reply-split is a transition refinement (same state graph)."""

    def test_paxos_equivalence(self):
        original = build_paxos_quorum(PaxosConfig(1, 3, 1))
        assert is_transition_refinement(original, reply_split(original), max_states=20000)

    def test_storage_equivalence(self):
        original = build_storage_quorum(StorageConfig(2, 1))
        assert is_transition_refinement(original, reply_split(original), max_states=20000)
