"""Unit tests for the general refinement plumbing and the equivalence validator."""

import pytest

from repro.refine.refinement import (
    RefinementError,
    candidate_senders,
    compare_state_graphs,
    is_transition_refinement,
    split_name,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum

from ..conftest import build_ping_pong, build_vote_collection


class TestCandidateSenders:
    def test_uses_annotation_when_available(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        transition = protocol.transition("READ_REPL@proposer1")
        assert candidate_senders(protocol, transition) == (
            "acceptor1",
            "acceptor2",
            "acceptor3",
        )

    def test_driver_is_never_a_candidate(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        transition = protocol.transition("PROPOSE@proposer1")
        assert candidate_senders(protocol, transition) == ()

    def test_falls_back_to_all_other_processes(self, vote_collection):
        transition = vote_collection.transition("VOTE@collector").with_annotation(
            possible_senders=None
        )
        senders = candidate_senders(vote_collection, transition)
        assert "collector" not in senders
        assert set(senders) == {"voter1", "voter2", "voter3"}


class TestSplitName:
    def test_sorted_and_double_underscore(self):
        assert split_name("READ_REPL", frozenset({"b", "a"})) == "READ_REPL__a_b"


class TestStateGraphComparison:
    def test_protocol_is_refinement_of_itself(self, ping_pong):
        assert is_transition_refinement(ping_pong, ping_pong)

    def test_report_counts_match(self, ping_pong):
        report = compare_state_graphs(ping_pong, ping_pong)
        assert report.equivalent
        assert report.original_states == report.refined_states == 4
        assert report.missing_edges == report.extra_edges == 0

    def test_dropping_a_transition_is_not_a_refinement(self, vote_collection):
        crippled = vote_collection.with_transitions(
            [t for t in vote_collection.transitions if t.name != "VOTE@collector"]
        )
        report = compare_state_graphs(vote_collection, crippled)
        assert not report.equivalent
        assert report.missing_edges > 0

    def test_single_message_replacement_is_not_a_refinement(self):
        # The paper stresses that replacing quorum transitions by
        # single-message transitions is NOT a transition refinement: the
        # state graphs differ.
        from repro.protocols.paxos import build_paxos_single

        config = PaxosConfig(1, 2, 1)
        quorum_model = build_paxos_quorum(config)
        single_model = build_paxos_single(config)
        assert not is_transition_refinement(quorum_model, single_model, max_states=20000)

    def test_max_states_guard(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        with pytest.raises(RuntimeError):
            compare_state_graphs(protocol, protocol, max_states=3)
