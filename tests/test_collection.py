"""Regression test for repo-root pytest collection.

The seed of this repository shipped test and benchmark modules with relative
imports (``from ..conftest import ...``) but no package markers, so
``python -m pytest`` died with 18 ImportErrors before running a single test.
This test collects the whole suite in a subprocess from the repository root
and asserts every one of those modules resolves.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The 18 modules that failed to import in the seed (relative imports with
#: no package markers): 13 test modules plus the 5 benchmark modules.
RELATIVE_IMPORT_MODULES = [
    "tests/checker/test_checker.py",
    "tests/checker/test_counterexample.py",
    "tests/checker/test_property.py",
    "tests/checker/test_search.py",
    "tests/mp/test_protocol.py",
    "tests/mp/test_semantics.py",
    "tests/por/test_dependence.py",
    "tests/por/test_dpor.py",
    "tests/por/test_seed.py",
    "tests/por/test_stubborn.py",
    "tests/refine/test_combined.py",
    "tests/refine/test_quorum_split.py",
    "tests/refine/test_refinement.py",
    "benchmarks/test_ablation_seed_heuristic.py",
    "benchmarks/test_ablation_statefulness.py",
    "benchmarks/test_blowup_analysis.py",
    "benchmarks/test_table1_quorum_semantics.py",
    "benchmarks/test_table2_transition_refinement.py",
]


def test_repo_root_collection_resolves_all_modules():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = completed.stdout + completed.stderr
    assert completed.returncode == 0, f"collection failed:\n{output[-4000:]}"
    assert "ImportError" not in output, f"collection hit ImportErrors:\n{output[-4000:]}"
    missing = [
        module
        for module in RELATIVE_IMPORT_MODULES
        if module not in output
    ]
    assert not missing, f"modules absent from collection: {missing}"
