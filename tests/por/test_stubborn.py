"""Unit tests for the stubborn-set provider (static POR)."""

from repro.checker import ModelChecker, Strategy
from repro.checker.property import always_true
from repro.checker.search import SearchConfig, dfs_search
from repro.mp.semantics import apply_execution, enabled_executions
from repro.por.dependence import DependenceRelation
from repro.por.stubborn import StubbornSetProvider
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum, consensus_invariant

from ..conftest import build_ping_pong, build_vote_collection


class TestClosure:
    def test_independent_voters_closure_stays_local(self, vote_collection):
        provider = StubbornSetProvider(vote_collection)
        state = vote_collection.initial_state()
        enabled = enabled_executions(state, vote_collection)
        enabled_names = frozenset(e.transition.name for e in enabled)
        closure = provider.stubborn_names(state, "CAST@voter1", enabled_names)
        # CAST@voter1 can enable the collector's quorum transition, which is
        # disabled and needs votes; the closure must not drag in the other
        # voters beyond what the collector's enabling requires.
        assert "CAST@voter1" in closure

    def test_closure_contains_seed(self, vote_collection):
        provider = StubbornSetProvider(vote_collection)
        state = vote_collection.initial_state()
        enabled_names = frozenset(
            e.transition.name for e in enabled_executions(state, vote_collection)
        )
        for seed in enabled_names:
            assert seed in provider.stubborn_names(state, seed, enabled_names)

    def test_disabled_member_pulls_in_necessary_enablers(self, ping_pong):
        provider = StubbornSetProvider(ping_pong)
        state = ping_pong.initial_state()
        closure = provider.stubborn_names(state, "PONG@ping", frozenset())
        # PONG@ping is disabled; its only enabler chain is PING@pong, which
        # in turn needs START@ping.
        assert closure == {"PONG@ping", "PING@pong", "START@ping"}

    def test_net_narrows_quorum_enabler_sets(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        state = protocol.initial_state()
        # Deliver proposer1's READ to acceptor1 and let it reply, so that
        # READ_REPL needs one more reply (from acceptor2 or acceptor3).
        propose = next(e for e in enabled_executions(state, protocol)
                       if e.transition.name == "PROPOSE@proposer1")
        state = apply_execution(state, propose)
        read1 = next(e for e in enabled_executions(state, protocol)
                     if e.transition.name == "READ@acceptor1")
        state = apply_execution(state, read1)

        with_net = StubbornSetProvider(protocol, use_net=True)
        without_net = StubbornSetProvider(protocol, use_net=False)
        enabled_names = frozenset(
            e.transition.name for e in enabled_executions(state, protocol)
        )
        net_closure = with_net.stubborn_names(state, "READ_REPL@proposer1", enabled_names)
        coarse_closure = without_net.stubborn_names(state, "READ_REPL@proposer1", enabled_names)
        assert net_closure <= coarse_closure
        # The per-state necessary enabling set must not contain acceptor1's
        # READ: its reply is already pending.
        assert "READ@acceptor1" not in with_net._necessary_enabling_set(
            state, protocol.transition("READ_REPL@proposer1")
        )


class TestReducer:
    def test_reduction_preserves_verdict_and_shrinks_space(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        provider = StubbornSetProvider(protocol)
        reduced = dfs_search(protocol, always_true(), reducer=provider.reduce)
        full = dfs_search(protocol, always_true())
        assert reduced.verified and full.verified
        assert reduced.statistics.states_visited <= full.statistics.states_visited
        assert provider.reduced_states > 0

    def test_single_enabled_execution_returned_unchanged(self, ping_pong):
        provider = StubbornSetProvider(ping_pong)
        outcome = dfs_search(ping_pong, always_true(), reducer=provider.reduce)
        assert outcome.verified
        assert provider.reduced_states == 0

    def test_visible_transitions_force_fallback(self):
        protocol = build_vote_collection(voters=2, quorum=1)
        # Mark every transition visible: no strict reduction may survive.
        visible = protocol.with_transitions(
            [t.with_annotation(visible=True) for t in protocol.transitions]
        )
        provider = StubbornSetProvider(visible)
        outcome = dfs_search(visible, always_true(), reducer=provider.reduce)
        full = dfs_search(visible, always_true())
        assert outcome.statistics.states_visited == full.statistics.states_visited

    def test_spor_net_no_worse_than_spor(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 2, 1))
        invariant = consensus_invariant()
        spor = ModelChecker(protocol, invariant).run(Strategy.SPOR)
        net = ModelChecker(protocol, invariant).run(Strategy.SPOR_NET)
        assert spor.verified and net.verified
        assert net.statistics.states_visited <= spor.statistics.states_visited

    def test_statistics_counters_consistent(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        provider = StubbornSetProvider(protocol)
        dfs_search(protocol, always_true(), reducer=provider.reduce)
        assert provider.reduced_states + provider.fallback_states > 0


class TestSoundnessCrossChecks:
    def test_paxos_small_setting_same_state_count_verdict(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        invariant = consensus_invariant()
        unreduced = ModelChecker(protocol, invariant).run(Strategy.UNREDUCED)
        reduced = ModelChecker(protocol, invariant).run(Strategy.SPOR_NET)
        assert unreduced.verified == reduced.verified is True
        assert reduced.statistics.states_visited < unreduced.statistics.states_visited

    def test_reduction_does_not_hide_reachable_violation(self):
        protocol = build_ping_pong(rounds=2)
        from repro.checker.property import Invariant

        invariant = Invariant(
            "pongs<2", lambda state, _p: state.local("ping").pongs < 2
        )
        for strategy in (Strategy.SPOR, Strategy.SPOR_NET):
            result = ModelChecker(protocol, invariant).run(strategy)
            assert not result.verified
