"""Unit tests for the seed-transition heuristics."""

import pytest

from repro.mp.semantics import enabled_executions
from repro.por.dependence import DependenceRelation
from repro.por.seed import (
    first_enabled_seed,
    make_fewest_dependents_seed,
    make_seed_heuristic,
    opposite_transaction_seed,
    transaction_seed,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum

from ..conftest import build_vote_collection


def paxos_mixed_state():
    """A Paxos state where an instance-starting and another transition are enabled."""
    protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
    state = protocol.initial_state()
    # Execute proposer1's PROPOSE so acceptors' READ transitions become
    # enabled alongside proposer2's (still pending) PROPOSE.
    enabled = enabled_executions(state, protocol)
    propose1 = next(e for e in enabled if e.transition.name == "PROPOSE@proposer1")
    from repro.mp.semantics import apply_execution

    state = apply_execution(state, propose1)
    return protocol, state


class TestOppositeTransactionHeuristic:
    def test_prefers_instance_starting_transition(self):
        protocol, state = paxos_mixed_state()
        enabled = enabled_executions(state, protocol)
        assert len({e.transition.name for e in enabled}) > 1
        seed = opposite_transaction_seed(enabled)
        assert seed.transition.annotation.starts_instance

    def test_transaction_heuristic_prefers_the_opposite(self):
        protocol, state = paxos_mixed_state()
        enabled = enabled_executions(state, protocol)
        opposite = opposite_transaction_seed(enabled)
        transactional = transaction_seed(enabled)
        # With both a starting and a non-starting transition enabled the two
        # heuristics must not pick a starting transition simultaneously.
        assert not (
            opposite.transition.annotation.starts_instance
            and transactional.transition.annotation.starts_instance
        )

    def test_deterministic_tie_breaking(self, vote_collection):
        enabled = enabled_executions(vote_collection.initial_state(), vote_collection)
        assert opposite_transaction_seed(enabled) == opposite_transaction_seed(tuple(reversed(enabled)))


class TestOtherHeuristics:
    def test_first_enabled_is_alphabetical(self, vote_collection):
        enabled = enabled_executions(vote_collection.initial_state(), vote_collection)
        seed = first_enabled_seed(enabled)
        assert seed.transition.name == min(e.transition.name for e in enabled)

    def test_fewest_dependents_uses_relation(self, vote_collection):
        relation = DependenceRelation.precompute(vote_collection)
        heuristic = make_fewest_dependents_seed(relation)
        enabled = enabled_executions(vote_collection.initial_state(), vote_collection)
        seed = heuristic(enabled)
        degrees = {e.transition.name: relation.dependence_degree(e.transition.name)
                   for e in enabled}
        assert degrees[seed.transition.name] == min(degrees.values())


class TestFactory:
    @pytest.mark.parametrize("name", ["opposite-transaction", "transaction", "first"])
    def test_named_heuristics(self, name, vote_collection):
        heuristic = make_seed_heuristic(name)
        enabled = enabled_executions(vote_collection.initial_state(), vote_collection)
        assert heuristic(enabled) in enabled

    def test_fewest_dependents_requires_relation(self):
        with pytest.raises(ValueError):
            make_seed_heuristic("fewest-dependents")

    def test_fewest_dependents_with_relation(self, vote_collection):
        relation = DependenceRelation.precompute(vote_collection)
        heuristic = make_seed_heuristic("fewest-dependents", dependence=relation)
        enabled = enabled_executions(vote_collection.initial_state(), vote_collection)
        assert heuristic(enabled) in enabled

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            make_seed_heuristic("bogus")
