"""Unit tests for the stateless dynamic POR search."""

from repro.checker.property import Invariant, always_true
from repro.checker.search import SearchConfig, dfs_search
from repro.por.dpor import DporSearch
from repro.protocols.paxos import PaxosConfig, build_paxos_single, consensus_invariant

from ..conftest import build_ping_pong, build_vote_collection


class TestVerification:
    def test_verifies_trivial_property(self, vote_collection):
        outcome = DporSearch(vote_collection).run(always_true())
        assert outcome.verified
        assert outcome.complete

    def test_explores_no_more_than_plain_stateless_search(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        dpor = DporSearch(protocol).run(always_true())
        stateless = dfs_search(protocol, always_true(), SearchConfig(stateful=False))
        assert dpor.verified and stateless.verified
        assert (
            dpor.statistics.transitions_executed
            <= stateless.statistics.transitions_executed
        )

    def test_covers_all_reachable_violations(self):
        protocol = build_ping_pong(rounds=2)
        invariant = Invariant("pongs<2", lambda s, _p: s.local("ping").pongs < 2)
        outcome = DporSearch(protocol).run(invariant)
        assert not outcome.verified
        assert outcome.counterexample is not None

    def test_violation_in_initial_state(self, ping_pong):
        outcome = DporSearch(ping_pong).run(Invariant("never", lambda _s, _p: False))
        assert not outcome.verified
        assert outcome.counterexample.length == 0

    def test_small_paxos_consensus_verified(self):
        protocol = build_paxos_single(PaxosConfig(1, 2, 1))
        outcome = DporSearch(protocol).run(consensus_invariant())
        assert outcome.verified

    def test_counterexample_is_replayable(self):
        protocol = build_ping_pong(rounds=2)
        invariant = Invariant("pongs<2", lambda s, _p: s.local("ping").pongs < 2)
        outcome = DporSearch(protocol).run(invariant)
        from repro.mp.semantics import apply_execution

        state = outcome.counterexample.initial_state
        for step in outcome.counterexample.steps:
            state = apply_execution(state, step.execution)
            assert state == step.state
        assert state.local("ping").pongs >= 2


class TestBounds:
    def test_max_states_truncates(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        config = SearchConfig(stateful=False, max_states=10)
        outcome = DporSearch(protocol, config=config).run(always_true())
        assert not outcome.complete

    def test_max_depth_truncates(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        config = SearchConfig(stateful=False, max_depth=1)
        outcome = DporSearch(protocol, config=config).run(always_true())
        assert not outcome.complete

    def test_statistics_exposed(self, vote_collection):
        search = DporSearch(vote_collection)
        search.run(always_true())
        assert search.statistics.transitions_executed > 0
