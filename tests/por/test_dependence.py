"""Unit tests for the pre-computed dependence relations."""

from repro.por.dependence import (
    DependenceRelation,
    are_dependent,
    can_enable,
    interferes,
    spec_read_conflict,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum
from repro.protocols.storage import StorageConfig, build_storage_quorum
from repro.refine import quorum_split, reply_split

from ..conftest import build_ping_pong, build_vote_collection


class TestPairwisePredicates:
    def test_same_process_transitions_interfere(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        propose = protocol.transition("PROPOSE@proposer1")
        read_repl = protocol.transition("READ_REPL@proposer1")
        assert interferes(propose, read_repl)
        assert are_dependent(propose, read_repl)

    def test_unrelated_processes_do_not_interfere(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        read_a1 = protocol.transition("READ@acceptor1")
        read_a2 = protocol.transition("READ@acceptor2")
        assert not interferes(read_a1, read_a2)

    def test_reply_can_enable_consumer(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        read = protocol.transition("READ@acceptor1")
        read_repl = protocol.transition("READ_REPL@proposer1")
        assert can_enable(read, read_repl)
        assert not can_enable(read_repl, read)

    def test_write_enables_accept_at_learner(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        write = protocol.transition("WRITE@acceptor1")
        accept = protocol.transition("ACCEPT@learner1")
        assert can_enable(write, accept)

    def test_can_enable_respects_quorum_peers(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        split = quorum_split(protocol)
        read_a3 = split.transition("READ@acceptor3")
        narrowed = split.transition("READ_REPL@proposer1__acceptor1_acceptor2")
        assert not can_enable(read_a3, narrowed)
        assert can_enable(read_a3, narrowed, respect_peers=False)

    def test_spec_read_conflict_in_storage(self):
        protocol = build_storage_quorum(StorageConfig(3, 1))
        val = protocol.transition("VAL@reader1")
        store_ack = protocol.transition("STORE_ACK@writer")
        assert spec_read_conflict(val, store_ack)
        assert are_dependent(val, store_ack)

    def test_same_process_can_enable_is_false(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        propose = protocol.transition("PROPOSE@proposer1")
        read_repl = protocol.transition("READ_REPL@proposer1")
        assert not can_enable(propose, read_repl)


class TestPrecomputedRelation:
    def test_interference_symmetric(self, vote_collection):
        relation = DependenceRelation.precompute(vote_collection)
        for name in vote_collection.transition_names():
            for other in relation.interferes_with(name):
                assert name in relation.interferes_with(other)

    def test_dependent_is_reflexive_and_symmetric(self, ping_pong):
        relation = DependenceRelation.precompute(ping_pong)
        assert relation.dependent("PING@pong", "PING@pong")
        assert relation.dependent("START@ping", "PING@pong") == relation.dependent(
            "PING@pong", "START@ping"
        )

    def test_ping_pong_chain_of_enablers(self, ping_pong):
        relation = DependenceRelation.precompute(ping_pong)
        assert relation.necessary_enablers_of("PING@pong") == ("START@ping",)
        assert relation.necessary_enablers_of("PONG@ping") == ("PING@pong",)
        assert relation.enabled_by("START@ping") == ("PING@pong",)

    def test_voters_are_mutually_independent(self, vote_collection):
        relation = DependenceRelation.precompute(vote_collection)
        assert relation.independent("CAST@voter1", "CAST@voter2")
        assert relation.dependent("CAST@voter1", "VOTE@collector")

    def test_enablers_by_sender_grouping(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        relation = DependenceRelation.precompute(protocol)
        from_a2 = relation.enablers_from("READ_REPL@proposer1", ["acceptor2"])
        assert from_a2 == ("READ@acceptor2",)
        everyone = relation.enablers_from(
            "READ_REPL@proposer1", ["acceptor1", "acceptor2", "acceptor3"]
        )
        assert set(everyone) == {"READ@acceptor1", "READ@acceptor2", "READ@acceptor3"}

    def test_dependents_of_and_degree(self, ping_pong):
        relation = DependenceRelation.precompute(ping_pong)
        dependents = relation.dependents_of("PING@pong")
        assert "START@ping" in dependents and "PONG@ping" in dependents
        assert relation.dependence_degree("PING@pong") == len(dependents)

    def test_coarse_enablers_ignore_refinement(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        split = quorum_split(protocol)
        relation = DependenceRelation.precompute(split)
        narrowed = "READ_REPL@proposer1__acceptor1_acceptor2"
        assert set(relation.necessary_enablers_of(narrowed)) == {
            "READ@acceptor1",
            "READ@acceptor2",
        }
        assert "READ@acceptor3" in relation.coarse_enablers_of(narrowed)

    def test_reply_split_narrows_enabling_direction(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        split = reply_split(protocol)
        relation = DependenceRelation.precompute(split)
        # READ@acceptor1_proposer1 replies only to proposer1, so it cannot
        # enable proposer2's READ_REPL.
        assert "READ_REPL@proposer2" not in relation.enabled_by("READ@acceptor1_proposer1")
        assert "READ_REPL@proposer1" in relation.enabled_by("READ@acceptor1_proposer1")
