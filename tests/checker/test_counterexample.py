"""Unit tests for counterexample objects and rendering."""

from repro.checker import ModelChecker, Strategy
from repro.checker.counterexample import Counterexample, Step
from repro.checker.property import Invariant
from repro.checker.result import CheckResult, SearchStatistics

from ..conftest import build_ping_pong


def violation_result():
    protocol = build_ping_pong(rounds=1)
    invariant = Invariant("no-pong", lambda state, _p: state.local("ping").pongs == 0)
    return protocol, ModelChecker(protocol, invariant).run(Strategy.UNREDUCED)


class TestCounterexample:
    def test_length_and_violating_state(self):
        _, result = violation_result()
        counterexample = result.counterexample
        assert counterexample.length == 3
        assert counterexample.violating_state.local("ping").pongs == 1

    def test_transition_names_in_order(self):
        _, result = violation_result()
        assert result.counterexample.transition_names() == (
            "START@ping",
            "PING@pong",
            "PONG@ping",
        )

    def test_executions_accessor(self):
        _, result = violation_result()
        executions = result.counterexample.executions()
        assert len(executions) == 3
        assert executions[0].transition.name == "START@ping"

    def test_empty_counterexample_violating_state_is_initial(self):
        protocol = build_ping_pong(rounds=1)
        counterexample = Counterexample(
            initial_state=protocol.initial_state(), steps=(), property_name="p"
        )
        assert counterexample.violating_state == protocol.initial_state()
        assert counterexample.length == 0

    def test_format_without_states(self):
        _, result = violation_result()
        text = result.counterexample.format()
        assert "counterexample" in text
        assert "PONG@ping" in text
        assert "violating" in text

    def test_format_with_states_shows_intermediate_states(self):
        _, result = violation_result()
        text = result.counterexample.format(include_states=True)
        assert text.count("state:") >= 3


class TestSearchStatistics:
    def test_merge_adds_counters(self):
        first = SearchStatistics(states_visited=10, transitions_executed=20, max_depth=3,
                                 elapsed_seconds=1.0)
        second = SearchStatistics(states_visited=5, transitions_executed=7, max_depth=9,
                                  elapsed_seconds=0.5)
        merged = first.merge(second)
        assert merged.states_visited == 15
        assert merged.transitions_executed == 27
        assert merged.max_depth == 9
        assert merged.elapsed_seconds == 1.5


class TestCheckResult:
    def test_verified_result_has_no_counterexample(self):
        result = CheckResult(
            protocol_name="p", property_name="q", strategy="unreduced",
            verified=True, complete=True,
        )
        assert not result.found_counterexample
        assert result.outcome_label() == "Verified"

    def test_step_is_hashable_record(self):
        protocol = build_ping_pong(rounds=1)
        _, result = violation_result()
        step = result.counterexample.steps[0]
        assert isinstance(step, Step)
        assert step.execution.transition.name == "START@ping"
        assert step.state != protocol.initial_state()
