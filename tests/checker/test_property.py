"""Unit tests for invariant properties."""

from repro.checker.property import (
    Invariant,
    always_true,
    conjunction,
    local_state_invariant,
)
from repro.mp.semantics import apply_execution, enabled_executions

from ..conftest import build_vote_collection


def final_state(protocol):
    """Run the protocol to some terminal state (deterministic first-choice walk)."""
    state = protocol.initial_state()
    while True:
        enabled = enabled_executions(state, protocol)
        if not enabled:
            return state
        state = apply_execution(state, enabled[0])


class TestInvariant:
    def test_holds_in_true(self, vote_collection):
        invariant = always_true()
        assert invariant.holds_in(vote_collection.initial_state(), vote_collection)

    def test_predicate_receives_state_and_protocol(self, vote_collection):
        seen = {}

        def predicate(state, protocol):
            seen["state"] = state
            seen["protocol"] = protocol
            return True

        Invariant("probe", predicate).holds_in(vote_collection.initial_state(), vote_collection)
        assert seen["protocol"] is vote_collection

    def test_negated_invariant(self, vote_collection):
        invariant = always_true()
        negated = invariant.negated()
        state = vote_collection.initial_state()
        assert not negated.holds_in(state, vote_collection)
        assert negated.name == "not(true)"

    def test_negated_custom_name(self):
        assert always_true().negated("falsehood").name == "falsehood"


class TestConjunction:
    def test_conjunction_all_hold(self, vote_collection):
        combined = conjunction("both", [always_true("a"), always_true("b")])
        assert combined.holds_in(vote_collection.initial_state(), vote_collection)
        assert "a" in combined.description and "b" in combined.description

    def test_conjunction_one_fails(self, vote_collection):
        failing = Invariant("never", lambda _s, _p: False)
        combined = conjunction("both", [always_true(), failing])
        assert not combined.holds_in(vote_collection.initial_state(), vote_collection)

    def test_empty_conjunction_holds(self, vote_collection):
        combined = conjunction("empty", [])
        assert combined.holds_in(vote_collection.initial_state(), vote_collection)


class TestLocalStateInvariant:
    def test_holds_for_all_processes_of_type(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        invariant = local_state_invariant(
            "not-voted-initially", "voter", lambda local: not local.voted
        )
        assert invariant.holds_in(protocol.initial_state(), protocol)

    def test_fails_once_some_process_violates(self):
        protocol = build_vote_collection(voters=2, quorum=2)
        invariant = local_state_invariant(
            "never-voted", "voter", lambda local: not local.voted
        )
        assert not invariant.holds_in(final_state(protocol), protocol)

    def test_ignores_other_process_types(self):
        protocol = build_vote_collection(voters=2, quorum=2)
        invariant = local_state_invariant(
            "collector-only", "collector", lambda local: local.votes_seen <= 2
        )
        assert invariant.holds_in(final_state(protocol), protocol)
