"""Unit tests for the search engines (DFS, BFS, bounds, counterexamples)."""

import pytest

from repro.checker.property import Invariant, always_true
from repro.checker.search import SearchConfig, bfs_search, dfs_search
from repro.mp.semantics import state_graph_edges

from ..conftest import build_ping_pong, build_vote_collection


def pongs_below(limit):
    """Invariant: the pinger has received fewer than ``limit`` pongs."""
    return Invariant(
        name=f"pongs<{limit}",
        predicate=lambda state, _protocol: state.local("ping").pongs < limit,
    )


class TestExhaustiveDfs:
    def test_counts_match_state_graph_enumeration(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        states, _edges = state_graph_edges(protocol)
        outcome = dfs_search(protocol, always_true())
        assert outcome.verified
        assert outcome.complete
        assert outcome.statistics.states_visited == len(states)

    def test_trivial_protocol_explored_fully(self, ping_pong):
        outcome = dfs_search(ping_pong, always_true())
        assert outcome.statistics.states_visited == 4
        assert outcome.statistics.transitions_executed == 3

    def test_violation_found_with_counterexample(self, ping_pong):
        outcome = dfs_search(ping_pong, pongs_below(1))
        assert not outcome.verified
        assert outcome.counterexample is not None
        assert outcome.counterexample.transition_names()[-1] == "PONG@ping"

    def test_violation_in_initial_state(self, ping_pong):
        never = Invariant("never", lambda _s, _p: False)
        outcome = dfs_search(ping_pong, never)
        assert not outcome.verified
        assert outcome.counterexample.length == 0

    def test_counterexample_path_is_executable(self, ping_pong_two_rounds):
        outcome = dfs_search(ping_pong_two_rounds, pongs_below(2))
        assert not outcome.verified
        counterexample = outcome.counterexample
        # Replay the path through the semantics and check it ends in the
        # reported violating state.
        from repro.mp.semantics import apply_execution

        state = counterexample.initial_state
        for step in counterexample.steps:
            state = apply_execution(state, step.execution)
            assert state == step.state
        assert state.local("ping").pongs >= 2

    def test_continue_after_violation_when_not_stopping(self, ping_pong_two_rounds):
        config = SearchConfig(stop_at_first_violation=False)
        outcome = dfs_search(ping_pong_two_rounds, pongs_below(1), config)
        assert not outcome.verified
        assert outcome.complete
        full = dfs_search(ping_pong_two_rounds, always_true())
        assert outcome.statistics.states_visited == full.statistics.states_visited


class TestBounds:
    def test_max_states_truncates(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        config = SearchConfig(max_states=5)
        outcome = dfs_search(protocol, always_true(), config)
        assert not outcome.complete
        assert outcome.statistics.states_visited <= 6

    def test_max_depth_truncates(self, ping_pong_two_rounds):
        config = SearchConfig(max_depth=1)
        outcome = dfs_search(ping_pong_two_rounds, always_true(), config)
        assert not outcome.complete
        assert outcome.statistics.max_depth <= 1

    def test_max_seconds_zero_truncates(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        config = SearchConfig(max_seconds=0.0)
        outcome = dfs_search(protocol, always_true(), config)
        assert not outcome.complete

    def test_deep_violation_not_found_with_shallow_bound(self, ping_pong_two_rounds):
        config = SearchConfig(max_depth=2)
        outcome = dfs_search(ping_pong_two_rounds, pongs_below(2), config)
        # The violation needs at least four steps, so a depth-2 search
        # cannot find it but must also not claim completeness.
        assert outcome.verified
        assert not outcome.complete


class TestStatelessSearch:
    def test_stateless_visits_at_least_as_many_states(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        stateful = dfs_search(protocol, always_true())
        stateless = dfs_search(protocol, always_true(), SearchConfig(stateful=False))
        assert stateless.verified
        assert (
            stateless.statistics.states_visited
            >= stateful.statistics.states_visited
        )

    def test_stateless_finds_violation(self, ping_pong_two_rounds):
        outcome = dfs_search(ping_pong_two_rounds, pongs_below(2), SearchConfig(stateful=False))
        assert not outcome.verified


class TestReducerIntegration:
    def test_reducer_receives_context_and_limits_exploration(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        seen_states = []

        def first_only(context):
            seen_states.append(context.state)
            return (context.enabled[0],)

        outcome = dfs_search(protocol, always_true(), reducer=first_only)
        full = dfs_search(protocol, always_true())
        assert outcome.verified
        assert outcome.statistics.states_visited < full.statistics.states_visited
        assert seen_states  # the reducer was actually consulted

    def test_reducer_not_called_for_single_enabled_execution(self, ping_pong):
        calls = []

        def reducer(context):
            calls.append(context)
            return context.enabled

        dfs_search(ping_pong, always_true(), reducer=reducer)
        # Ping-pong never has more than one enabled execution.
        assert calls == []

    def test_statistics_track_reduced_expansions(self):
        protocol = build_vote_collection(voters=3, quorum=2)

        def first_only(context):
            return (context.enabled[0],)

        outcome = dfs_search(protocol, always_true(), reducer=first_only)
        assert outcome.statistics.reduced_expansions > 0


class TestBfs:
    def test_bfs_explores_same_states_as_dfs(self):
        protocol = build_vote_collection(voters=2, quorum=2)
        bfs = bfs_search(protocol, always_true())
        dfs = dfs_search(protocol, always_true())
        assert bfs.verified and dfs.verified
        assert bfs.statistics.states_visited == dfs.statistics.states_visited

    def test_bfs_finds_shortest_counterexample(self, ping_pong_two_rounds):
        bfs = bfs_search(ping_pong_two_rounds, pongs_below(1))
        dfs = dfs_search(ping_pong_two_rounds, pongs_below(1))
        assert not bfs.verified and not dfs.verified
        assert bfs.counterexample.length <= dfs.counterexample.length
        # Shortest violating path: START, PING, PONG.
        assert bfs.counterexample.length == 3

    def test_bfs_violation_in_initial_state(self, ping_pong):
        outcome = bfs_search(ping_pong, Invariant("never", lambda _s, _p: False))
        assert not outcome.verified
        assert outcome.counterexample.length == 0

    def test_bfs_max_depth(self, ping_pong_two_rounds):
        outcome = bfs_search(ping_pong_two_rounds, always_true(), SearchConfig(max_depth=1))
        assert not outcome.complete


class TestDepthAccounting:
    """``max_depth`` counts edges, identically in DFS and BFS.

    Regression for the historical off-by-one: BFS used to report one extra
    level (the final level that discovers nothing), so DFS and BFS
    disagreed by one even on linear state graphs.
    """

    def test_chain_graph_reports_its_edge_count(self, ping_pong):
        # Single-round ping-pong is a 4-state chain: START, PING, PONG.
        dfs = dfs_search(ping_pong, always_true())
        bfs = bfs_search(ping_pong, always_true())
        assert dfs.statistics.max_depth == 3
        assert bfs.statistics.max_depth == 3

    def test_dfs_and_bfs_agree_on_graded_graphs(self, ping_pong_two_rounds):
        # Every path to a state of these protocols has the same length
        # (each transition advances exactly one process by one step), so
        # the deepest DFS path and the deepest BFS level must coincide.
        for protocol in (ping_pong_two_rounds, build_vote_collection(3, 2)):
            dfs = dfs_search(protocol, always_true())
            bfs = bfs_search(protocol, always_true())
            assert dfs.statistics.max_depth == bfs.statistics.max_depth
