"""Unit tests for the nested-DFS liveness engines (object-graph and packed).

The protocols here are deliberately tiny *cyclic* state graphs, built by
re-arming consumed trigger messages (the same device as the crash-recovery
family): a one-process toggle whose TICK re-arms itself (a 2-cycle), and a
branching "mode" machine shaped so that the acceptance cycle is invisible to
the blue phase's early check and only the red (nested) phase can find it.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.checker import (
    Counterexample,
    Eventually,
    SearchConfig,
    goal_of,
    ndfs_search,
)
from repro.checker.property import Invariant
from repro.engine.events import CollectingObserver
from repro.fastpath.search import fast_ndfs_search
from repro.mp import ActionContext, LporAnnotation, ProtocolBuilder, SendSpec
from repro.mp.process import LocalState

pytestmark = pytest.mark.liveness


# --------------------------------------------------------------------------- #
# Toggle: one process, one self-re-arming transition, a 2-cycle
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ToggleState(LocalState):
    bit: bool = False


def _tick_action(local: ToggleState, _messages, ctx: ActionContext) -> ToggleState:
    ctx.send("clock", "TICK")
    return local.update(bit=not local.bit)


def build_toggle():
    """bit flips forever: two states, one cycle, no terminal state."""
    builder = ProtocolBuilder("toggle")
    builder.add_process("clock", "clock", ToggleState())
    builder.add_transition(
        name="TICK@clock",
        process_id="clock",
        message_type="TICK",
        action=_tick_action,
        annotation=LporAnnotation(
            sends=(SendSpec("TICK", recipients=frozenset({"clock"})),),
            possible_senders=frozenset({"driver", "clock"}),
        ),
    )
    builder.trigger("TICK", "clock")
    return builder.build()


# --------------------------------------------------------------------------- #
# Mode machine: accepting cycle only the red phase can close
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModeState(LocalState):
    mode: int = 0


def _tx_action(local: ModeState, _messages, ctx: ActionContext) -> ModeState:
    # mode 0 --X--> mode 2;   mode 1 --X--> mode 2 (re-arming Y)
    if local.mode == 1:
        ctx.send("m", "Y")
    return local.update(mode=2)


def _ty_action(local: ModeState, _messages, ctx: ActionContext) -> ModeState:
    # mode 0 --Y--> mode 1;   mode 2 --Y--> mode 0 (re-arming both)
    if local.mode == 2:
        ctx.send("m", "X")
        ctx.send("m", "Y")
        return local.update(mode=0)
    return local.update(mode=1)


def build_mode_machine():
    """Graph: s1 -> s3 -> s1 (no accepting state) and s1 -> s2 -> s3 with
    s2 accepting (mode 1).  The blue DFS explores s1 -> s3 first and pops s3
    as blue; the closing edge of the accepting cycle (s2 -> s3) then points
    at a *blue* state, so the early cyan check never fires and only the red
    search from s2 finds the cycle s2 -> s3 -> s1 -> s2."""
    builder = ProtocolBuilder("mode-machine")
    builder.add_process("m", "machine", ModeState())
    self_set = frozenset({"m"})
    builder.add_transition(
        name="TX@m",
        process_id="m",
        message_type="X",
        action=_tx_action,
        annotation=LporAnnotation(
            sends=(SendSpec("Y", recipients=self_set),),
            possible_senders=frozenset({"driver", "m"}),
        ),
    )
    builder.add_transition(
        name="TY@m",
        process_id="m",
        message_type="Y",
        action=_ty_action,
        annotation=LporAnnotation(
            sends=(SendSpec("X", recipients=self_set), SendSpec("Y", recipients=self_set)),
            possible_senders=frozenset({"driver", "m"}),
        ),
    )
    builder.trigger("X", "m")
    builder.trigger("Y", "m")
    return builder.build()


class OnlyModeOneAccepts:
    """Duck-typed liveness property: no pruning, accepting iff mode == 1.

    Distinct ``prunes``/``accepting`` hooks (unlike ``Eventually``, where
    accepting == not-pruned) are what route the search through the red
    phase.
    """

    name = "mode-one-recurs"
    network_sensitive = False

    def prunes(self, _state, _protocol) -> bool:
        return False

    def accepting(self, state, _protocol) -> bool:
        return state.local("m").mode == 1


def never() -> Eventually:
    return Eventually(name="never", predicate=lambda state, protocol: False)


def eventually_bit() -> Eventually:
    return Eventually(
        name="eventually-bit",
        predicate=lambda state, protocol: state.local("clock").bit,
        network_sensitive=False,
    )


class TestEventuallyProperty:
    def test_goal_of_classifies_properties(self):
        assert goal_of(never()) == "liveness"
        assert goal_of(OnlyModeOneAccepts()) == "liveness"
        assert goal_of(Invariant(name="inv", predicate=lambda s, p: True)) == "invariant"

    def test_eventually_prunes_exactly_where_the_goal_holds(self):
        prop = eventually_bit()
        protocol = build_toggle()
        from repro.mp.semantics import SuccessorEngine

        engine = SuccessorEngine(protocol)
        initial = engine.initial_state()
        assert not prop.prunes(initial, protocol)
        assert prop.accepting(initial, protocol)
        flipped = engine.successor(initial, engine.enabled(initial)[0])
        assert prop.prunes(flipped, protocol)
        assert not prop.accepting(flipped, protocol)


class TestNdfsVerdicts:
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_unsatisfiable_goal_yields_a_lasso(self, search):
        outcome = search(build_toggle(), never())
        assert not outcome.verified
        cx = outcome.counterexample
        assert cx is not None and cx.is_lasso
        assert len(cx.cycle_steps) >= 1
        assert cx.cycle_start < len(cx.steps)

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_reachable_goal_on_every_run_verifies(self, search):
        outcome = search(build_toggle(), eventually_bit())
        assert outcome.verified
        assert outcome.complete

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_goal_holding_initially_short_circuits(self, search):
        prop = Eventually(name="already", predicate=lambda state, protocol: True)
        outcome = search(build_toggle(), prop)
        assert outcome.verified
        assert outcome.statistics.states_visited == 1

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_terminal_accepting_state_is_a_stutter_violation(self, search, ping_pong):
        # Acyclic protocol + unsatisfiable goal: the violation is a run that
        # ends without reaching the goal, encoded as a lasso with an empty
        # cycle (stutter-extension semantics).
        outcome = search(ping_pong, never())
        assert not outcome.verified
        cx = outcome.counterexample
        assert cx.cycle_start == len(cx.steps)
        assert cx.cycle_steps == ()
        assert "terminal state" in cx.format()

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_red_phase_finds_the_cycle_the_blue_phase_cannot(self, search):
        # Replay needs the protocol instance the search ran on: Execution
        # objects hold that build's TransitionSpecs, which compare by
        # identity (their guards/actions are closures).
        protocol = build_mode_machine()
        outcome = search(protocol, OnlyModeOneAccepts())
        assert not outcome.verified
        cx = outcome.counterexample
        assert cx.is_lasso and len(cx.cycle_steps) >= 1
        # The cycle really passes through the accepting state.
        states = cx.replay(protocol)
        assert any(state.local("m").mode == 1 for state in states[cx.cycle_start:])

    def test_object_and_packed_engines_agree(self):
        for protocol, prop in [
            (build_toggle(), never()),
            (build_toggle(), eventually_bit()),
            (build_mode_machine(), OnlyModeOneAccepts()),
        ]:
            slow = ndfs_search(protocol, prop)
            fast = fast_ndfs_search(protocol, prop)
            assert slow.verified == fast.verified
            assert slow.statistics.states_visited == fast.statistics.states_visited
            if slow.counterexample is not None:
                assert len(slow.counterexample.steps) == len(fast.counterexample.steps)
                assert slow.counterexample.cycle_start == fast.counterexample.cycle_start


class TestNdfsConfigValidation:
    def test_reducers_are_rejected(self):
        with pytest.raises(ValueError, match="partial-order reduction"):
            ndfs_search(build_toggle(), never(), reducer=object())

    def test_stateless_config_is_rejected(self):
        with pytest.raises(ValueError, match="stateful"):
            ndfs_search(build_toggle(), never(), SearchConfig(stateful=False))

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_fingerprint_store_is_accepted(self, search):
        outcome = search(build_toggle(), never(),
                         SearchConfig(state_store="fingerprint"))
        assert not outcome.verified

    def test_fast_config_delegates_to_the_packed_engine(self):
        object_outcome = ndfs_search(build_toggle(), never())
        delegated = ndfs_search(build_toggle(), never(),
                                SearchConfig(successor_engine="fast"))
        assert delegated.verified == object_outcome.verified
        assert (delegated.statistics.states_visited
                == object_outcome.statistics.states_visited)

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_max_states_truncates_without_a_verdict(self, search):
        outcome = search(build_toggle(), never(), SearchConfig(max_states=1))
        assert outcome.verified
        assert not outcome.complete

    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_violations_emit_observer_events(self, search):
        observer = CollectingObserver()
        search(build_toggle(), never(), observer=observer)
        kinds = [event.kind for event in observer.events]
        assert "violation-found" in kinds


class TestLassoReplay:
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_replay_is_deterministic_and_closes_the_cycle(self, search):
        protocol = build_toggle()
        cx = search(protocol, never()).counterexample
        first = cx.replay(protocol)
        second = cx.replay(protocol)
        assert first == second
        # The final state re-enters the cycle exactly where it started.
        assert first[-1] == first[cx.cycle_start]

    def test_replay_rejects_a_diverging_trace(self):
        protocol = build_toggle()
        cx = ndfs_search(protocol, never()).counterexample
        tampered = Counterexample(
            initial_state=cx.initial_state,
            steps=cx.steps,
            property_name=cx.property_name,
            cycle_start=0 if cx.cycle_start != 0 else len(cx.steps) - 1,
        )
        if tampered.cycle_start != cx.cycle_start:
            with pytest.raises(ValueError):
                tampered.replay(protocol)

    def test_lasso_format_marks_the_cycle(self):
        cx = ndfs_search(build_toggle(), never()).counterexample
        rendered = cx.format()
        assert "lasso" in rendered
        assert "cycle starts" in rendered
