"""Three-valued verdict contract: a truncated run is never "Verified".

Regression suite for the partial-verdict bug: ``CheckResult`` used to
render any ``verified=True`` result as plain "Verified", including runs
truncated by ``max_states``/``max_seconds``/``max_depth`` budgets — a
claim of proof the search never earned.  The outcome is now three-valued
(``verified`` / ``violated`` / ``inconclusive``) and every rendering
surface derives its label from the same place.
"""

from __future__ import annotations

import io

import pytest

from repro.checker.result import (
    OUTCOME_LABELS,
    OUTCOMES,
    CheckResult,
    SearchStatistics,
    outcome_of,
)
from repro.engine import CheckPlan, run_plan
from repro.engine.events import EngineEvent, ProgressPrinter
from repro.protocols.catalog import multicast_entry


def make_result(verified=True, complete=True, counterexample=None):
    return CheckResult(
        protocol_name="p",
        property_name="inv",
        strategy="unreduced",
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=SearchStatistics(states_visited=10, elapsed_seconds=0.5),
    )


class TestOutcomeDerivation:
    @pytest.mark.parametrize(
        "verified, complete, found_ce, expected",
        [
            (True, True, False, "verified"),
            (True, False, False, "inconclusive"),
            (False, True, False, "violated"),
            (False, False, False, "violated"),
            # stop-at-first-violation: CE found, search incomplete —
            # conclusive all the same.
            (False, False, True, "violated"),
        ],
    )
    def test_truth_table(self, verified, complete, found_ce, expected):
        assert outcome_of(verified, complete, found_ce) == expected

    def test_every_outcome_has_a_label(self):
        assert set(OUTCOME_LABELS) == set(OUTCOMES)

    def test_conclusive_flag(self):
        assert make_result(complete=True).conclusive
        assert not make_result(complete=False).conclusive
        assert make_result(verified=False).conclusive


class TestNoPlainVerifiedForTruncatedRuns:
    """The acceptance criterion, at every rendering surface."""

    def test_outcome_label_of_a_truncated_result(self):
        result = make_result(complete=False)
        assert result.outcome() == "inconclusive"
        assert result.outcome_label() == "Inconclusive (budget hit)"
        assert result.outcome_label() != "Verified"

    def test_summary_of_a_truncated_result(self):
        summary = make_result(complete=False).summary()
        assert "Inconclusive (budget hit)" in summary
        assert "Verified" not in summary

    def test_real_max_states_truncated_run_is_inconclusive(self):
        entry = multicast_entry(2, 1, 0, 1)
        result = run_plan(
            entry.quorum_model(), entry.invariant, CheckPlan(max_states=10)
        )
        assert result.verified  # saw no violation in the 10 states...
        assert not result.complete  # ...but covered almost nothing
        assert result.outcome() == "inconclusive"
        assert "Verified" not in result.summary()

    def test_complete_run_still_renders_verified(self):
        entry = multicast_entry(2, 1, 0, 1)
        result = run_plan(entry.quorum_model(), entry.invariant, CheckPlan())
        assert result.outcome() == "verified"
        assert result.outcome_label() == "Verified"

    def test_progress_printer_never_prints_verified_for_truncated_runs(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer.on_event(
            EngineEvent(
                kind="search-finished",
                payload={
                    "engine": "serial-dfs",
                    "verified": True,
                    "complete": False,
                    "states_visited": 10,
                    "elapsed_seconds": 0.1,
                },
            )
        )
        text = stream.getvalue()
        assert "Inconclusive (budget hit)" in text
        assert "] Verified" not in text

    def test_record_outcome_is_budget_aware(self):
        from repro.analysis.aggregate import record_outcome, result_record

        record = result_record(make_result(complete=False))
        assert record["outcome"] == "inconclusive"
        assert record_outcome(record) == "Inconclusive (budget hit)"
        # Legacy records (no "outcome" field) fall back to the flags.
        legacy = {"verified": True, "complete": False}
        assert record_outcome(legacy) == "Inconclusive (budget hit)"
        assert record_outcome({"verified": True}) == "Verified"

    def test_cli_print_records_uses_the_shared_label(self):
        from repro.analysis.aggregate import result_record
        from repro.cli import _print_records

        stream = io.StringIO()
        record = result_record(make_result(complete=False))
        record.update(cell="cellkey", model="quorum")
        _print_records([record], stream)
        text = stream.getvalue()
        assert "Inconclusive (budget hit)" in text
        assert ": Verified" not in text
