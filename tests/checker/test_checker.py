"""Unit tests for the ModelChecker facade and strategies."""

import pytest

from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy, check_protocol
from repro.checker.property import Invariant, always_true

from ..conftest import build_ping_pong, build_vote_collection


def pongs_below(limit):
    return Invariant(
        name=f"pongs<{limit}",
        predicate=lambda state, _protocol: state.local("ping").pongs < limit,
    )


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy",
        [Strategy.UNREDUCED, Strategy.SPOR, Strategy.SPOR_NET, Strategy.DPOR],
    )
    def test_all_strategies_verify_trivial_property(self, strategy):
        protocol = build_vote_collection(voters=3, quorum=2)
        result = ModelChecker(protocol, always_true()).run(strategy)
        assert result.verified
        assert result.strategy == strategy.value

    @pytest.mark.parametrize(
        "strategy",
        [Strategy.UNREDUCED, Strategy.SPOR, Strategy.SPOR_NET, Strategy.DPOR],
    )
    def test_all_strategies_find_violation(self, strategy):
        protocol = build_ping_pong(rounds=2)
        result = ModelChecker(protocol, pongs_below(2)).run(strategy)
        assert not result.verified
        assert result.counterexample is not None

    def test_spor_explores_no_more_than_unreduced(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        unreduced = ModelChecker(protocol, always_true()).run(Strategy.UNREDUCED)
        reduced = ModelChecker(protocol, always_true()).run(Strategy.SPOR_NET)
        assert (
            reduced.statistics.states_visited
            <= unreduced.statistics.states_visited
        )

    def test_dpor_is_stateless(self):
        protocol = build_ping_pong(rounds=1)
        result = ModelChecker(protocol, always_true()).run(Strategy.DPOR)
        assert not result.stateful

    def test_default_strategy_is_unreduced(self, ping_pong):
        result = ModelChecker(ping_pong, always_true()).run()
        assert result.strategy == "unreduced"


class TestOptions:
    def test_search_config_is_honoured(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        options = CheckerOptions(search=SearchConfig(max_states=3))
        result = ModelChecker(protocol, always_true(), options).run(Strategy.UNREDUCED)
        assert not result.complete

    def test_invalid_seed_heuristic_rejected(self, ping_pong):
        options = CheckerOptions(seed_heuristic="nonsense")
        checker = ModelChecker(ping_pong, always_true(), options)
        with pytest.raises(ValueError):
            checker.run(Strategy.SPOR)

    def test_named_seed_heuristics_accepted(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        for name in ("opposite-transaction", "transaction", "first"):
            options = CheckerOptions(seed_heuristic=name)
            result = ModelChecker(protocol, always_true(), options).run(Strategy.SPOR)
            assert result.verified


class TestResultContents:
    def test_result_identifies_protocol_and_property(self, ping_pong):
        result = ModelChecker(ping_pong, always_true()).run()
        assert result.protocol_name == ping_pong.name
        assert result.property_name == "true"

    def test_outcome_labels(self, ping_pong_two_rounds):
        verified = ModelChecker(ping_pong_two_rounds, always_true()).run()
        violated = ModelChecker(ping_pong_two_rounds, pongs_below(1)).run()
        assert verified.outcome_label() == "Verified"
        assert violated.outcome_label() == "CE"
        assert violated.found_counterexample

    def test_summary_mentions_states(self, ping_pong):
        result = ModelChecker(ping_pong, always_true()).run()
        assert "states" in result.summary()

    def test_check_convenience_wrapper(self, ping_pong):
        assert check_protocol(ping_pong, always_true()).verified
        assert ModelChecker(ping_pong, always_true()).check()
