"""Unit tests for visited-state stores."""

import pytest

from repro.checker.statestore import (
    FingerprintStore,
    FullStateStore,
    NullStateStore,
    make_state_store,
)
from repro.mp.channel import Network
from repro.mp.state import GlobalState


def make_state(value):
    return GlobalState([("p", value)], Network.empty())


class TestFullStateStore:
    def test_add_new_state_returns_true(self):
        store = FullStateStore()
        assert store.add(make_state(1))

    def test_add_duplicate_returns_false(self):
        store = FullStateStore()
        store.add(make_state(1))
        assert not store.add(make_state(1))

    def test_contains_and_len(self):
        store = FullStateStore()
        store.add(make_state(1))
        store.add(make_state(2))
        assert make_state(1) in store
        assert make_state(3) not in store
        assert len(store) == 2


class TestFingerprintStore:
    def test_add_and_membership(self):
        store = FingerprintStore()
        assert store.add(make_state(1))
        assert not store.add(make_state(1))
        assert make_state(1) in store
        assert len(store) == 1

    def test_distinct_states_distinct_fingerprints(self):
        store = FingerprintStore()
        store.add(make_state(1))
        store.add(make_state(2))
        assert len(store) == 2


class TestNullStateStore:
    def test_never_remembers(self):
        store = NullStateStore()
        assert store.add(make_state(1))
        assert store.add(make_state(1))
        assert make_state(1) not in store
        assert len(store) == 0


class TestFactory:
    @pytest.mark.parametrize(
        "kind, cls",
        [("full", FullStateStore), ("fingerprint", FingerprintStore), ("none", NullStateStore)],
    )
    def test_known_kinds(self, kind, cls):
        assert isinstance(make_state_store(kind), cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_state_store("bogus")
