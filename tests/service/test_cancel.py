"""Job cancellation and wall-clock preemption of the checking service.

Cancellation is cooperative: the gate raises from the engine's own event
stream, so a cancelled run unwinds through its normal teardown and the
worker slot is reused.  Either way — explicit cancel or wall-clock limit —
the job ends as an honest ``Inconclusive (cancelled)``, which the verdict
cache refuses to memoize.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.events import EngineEvent
from repro.service import (
    CANCELLED,
    CheckService,
    JobBudgets,
    JobRequest,
    UnknownJobError,
    plan_from_dict,
)
from repro.service.service import JobCancelled, _CancelGate

import threading


def _quick_request(**overrides):
    fields = dict(cell="multicast-3-0-1-1", model="single")
    fields.update(overrides)
    return JobRequest(**fields)


class TestCancelGate:
    def _event(self):
        return EngineEvent(kind="search-started", payload={})

    def test_passes_while_flag_clear(self):
        gate = _CancelGate("job-1", threading.Event())
        gate.on_event(self._event())  # no raise

    def test_raises_once_flag_set(self):
        flag = threading.Event()
        gate = _CancelGate("job-1", flag)
        flag.set()
        with pytest.raises(JobCancelled) as excinfo:
            gate.on_event(self._event())
        assert excinfo.value.reason == "cancel requested"
        assert "job-1" in str(excinfo.value)

    def test_wall_clock_deadline_trips(self):
        clock_now = [0.0]
        gate = _CancelGate(
            "job-2", threading.Event(), deadline=10.0,
            clock=lambda: clock_now[0],
        )
        gate.on_event(self._event())
        clock_now[0] = 10.0
        with pytest.raises(JobCancelled) as excinfo:
            gate.on_event(self._event())
        assert excinfo.value.reason == "wall-clock limit"


class TestServiceCancellation:
    def test_cancel_queued_job_never_runs(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                blocker = await service.submit(_quick_request())
                queued = await service.submit(_quick_request(model="quorum"))
                cancelled = service.cancel(queued.id)
                assert cancelled.status == CANCELLED
                queued = await service.wait(queued.id)
                blocker = await service.wait(blocker.id)
                return queued, blocker, service.health()

        queued, blocker, health = asyncio.run(scenario())
        assert queued.status == CANCELLED
        assert queued.result is None
        assert "job-cancelled" in queued.events.kinds()
        assert blocker.status == "done"
        assert health["jobs"][CANCELLED] == 1

    def test_wall_clock_limit_preempts_running_job(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                # Deadline in the past: the gate trips on the first event
                # after the job starts — deterministic, no timing races.
                job = await service.check(
                    _quick_request(budgets=JobBudgets(max_wall_seconds=0.0))
                )
                follow_up = await service.check(_quick_request())
                return job, follow_up

        job, follow_up = asyncio.run(scenario())
        assert job.status == CANCELLED
        assert job.result is not None
        assert job.result.outcome() == "inconclusive"
        assert job.result.incomplete_reason == "cancelled"
        assert job.result.outcome_label() == "Inconclusive (cancelled)"
        assert "job-cancelled" in job.events.kinds()
        # The slot survived and the cancelled verdict was not cached.
        assert follow_up.status == "done"
        assert follow_up.cache_hit is False

    def test_cancelled_result_is_never_cached(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                cancelled = await service.check(
                    _quick_request(budgets=JobBudgets(max_wall_seconds=0.0))
                )
                rerun = await service.check(_quick_request())
                return cancelled, rerun, service.engine_runs

        cancelled, rerun, engine_runs = asyncio.run(scenario())
        assert cancelled.status == CANCELLED
        assert rerun.status == "done"
        assert rerun.result.complete
        # The past-deadline gate trips on the job-started event, before the
        # engine counter: the only engine run is the rerun's, and it was a
        # genuine cache miss — the cancelled verdict was never memoized.
        assert rerun.cache_hit is False
        assert engine_runs == 1

    def test_cancel_finished_job_is_a_no_op(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                job = await service.check(_quick_request())
                return service.cancel(job.id)

        job = asyncio.run(scenario())
        assert job.status == "done"
        assert "job-cancelled" not in job.events.kinds()

    def test_cancel_unknown_job_raises(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                with pytest.raises(UnknownJobError):
                    service.cancel("job-999")

        asyncio.run(scenario())

    def test_cancel_active_sweeps_queued_and_running(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                jobs = [
                    await service.submit(_quick_request())
                    for _ in range(3)
                ]
                count = service.cancel_active()
                finished = [await service.wait(job.id) for job in jobs]
                return count, finished

        count, finished = asyncio.run(scenario())
        assert count == 3
        # Every job ended (no hangs); at least the still-queued ones are
        # cancelled.  The first may have finished before the sweep landed.
        assert all(job.status in ("done", CANCELLED) for job in finished)
        assert sum(job.status == CANCELLED for job in finished) >= 2

    def test_max_wall_seconds_travels_the_wire_format(self):
        budgets = JobBudgets(max_wall_seconds=1.5)
        assert JobBudgets.from_dict(budgets.to_dict()) == budgets
        # And it is not a plan knob: the effective plan is untouched.
        request = _quick_request(budgets=budgets)
        assert request.effective_plan() == request.plan

    def test_cancelled_record_renders_reason(self):
        from repro.analysis.aggregate import record_outcome

        async def scenario():
            async with CheckService(workers=1) as service:
                return await service.check(
                    _quick_request(budgets=JobBudgets(max_wall_seconds=0.0))
                )

        job = asyncio.run(scenario())
        record = job.record()
        assert record["status"] == CANCELLED
        assert record["incomplete_reason"] == "cancelled"
        assert record_outcome(record) == "Inconclusive (cancelled)"
