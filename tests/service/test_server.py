"""Wire-level tests: JSON-lines server, synchronous client, error paths."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    WIRE_VERSION,
    CheckServer,
    CheckService,
    JobRequest,
    ServiceClient,
    ServiceClientError,
    plan_from_dict,
)

CELL = "multicast-2-1-0-1"


def with_server(driver, **service_kwargs):
    """Run ``driver(client)`` on a thread against a live server."""

    async def scenario():
        server = CheckServer(CheckService(**service_kwargs), port=0)
        await server.start()
        try:
            loop = asyncio.get_running_loop()

            def drive():
                with ServiceClient(port=server.port) as client:
                    return driver(client)

            return await loop.run_in_executor(None, drive)
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestWire:
    def test_ping(self):
        assert with_server(lambda c: c.ping()) == WIRE_VERSION

    def test_submit_wait_returns_the_verdict_record(self):
        record = with_server(lambda c: c.submit(CELL))
        assert record["status"] == "done"
        assert record["outcome"] == "verified"
        assert record["complete"] is True
        assert record["cache_hit"] is False
        assert record["states_visited"] == 45
        assert record["request"]["cell"] == CELL

    def test_second_submission_is_a_cache_hit(self):
        def driver(client):
            client.submit(CELL)
            return client.submit(CELL)

        record = with_server(driver)
        assert record["cache_hit"] is True
        assert record["outcome"] == "verified"

    def test_budget_truncated_submission_is_inconclusive_on_the_wire(self):
        record = with_server(
            lambda c: c.submit(CELL, budgets={"max_states": 10})
        )
        assert record["outcome"] == "inconclusive"
        assert record["complete"] is False
        assert record["telemetry"]  # statistics + telemetry travel with it

    def test_async_submit_then_result(self):
        def driver(client):
            queued = client.submit(CELL, wait=False)
            final = client.result(queued["job"])
            return queued, final

        queued, final = with_server(driver)
        assert queued["status"] in ("queued", "running", "done")
        assert final["status"] == "done"
        assert final["outcome"] == "verified"

    def test_events_op_streams_the_job_scoped_log(self):
        def driver(client):
            record = client.submit(CELL)
            return client.events(record["job"])

        events = with_server(driver)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "job-submitted"
        assert "search-started" in kinds
        assert kinds[-1] == "job-finished"

    def test_health_op(self):
        def driver(client):
            client.submit(CELL)
            return client.health()

        health = with_server(driver)
        assert health["status"] == "ok"
        assert health["engine_runs"] == 1
        assert health["cache"]["entries"] == 1

    def test_invalidate_op(self):
        def driver(client):
            client.submit(CELL)
            removed = client.invalidate()
            rerun = client.submit(CELL)
            return removed, rerun

        removed, rerun = with_server(driver)
        assert removed == 1
        assert rerun["cache_hit"] is False


class TestWireErrors:
    def test_unsupported_plan_is_a_structured_wire_error(self):
        def driver(client):
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(CELL, plan={"shape": "bfs", "reduction": "spor"})
            return excinfo.value

        error = with_server(driver)
        assert error.kind == "UnsupportedPlanError"
        assert error.axis is not None
        assert error.alternative is not None

    def test_unknown_plan_field_is_refused(self):
        def driver(client):
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(CELL, plan={"sharpe": "dfs"})
            return excinfo.value

        error = with_server(driver)
        assert "sharpe" in str(error)

    def test_unknown_op(self):
        def driver(client):
            with pytest.raises(ServiceClientError) as excinfo:
                client.request("frobnicate")
            return excinfo.value

        assert "unknown op" in str(with_server(driver))

    def test_malformed_json_is_an_error_response_not_a_dropped_connection(self):
        def driver(client):
            client._file.write(b"not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            # The connection survives: a well-formed request still works.
            return client.ping()

        assert with_server(driver) == WIRE_VERSION


class TestPlanFromDict:
    def test_round_trips_the_settable_axes(self):
        plan = plan_from_dict({"shape": "bfs", "workers": 2, "goal": "invariant"})
        assert plan.shape == "bfs"
        assert plan.workers == 2

    def test_unknown_fields_raise(self):
        with pytest.raises(ValueError, match="unknown plan field"):
            plan_from_dict({"max_states": 10})

    def test_request_round_trip(self):
        request = JobRequest.from_dict(
            {
                "cell": CELL,
                "model": "single",
                "plan": {"shape": "bfs"},
                "budgets": {"max_states": 5},
            }
        )
        assert request.to_dict()["model"] == "single"
        assert request.effective_plan().max_states == 5
        assert JobRequest.from_dict(request.to_dict()) == request
