"""CheckService behaviour: caching, budgets, isolation, overload, health."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    DONE,
    FAILED,
    CheckService,
    Job,
    JobBudgets,
    JobRequest,
    ResultCache,
    ServiceError,
    ServiceOverloadedError,
    UnknownJobError,
    run_jobs,
)

#: The fastest catalog cell (45 states) — every test workload uses it.
CELL = "multicast-2-1-0-1"


def run_service(requests, **kwargs):
    return run_jobs(list(requests), **kwargs)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestCaching:
    def test_repeated_job_is_served_from_cache_without_engine_rerun(self):
        cache = ResultCache()

        async def scenario():
            async with CheckService(workers=1, cache=cache) as service:
                first = await service.check(JobRequest(cell=CELL))
                second = await service.check(JobRequest(cell=CELL))
                return service.engine_runs, first, second

        engine_runs, first, second = asyncio.run(scenario())
        assert engine_runs == 1
        assert not first.cache_hit
        assert second.cache_hit
        # The memoized CheckResult object itself is returned — no engine
        # re-run, no re-derived verdict.
        assert second.result is first.result
        assert "job-cache-hit" in second.events.kinds()
        assert "job-cache-hit" not in first.events.kinds()

    def test_budget_truncated_results_are_not_cached(self):
        cache = ResultCache()
        request = JobRequest(cell=CELL, budgets=JobBudgets(max_states=10))
        first, second = run_service([request, request], workers=1, cache=cache)
        assert first.outcome() == "inconclusive"
        assert second.outcome() == "inconclusive"
        assert not first.cache_hit and not second.cache_hit
        assert len(cache) == 0
        assert cache.stats()["rejected_incomplete"] == 2

    def test_explicit_invalidation_forces_a_rerun(self):
        cache = ResultCache()

        async def scenario():
            async with CheckService(workers=1, cache=cache) as service:
                await service.check(JobRequest(cell=CELL))
                cache.clear()
                rerun = await service.check(JobRequest(cell=CELL))
                return service.engine_runs, rerun

        engine_runs, rerun = asyncio.run(scenario())
        assert engine_runs == 2
        assert not rerun.cache_hit


class TestBudgets:
    def test_budget_hit_returns_inconclusive_with_statistics_and_telemetry(self):
        (job,) = run_service(
            [JobRequest(cell=CELL, budgets=JobBudgets(max_states=10))],
            workers=1,
        )
        assert job.status == DONE
        result = job.result
        assert result.outcome() == "inconclusive"
        assert not result.complete
        assert result.verified  # no violation seen — but that proves nothing
        assert result.outcome_label() == "Inconclusive (budget hit)"
        assert result.statistics.states_visited == 10
        assert result.telemetry is not None
        assert "metrics" in result.telemetry or result.telemetry
        finished = job.events.last("job-finished")
        assert finished.payload["outcome"] == "inconclusive"
        assert finished.payload["complete"] is False

    def test_budgets_map_onto_the_plan_search_knobs(self):
        request = JobRequest(
            cell=CELL,
            budgets=JobBudgets(max_states=10, max_seconds=5.0, max_depth=3),
        )
        plan = request.effective_plan()
        assert plan.max_states == 10
        assert plan.max_seconds == 5.0
        assert plan.max_depth == 3
        # The base plan is untouched — budgets layer, they do not mutate.
        assert request.plan.max_states is None

    def test_budgetless_job_runs_to_completion(self):
        (job,) = run_service([JobRequest(cell=CELL)], workers=1)
        assert job.outcome() == "verified"
        assert job.result.complete


class TestSwarmJobs:
    """Swarm plans flow through the service like any other, with the
    sampling-specific admission rule: violations cache, samples do not."""

    def swarm_request(self, cell, walks):
        from repro.engine.plan import CheckPlan

        return JobRequest(
            cell=cell,
            plan=CheckPlan(
                shape="dfs", reduction="none", backend="swarm",
                stateful=False, walks=walks, walk_seed=7,
            ),
        )

    def test_swarm_violation_is_conclusive_and_cached(self):
        cache = ResultCache()
        request = self.swarm_request("multicast-2-1-2-1", walks=20_000)
        first, second = run_service([request, request], workers=1, cache=cache)
        assert first.outcome() == "violated"
        assert not first.cache_hit
        assert second.cache_hit
        assert second.result is first.result

    def test_swarm_budget_exhaustion_is_never_cached(self):
        cache = ResultCache()
        request = self.swarm_request(CELL, walks=200)
        first, second = run_service([request, request], workers=1, cache=cache)
        assert first.outcome() == "inconclusive"
        assert second.outcome() == "inconclusive"
        assert not first.cache_hit and not second.cache_hit
        assert len(cache) == 0
        assert cache.stats()["rejected_incomplete"] == 2


class TestStreamIsolation:
    def test_concurrent_jobs_do_not_interleave_their_streams(self):
        requests = [
            JobRequest(cell=CELL, budgets=JobBudgets(max_states=10 + i))
            for i in range(4)
        ]
        jobs = run_service(requests, workers=2)
        for job in jobs:
            kinds = job.events.kinds()
            # Exactly one engine run's bracket per job log: any cross-job
            # leakage would duplicate the brackets.
            assert kinds.count("search-started") == 1
            assert kinds.count("search-finished") == 1
            # Every job-lifecycle event in this log names this job only.
            for event in job.events.events:
                if event.kind.startswith("job-"):
                    assert event.payload["job"] == job.id

    def test_lifecycle_event_order(self):
        (job,) = run_service([JobRequest(cell=CELL)], workers=1)
        kinds = job.events.kinds()
        assert kinds[0] == "job-submitted"
        assert kinds[1] == "job-started"
        assert kinds[-1] == "job-finished"
        assert kinds.index("job-started") < kinds.index("search-started")


class TestFailuresAndOverload:
    def test_unknown_cell_fails_the_job_not_the_service(self):
        bad = JobRequest(cell="no-such-cell")
        good = JobRequest(cell=CELL)
        bad_job, good_job = run_service([bad, good], workers=1)
        assert bad_job.status == FAILED
        assert "no-such-cell" in bad_job.error
        assert bad_job.events.last("job-failed") is not None
        assert good_job.status == DONE

    def test_unsupported_plan_fails_with_the_structured_message(self):
        from repro.engine.plan import CheckPlan

        request = JobRequest(cell=CELL, plan=CheckPlan(shape="bfs", reduction="spor"))
        (job,) = run_service([request], workers=1)
        assert job.status == FAILED
        assert "nearest supported alternative" in job.error

    def test_bounded_queue_refuses_overload(self):
        async def scenario():
            async with CheckService(workers=1, queue_limit=1) as service:
                # Occupy the single queue slot without letting the worker
                # drain it: submissions beyond the bound must be refused.
                first = await service.submit(JobRequest(cell=CELL))
                second = None
                error = None
                try:
                    # The worker may have grabbed the first job already, so
                    # fill the queue until it refuses.
                    for _ in range(3):
                        second = await service.submit(JobRequest(cell=CELL))
                except ServiceOverloadedError as exc:
                    error = exc
                jobs = [first] + ([second] if second else [])
                for job in jobs:
                    await service.wait(job.id)
                return error

        error = asyncio.run(scenario())
        assert error is not None
        assert error.queue_limit == 1

    def test_unknown_job_lookup(self):
        async def scenario():
            async with CheckService(workers=1) as service:
                with pytest.raises(UnknownJobError):
                    service.job("job-999")

        asyncio.run(scenario())

    def test_submit_before_start_is_refused(self):
        async def scenario():
            service = CheckService(workers=1)
            with pytest.raises(ServiceError):
                await service.submit(JobRequest(cell=CELL))

        asyncio.run(scenario())


class TestHealth:
    def test_stalled_worker_probe_fires_with_injected_clock(self):
        clock = FakeClock(100.0)
        service = CheckService(workers=1, stall_seconds=5.0, clock=clock)
        job = Job(id="job-x", request=JobRequest(cell=CELL))
        service._running[0] = job
        service._heartbeats[0] = 100.0
        assert service.health()["status"] == "ok"

        clock.now = 106.0  # heartbeat silent past the threshold
        health = service.health()
        assert health["status"] == "degraded"
        (stalled,) = health["stalled"]
        assert stalled["worker"] == 0
        assert stalled["job"] == "job-x"
        assert stalled["idle_seconds"] == pytest.approx(6.0)
        assert health["stall_episodes"] == 1

        # A repeated probe of the same silence is one episode, not two.
        assert service.health()["stall_episodes"] == 1

        # Resumed heartbeat: healthy again, and the detector re-arms.
        service._heartbeats[0] = 106.5
        clock.now = 107.0
        assert service.health()["status"] == "ok"
        clock.now = 120.0
        assert service.health()["stall_episodes"] == 2

    def test_idle_slots_are_not_stalls(self):
        clock = FakeClock(100.0)
        service = CheckService(workers=2, stall_seconds=5.0, clock=clock)
        clock.now = 1000.0
        assert service.health()["status"] == "ok"

    def test_health_counts_jobs_and_cache(self):
        cache = ResultCache()

        async def scenario():
            async with CheckService(workers=1, cache=cache) as service:
                await service.check(JobRequest(cell=CELL))
                await service.check(JobRequest(cell=CELL))
                return service.health()

        health = asyncio.run(scenario())
        assert health["jobs"][DONE] == 2
        assert health["engine_runs"] == 1
        assert health["cache"]["hits"] == 1
        assert health["queued"] == 0


class TestRunJobsConvenience:
    def test_returns_jobs_in_request_order(self):
        requests = [
            JobRequest(cell=CELL),
            JobRequest(cell=CELL, budgets=JobBudgets(max_states=10)),
        ]
        jobs = run_service(requests, workers=2)
        assert [job.request for job in jobs] == requests
        assert jobs[0].outcome() == "verified"
        assert jobs[1].outcome() == "inconclusive"
