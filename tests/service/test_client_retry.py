"""Connection retry and request replay discipline of the service client.

The client promises: connection attempts back off exponentially with
bounded jitter (injectable sleep/rng, so the schedule is asserted without
real waiting); a dropped connection replays *idempotent* requests once
over a fresh socket; and ``submit`` is never replayed — a replay would
double-run the job.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.service import CheckService
from repro.service.client import (
    CONNECT_ATTEMPTS,
    IDEMPOTENT_OPS,
    ServiceClient,
    ServiceClientError,
)
from repro.service.server import CheckServer


class _ZeroRandom(random.Random):
    """Deterministic rng: random() is always 0.0 (no jitter)."""

    def random(self):
        return 0.0


class TestConnectRetry:
    def test_unreachable_port_retries_with_backoff(self):
        sleeps = []
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(
                host="127.0.0.1", port=1,  # reserved, nothing listens
                connect_timeout=0.05,
                connect_attempts=4, connect_backoff=0.1,
                sleep=sleeps.append, rng=_ZeroRandom(),
            )
        # Attempt 1 is immediate; each retry doubles the previous delay.
        assert sleeps == [0.1, 0.2, 0.4]
        assert excinfo.value.kind == "ConnectionError"
        assert "after 4 attempt(s)" in str(excinfo.value)

    def test_jitter_scales_the_delay(self):
        class _MaxRandom(random.Random):
            def random(self):
                return 1.0

        sleeps = []
        with pytest.raises(ServiceClientError):
            ServiceClient(
                host="127.0.0.1", port=1,
                connect_timeout=0.05,
                connect_attempts=2, connect_backoff=0.1,
                sleep=sleeps.append, rng=_MaxRandom(),
            )
        assert sleeps == [pytest.approx(0.125)]  # 0.1 * (1 + 0.25)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(port=1, connect_attempts=0)

    def test_defaults_are_sane(self):
        assert CONNECT_ATTEMPTS >= 3  # a restarting server gets a chance


class _FlakyServer(threading.Thread):
    """A server that drops the first connection after one request."""

    def __init__(self):
        super().__init__(daemon=True)
        self.port = None
        self._ready = threading.Event()
        self.requests_seen = 0

    def run(self):
        import json
        import socket

        listener = socket.create_server(("127.0.0.1", 0))
        self.port = listener.getsockname()[1]
        self._ready.set()
        connections = 0
        while connections < 3:
            conn, _addr = listener.accept()
            connections += 1
            file = conn.makefile("rwb")
            line = file.readline()
            if not line:
                conn.close()
                continue
            self.requests_seen += 1
            if connections == 1:
                # First connection: drop without answering.
                conn.close()
                continue
            file.write(
                (json.dumps({"ok": True, "pong": "test"}) + "\n").encode()
            )
            file.flush()
            conn.close()
        listener.close()

    def wait_ready(self):
        self._ready.wait(5.0)
        return self.port


class TestRequestRetry:
    def test_idempotent_request_survives_a_dropped_connection(self):
        server = _FlakyServer()
        server.start()
        port = server.wait_ready()
        client = ServiceClient(
            host="127.0.0.1", port=port,
            sleep=lambda _s: None, rng=_ZeroRandom(),
        )
        try:
            # First exchange dies with the connection; 'ping' is
            # idempotent, so the client reconnects and replays it.
            assert client.ping() == "test"
            assert server.requests_seen == 2
        finally:
            client.close()

    def test_submit_is_never_replayed(self):
        assert "submit" not in IDEMPOTENT_OPS
        server = _FlakyServer()
        server.start()
        port = server.wait_ready()
        client = ServiceClient(
            host="127.0.0.1", port=port,
            sleep=lambda _s: None, rng=_ZeroRandom(),
        )
        try:
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit("storage-3-1")
            assert excinfo.value.kind == "ConnectionError"
            assert server.requests_seen == 1  # no replay
        finally:
            client.close()

    def test_cancel_is_idempotent(self):
        assert "cancel" in IDEMPOTENT_OPS


class TestAgainstRealServer:
    def test_cancel_op_round_trip(self):
        async def run_all():
            service = CheckService(workers=1)
            server = CheckServer(service, port=0)
            await server.start()
            from repro.service import JobRequest

            blocker = await service.submit(
                JobRequest(cell="multicast-3-0-1-1", model="single")
            )
            queued = await service.submit(
                JobRequest(cell="multicast-3-0-1-1")
            )
            loop = asyncio.get_running_loop()

            def client_cancel():
                with ServiceClient(port=server.port) as client:
                    return client.cancel(queued.id, wait=True)

            record = await loop.run_in_executor(None, client_cancel)
            await service.wait(blocker.id)
            await server.stop()
            return record

        record = asyncio.run(run_all())
        assert record["status"] == "cancelled"
        assert record["job"].startswith("job-")
