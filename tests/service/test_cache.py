"""Verdict-cache semantics: keying, honesty, LRU, explicit invalidation."""

from __future__ import annotations

import pytest

from repro.checker.result import CheckResult, SearchStatistics
from repro.engine.plan import CheckPlan
from repro.protocols.catalog import multicast_entry, paxos_entry
from repro.service import ResultCache, protocol_fingerprint


def make_result(complete=True, verified=True):
    return CheckResult(
        protocol_name="p",
        property_name="inv",
        strategy="unreduced",
        verified=verified,
        complete=complete,
        statistics=SearchStatistics(states_visited=7, elapsed_seconds=0.1),
    )


class TestProtocolFingerprint:
    def test_same_parameterisation_same_fingerprint(self):
        entry = multicast_entry(2, 1, 0, 1)
        first = protocol_fingerprint(entry.quorum_model())
        second = protocol_fingerprint(entry.quorum_model())
        assert first == second

    def test_different_protocols_differ(self):
        multicast = multicast_entry(2, 1, 0, 1).quorum_model()
        paxos = paxos_entry(2, 2, 1).quorum_model()
        assert protocol_fingerprint(multicast) != protocol_fingerprint(paxos)

    def test_different_parameters_differ(self):
        small = multicast_entry(2, 1, 0, 1).quorum_model()
        larger = multicast_entry(3, 0, 1, 1).quorum_model()
        assert protocol_fingerprint(small) != protocol_fingerprint(larger)


class TestAdmission:
    def test_complete_results_are_cached(self):
        cache = ResultCache()
        key = ("fp", "inv", CheckPlan())
        assert cache.put(key, make_result(complete=True))
        assert cache.get(key) is not None
        assert cache.stats()["hits"] == 1

    def test_incomplete_results_are_never_cached(self):
        cache = ResultCache()
        key = ("fp", "inv", CheckPlan(max_states=10))
        assert not cache.put(key, make_result(complete=False))
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.stats()["rejected_incomplete"] == 1

    def test_budgeted_and_unbudgeted_plans_key_separately(self):
        # The budget is part of the question: a full-run verdict must not
        # answer a budgeted submission or vice versa.
        cache = ResultCache()
        full = ("fp", "inv", CheckPlan())
        budgeted = ("fp", "inv", CheckPlan(max_states=10))
        cache.put(full, make_result())
        assert cache.get(budgeted) is None


def swarm_key(walks=2000, walk_seed=7):
    return (
        "fp", "inv",
        CheckPlan(
            shape="dfs", reduction="none", backend="swarm", stateful=False,
            walks=walks, walk_seed=walk_seed,
        ),
    )


class TestSwarmAdmission:
    """Satellite of the swarm PR: sampling runs never complete, so admission
    is by verdict — a violated swarm result is conclusive and cacheable, an
    inconclusive one proves nothing and must be recomputed every time."""

    def test_swarm_violation_is_cached(self):
        cache = ResultCache()
        key = swarm_key()
        assert cache.put(key, make_result(complete=False, verified=False))
        assert cache.get(key) is not None

    def test_swarm_inconclusive_is_never_cached(self):
        cache = ResultCache()
        key = swarm_key()
        assert not cache.put(key, make_result(complete=False, verified=True))
        assert cache.get(key) is None
        assert cache.stats()["rejected_incomplete"] == 1

    def test_sampling_budget_is_part_of_the_question(self):
        # A violation found under one (walks, seed) configuration answers
        # only that configuration: more walks or another seed is a
        # different experiment.
        cache = ResultCache()
        cache.put(swarm_key(walks=2000, walk_seed=7),
                  make_result(complete=False, verified=False))
        assert cache.get(swarm_key(walks=4000, walk_seed=7)) is None
        assert cache.get(swarm_key(walks=2000, walk_seed=8)) is None
        assert cache.get(swarm_key(walks=2000, walk_seed=7)) is not None

    def test_swarm_exception_does_not_leak_to_exhaustive_plans(self):
        # The by-verdict admission is keyed on the plan's backend:
        # incomplete results from exhaustive plans stay inadmissible even
        # when they carry a violation.
        cache = ResultCache()
        key = ("fp", "inv", CheckPlan())
        assert not cache.put(key, make_result(complete=False, verified=False))
        assert cache.stats()["rejected_incomplete"] == 1


class TestEvictionAndInvalidation:
    def test_lru_eviction_respects_capacity(self):
        cache = ResultCache(capacity=2)
        keys = [(f"fp{i}", "inv", CheckPlan()) for i in range(3)]
        for key in keys:
            cache.put(key, make_result())
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # the oldest fell out
        assert cache.get(keys[2]) is not None

    def test_get_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        keys = [(f"fp{i}", "inv", CheckPlan()) for i in range(3)]
        cache.put(keys[0], make_result())
        cache.put(keys[1], make_result())
        cache.get(keys[0])  # touch: keys[1] becomes the eviction victim
        cache.put(keys[2], make_result())
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_invalidate_single_key(self):
        cache = ResultCache()
        key = ("fp", "inv", CheckPlan())
        cache.put(key, make_result())
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        assert cache.get(key) is None

    def test_invalidate_protocol_drops_every_property_and_plan(self):
        cache = ResultCache()
        cache.put(("fpA", "inv", CheckPlan()), make_result())
        cache.put(("fpA", "agreement", CheckPlan(shape="bfs")), make_result())
        cache.put(("fpB", "inv", CheckPlan()), make_result())
        assert cache.invalidate_protocol("fpA") == 2
        assert len(cache) == 1
        assert cache.get(("fpB", "inv", CheckPlan())) is not None

    def test_clear(self):
        cache = ResultCache()
        cache.put(("fp", "inv", CheckPlan()), make_result())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
