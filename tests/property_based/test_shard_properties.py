"""Property-based tests of the fingerprint shard partition.

The parallel search is sound only if shard routing is a *partition*: every
fingerprint maps to exactly one shard, the same shard every time, in every
process (pickling a store or a state must not silently re-route anything).
"""

from __future__ import annotations

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.checker.statestore import (
    ShardedFingerprintStore,
    mix_fingerprint,
    shard_of,
)

#: Python hashes: arbitrary signed machine-word-ish integers.
fingerprints = st.integers(min_value=-(2 ** 63), max_value=2 ** 64 - 1)
shard_counts = st.integers(min_value=1, max_value=32)


@given(fingerprints, shard_counts)
def test_routing_is_total_and_in_range(fingerprint, num_shards):
    shard = shard_of(fingerprint, num_shards)
    assert 0 <= shard < num_shards


@given(fingerprints, shard_counts)
def test_routing_is_deterministic(fingerprint, num_shards):
    assert shard_of(fingerprint, num_shards) == shard_of(fingerprint, num_shards)


@given(fingerprints)
def test_mixer_is_a_64_bit_value(fingerprint):
    mixed = mix_fingerprint(fingerprint)
    assert 0 <= mixed < 2 ** 64
    # Mixing only depends on the low 64 bits, i.e. routing agrees for ints
    # that are congruent mod 2**64 (Python hashes live in that range).
    assert mix_fingerprint(fingerprint + 2 ** 64) == mixed


@given(st.lists(fingerprints, max_size=50), shard_counts)
def test_every_fingerprint_lives_in_exactly_one_shard(values, num_shards):
    store = ShardedFingerprintStore(num_shards=num_shards)
    for value in values:
        store.add_fingerprint(value)
    for value in values:
        holders = [
            index
            for index in range(num_shards)
            if value in store.shard_contents(index)
        ]
        assert holders == [store.shard_of(value)]
    assert sum(store.shard_sizes()) == len(store) == len(set(values))


@given(st.lists(fingerprints, max_size=50), shard_counts)
def test_store_survives_pickle_round_trip(values, num_shards):
    store = ShardedFingerprintStore(num_shards=num_shards)
    for value in values:
        store.add_fingerprint(value)
    restored = pickle.loads(pickle.dumps(store))
    assert restored.num_shards == store.num_shards
    assert restored.shard_sizes() == store.shard_sizes()
    for value in values:
        assert restored.contains_fingerprint(value)
        # Routing must be identical on both sides of the round trip.
        assert restored.shard_of(value) == store.shard_of(value)
    # Re-adding a restored fingerprint must report "seen before".
    for value in values:
        assert not restored.add_fingerprint(value)
