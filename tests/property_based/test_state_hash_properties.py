"""Property-based tests for the incremental global-state hash.

The successor engine maintains the hash of a global state incrementally:
functional updates XOR out the entry hash of the replaced local state and
XOR in the hash of its replacement instead of rehashing the whole vector.
These properties pin the invariant the engine relies on: after *any*
sequence of functional updates, the incrementally-maintained hash equals
the hash of an equal state built from scratch.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.channel import Network
from repro.mp.message import Message
from repro.mp.state import GlobalState, StateInterner

PIDS = ("p1", "p2", "p3", "p4")

locals_strategy = st.tuples(*(st.integers(0, 5) for _ in PIDS))

#: One update step: pick a process, a new local value, and optionally a
#: message to add to / remove from the network.
update_steps = st.lists(
    st.tuples(
        st.integers(0, len(PIDS) - 1),
        st.integers(0, 5),
        st.sampled_from(["keep", "add", "remove"]),
        st.integers(0, 2),
    ),
    max_size=20,
)


def fresh_state(values):
    return GlobalState(tuple(zip(PIDS, values)), Network.empty())


def message(tag):
    return Message.make("M", "p1", "p2", tag=tag)


def apply_steps(state, steps):
    """Replay an update sequence through the incremental update paths."""
    for position, value, network_op, tag in steps:
        pid = PIDS[position]
        network = state.network
        if network_op == "add":
            network = network.add_all([message(tag)])
        elif network_op == "remove" and network.count(message(tag)):
            network = network.remove_all([message(tag)])
        state = state.with_updates(pid, value, network)
    return state


class TestIncrementalHash:
    @given(locals_strategy, update_steps)
    @settings(max_examples=120, deadline=None)
    def test_incremental_hash_matches_from_scratch(self, values, steps):
        state = apply_steps(fresh_state(values), steps)
        rebuilt = GlobalState(state.locals, state.network)
        assert state == rebuilt
        assert hash(state) == hash(rebuilt)
        assert state.fingerprint() == hash(rebuilt)

    @given(locals_strategy, update_steps)
    @settings(max_examples=120, deadline=None)
    def test_with_local_matches_with_updates(self, values, steps):
        state = apply_steps(fresh_state(values), steps)
        via_local = state.with_local("p2", 9)
        via_updates = state.with_updates("p2", 9, state.network)
        assert via_local == via_updates
        assert hash(via_local) == hash(via_updates)

    @given(locals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_swapped_locals_hash_differently(self, values):
        state = fresh_state(values)
        swapped = state.with_updates("p1", state.local("p2"), state.network).with_local(
            "p2", state.local("p1")
        )
        if state.local("p1") != state.local("p2"):
            assert swapped != state
            # Position-tagged entry hashes make the accumulator order-aware.
            assert hash(swapped) != hash(state)

    @given(locals_strategy, update_steps)
    @settings(max_examples=60, deadline=None)
    def test_no_change_updates_return_self(self, values, steps):
        state = apply_steps(fresh_state(values), steps)
        assert state.with_updates("p1", state.local("p1"), state.network) is state
        assert state.with_local("p1", state.local("p1")) is state
        assert state.with_network(state.network) is state


class TestInterning:
    @given(locals_strategy, update_steps)
    @settings(max_examples=60, deadline=None)
    def test_interner_canonicalises_equal_states(self, values, steps):
        interner = StateInterner()
        first = interner.intern(apply_steps(fresh_state(values), steps))
        second = interner.intern(apply_steps(fresh_state(values), steps))
        assert first is second
        assert len(interner) == 1
