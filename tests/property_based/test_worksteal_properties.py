"""Property-based tests of the work-stealing primitives.

Two facts the parallel DFS is sound only if they hold universally:

* a :class:`~repro.parallel.worksteal.StolenFrame` survives its pickle →
  rebuild → resume round trip: the thief, recomputing executions from the
  enabled-order indices, sees exactly the successor states the victim
  would have explored;
* the striped claim table is a partition of claims: no interleaving of
  claim attempts — from any number of claimants, in any order, with any
  duplication — loses a fingerprint or grants it twice.
"""

from __future__ import annotations

import pickle
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.statestore import shard_of
from repro.mp.semantics import apply_execution, enabled_executions
from repro.parallel.worksteal import StolenFrame, StripedClaimTable, pending_indices
from repro.protocols.multicast import MulticastConfig, build_multicast_quorum
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum
from repro.protocols.storage import StorageConfig, build_storage_quorum

PROTOCOLS = [
    build_paxos_quorum(PaxosConfig(2, 2, 1)),
    build_storage_quorum(StorageConfig(2, 1)),
    build_multicast_quorum(MulticastConfig(2, 1, 0, 1)),
]

protocol_strategy = st.sampled_from(PROTOCOLS)
walks = st.lists(st.integers(min_value=0, max_value=10_000), max_size=10)
# Real fingerprints are Python hashes, i.e. signed machine words.  The
# claim table keys on the 64-bit masked value, so ints outside this range
# alias (-1 and 2**64 - 1 share a key) and would falsify the exactly-once
# granting properties below with pairs no search can ever produce.
fingerprints = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


def random_walk(protocol, choices):
    """Follow a pseudo-random path selected by the list of choice indices."""
    state = protocol.initial_state()
    path = []
    for choice in choices:
        enabled = enabled_executions(state, protocol)
        if not enabled:
            break
        index = choice % len(enabled)
        path.append(index)
        state = apply_execution(state, enabled[index])
    return state, tuple(path)


class TestStolenFrameRoundTrip:
    @given(protocol_strategy, walks, st.integers(min_value=0, max_value=2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_successor_sets(self, protocol, choices, mask):
        state, path = random_walk(protocol, choices)
        enabled = enabled_executions(state, protocol)
        pending = tuple(
            index for index in range(len(enabled)) if (mask >> index) & 1
        )
        frame = StolenFrame(
            state=state,
            pending=pending,
            path=path,
            ancestors=(state.fingerprint(),),
        )
        restored = pickle.loads(pickle.dumps(frame))

        assert restored.pending == frame.pending
        assert restored.path == frame.path
        assert restored.ancestors == frame.ancestors
        assert restored.depth == len(path)
        assert restored.state == state
        # Same process => same hash seed: the fingerprint (and with it the
        # claim routing) must survive the trip, like a forked worker's.
        assert restored.state.fingerprint() == state.fingerprint()

        # The thief recomputes executions from the enabled order; every
        # pending index must denote the same successor on both sides.
        rebuilt_enabled = enabled_executions(restored.state, protocol)
        assert rebuilt_enabled == enabled
        for index in restored.pending:
            original = apply_execution(state, enabled[index])
            resumed = apply_execution(restored.state, rebuilt_enabled[index])
            assert resumed == original

    @given(protocol_strategy, walks)
    @settings(max_examples=30, deadline=None)
    def test_pending_indices_invert_execution_selection(self, protocol, choices):
        state, _ = random_walk(protocol, choices)
        enabled = enabled_executions(state, protocol)
        chosen = enabled[::2]
        indices = pending_indices(enabled, chosen)
        assert tuple(enabled[i] for i in indices) == chosen


class TestClaimPartition:
    @given(
        st.lists(fingerprints, max_size=60),
        st.randoms(use_true_random=False),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_interleaving_grants_each_claim_exactly_once(
        self, values, rng, stripes
    ):
        # Model an arbitrary steal schedule: every fingerprint is claimed
        # three times (three racing workers), in a shuffled global order.
        attempts = list(values) * 3
        rng.shuffle(attempts)
        table = StripedClaimTable(capacity=512, stripes=stripes)
        wins = {}
        for fingerprint in attempts:
            if table.add_fingerprint(fingerprint):
                wins[fingerprint] = wins.get(fingerprint, 0) + 1
        distinct = set(values)
        assert set(wins) == distinct
        assert all(count == 1 for count in wins.values())
        assert len(table) == len(distinct)
        for fingerprint in distinct:
            assert table.contains_fingerprint(fingerprint)

    @given(st.lists(fingerprints, min_size=1, max_size=40))
    @settings(max_examples=15, deadline=None)
    def test_concurrent_claimants_never_double_grant(self, values):
        table = StripedClaimTable(capacity=1024, stripes=4)
        grants = []
        grant_lock = threading.Lock()

        def claimant(order):
            local = []
            for fingerprint in order:
                if table.add_fingerprint(fingerprint):
                    local.append(fingerprint)
            with grant_lock:
                grants.extend(local)

        threads = [
            threading.Thread(target=claimant, args=(list(reversed(values)) if i % 2 else list(values),))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one grant per distinct fingerprint across all claimants.
        assert sorted(grants) == sorted(set(values))
        assert len(table) == len(set(values))

    @given(fingerprints, st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_stripe_routing_matches_the_shared_partition(self, fingerprint, stripes):
        table = StripedClaimTable(capacity=64 * stripes, stripes=stripes)
        assert table.stripe_of(fingerprint) == shard_of(fingerprint, stripes)
        table.add_fingerprint(fingerprint)
        sizes = table.stripe_sizes()
        assert sum(sizes) == 1
        assert sizes[table.stripe_of(fingerprint)] == 1
