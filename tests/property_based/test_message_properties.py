"""Property-based tests for message payload canonicalisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.message import Message, freeze_payload

field_names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
scalar_values = st.one_of(st.integers(-5, 5), st.text(max_size=3), st.booleans(), st.none())
payload_values = st.one_of(
    scalar_values,
    st.lists(scalar_values, max_size=3),
    st.dictionaries(field_names, scalar_values, max_size=3),
)
payloads = st.dictionaries(field_names, payload_values, max_size=4)


class TestPayloadCanonicalisation:
    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_messages_are_always_hashable(self, fields):
        message = Message.make("M", "a", "b", **fields)
        assert isinstance(hash(message), int)

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_field_round_trip(self, fields):
        message = Message.make("M", "a", "b", **fields)
        for name in fields:
            assert name in message

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_equality_independent_of_insertion_order(self, fields):
        reversed_fields = dict(reversed(list(fields.items())))
        assert Message.make("M", "a", "b", **fields) == Message.make(
            "M", "a", "b", **reversed_fields
        )

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_freeze_payload_is_idempotent_on_keys(self, fields):
        frozen = freeze_payload(fields)
        assert [name for name, _ in frozen] == sorted(fields)

    @given(payloads, payloads)
    @settings(max_examples=100, deadline=None)
    def test_distinct_payloads_give_distinct_messages(self, first, second):
        first_message = Message.make("M", "a", "b", **first)
        second_message = Message.make("M", "a", "b", **second)
        if freeze_payload(first) != freeze_payload(second):
            assert first_message != second_message
        else:
            assert first_message == second_message
