"""Property-based tests: a swarm walk is a pure function of (seed, index).

The determinism contract of the sampling backend: given the root seed and
the walk index, the walk's execution-index path is fixed — independent of
the visited filter's contents (it is coverage telemetry, never a pruning
structure), of which successor engine variant runs the walk, and therefore
of scheduling and worker count.  This is what makes swarm violations
bit-reproducible from ``(root_seed, walk_index)`` alone.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.plan import CheckPlan
from repro.protocols.multicast import (
    MulticastConfig,
    agreement_invariant,
    build_multicast_quorum,
)
from repro.swarm.filter import SwarmFilter
from repro.swarm.search import SwarmOutcomeStats, _make_graph, _run_one_walk
from repro.swarm.seeds import walk_stream_seed

MAX_DEPTH = 64


def make_graph(config, mode):
    plan = CheckPlan(backend="swarm", successors=mode)
    return _make_graph(
        build_multicast_quorum(config), agreement_invariant(),
        plan.search_config(),
    )


# Graphs are built once: walks mutate only the filter and stats they are
# handed, so sharing the graph across examples is exactly the production
# access pattern.
VIOLATING = MulticastConfig(2, 1, 2, 1)
CLEAN = MulticastConfig(2, 1, 0, 1)
GRAPHS = {
    (label, mode): make_graph(config, mode)
    for label, config in (("violating", VIOLATING), ("clean", CLEAN))
    for mode in ("object", "fast")
}


def walk(graph, root_seed, walk_index, visited=None):
    stats = SwarmOutcomeStats()
    if visited is None:
        visited = SwarmFilter(bits_log2=14)
    path = _run_one_walk(graph, walk_index, root_seed, MAX_DEPTH, visited, stats)
    return path, stats.steps


seeds = st.integers(min_value=0, max_value=2**32)
indices = st.integers(min_value=0, max_value=500)
labels = st.sampled_from(("violating", "clean"))


@given(labels, seeds, indices)
@settings(max_examples=60, deadline=None)
def test_walk_is_pure_in_seed_and_index(label, root_seed, walk_index):
    graph = GRAPHS[(label, "object")]
    first = walk(graph, root_seed, walk_index)
    second = walk(graph, root_seed, walk_index)
    assert first == second


@given(labels, seeds, indices)
@settings(max_examples=60, deadline=None)
def test_walk_ignores_filter_state(label, root_seed, walk_index):
    # A saturated filter must not steer the walk: pre-populate one filter
    # heavily and leave the other empty — identical paths either way.
    graph = GRAPHS[(label, "object")]
    polluted = SwarmFilter(bits_log2=14)
    for fingerprint in range(5_000):
        polluted.add(fingerprint)
    assert (walk(graph, root_seed, walk_index)[0]
            == walk(graph, root_seed, walk_index, visited=polluted)[0])


@given(labels, seeds, indices)
@settings(max_examples=40, deadline=None)
def test_fast_and_object_walkers_take_the_same_path(label, root_seed, walk_index):
    object_path, object_steps = walk(GRAPHS[(label, "object")], root_seed, walk_index)
    fast_path, fast_steps = walk(GRAPHS[(label, "fast")], root_seed, walk_index)
    assert object_path == fast_path
    assert object_steps == fast_steps


@given(seeds, indices)
@settings(max_examples=40, deadline=None)
def test_stream_seeds_never_collide_with_neighbours(root_seed, walk_index):
    window = [walk_stream_seed(root_seed, walk_index + offset) for offset in range(16)]
    assert len(set(window)) == 16
