"""Property tests of the packed fast path (ISSUE-5 satellite).

Two properties over *arbitrary reachable* states, driven by random walks
through the protocols' real transition relations:

* packed encode → decode → re-encode is the identity (same words, same
  accumulators, same fingerprint);
* the packed word-incremental hash equals the PR-1 object-graph hash on
  every transition of the walk — the invariant that lets fingerprint
  stores and cross-process claim tables interoperate between engines.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.compiler import FastSuccessorEngine
from repro.mp.semantics import SuccessorEngine
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry

#: The walked models; built once — the walks only read them.
PROTOCOLS = {
    "paxos-quorum": paxos_entry(2, 2, 1).quorum_model(),
    "multicast-quorum": multicast_entry(2, 1, 0, 1).quorum_model(),
    "storage-quorum": storage_entry(3, 1).quorum_model(),
    "storage-single": storage_entry(3, 1).single_model(),
}

#: Per-protocol engines, shared across examples: the memo tables are pure
#: caches, so reuse only makes the test stronger (a stale entry would
#: surface as a parity failure).
FAST = {name: FastSuccessorEngine(protocol) for name, protocol in PROTOCOLS.items()}
OBJ = {
    name: SuccessorEngine.for_search(protocol, stateful=True)
    for name, protocol in PROTOCOLS.items()
}

walks = st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=12)
protocol_names = st.sampled_from(sorted(PROTOCOLS))


@settings(max_examples=60, deadline=None)
@given(name=protocol_names, choices=walks)
def test_packed_hash_equals_object_hash_on_every_transition(name, choices):
    fast = FAST[name]
    obj = OBJ[name]
    state = obj.initial_state()
    packed = fast.initial_packed()
    assert packed[3] == state.fingerprint()
    for choice in choices:
        enabled_obj = obj.enabled(state)
        enabled_packed = fast.enabled_packed(packed)
        assert len(enabled_obj) == len(enabled_packed)
        if not enabled_obj:
            break
        index = choice % len(enabled_obj)
        assert fast.execution_of(enabled_packed[index]) == enabled_obj[index]
        state = obj.successor(state, enabled_obj[index])
        packed = fast.successor_packed(packed, enabled_packed[index])
        assert packed[3] == state.fingerprint()
        assert hash(fast.decode(packed)) == packed[3]


@settings(max_examples=60, deadline=None)
@given(name=protocol_names, choices=walks)
def test_encode_decode_reencode_round_trip(name, choices):
    fast = FAST[name]
    packed = fast.initial_packed()
    for choice in choices:
        enabled = fast.enabled_packed(packed)
        if not enabled:
            break
        packed = fast.successor_packed(packed, enabled[choice % len(enabled)])
    decoded = fast.decode(packed)
    again = fast.encode(decoded)
    assert again == packed
    # Decoding the re-encoding closes the loop on the object side too.
    assert fast.decode(again) == decoded
