"""Property-based tests: plan resolution never silently downgrades.

For *any* axis combination, resolving against the default registry either

* returns an engine whose declared capabilities support the plan, with every
  caller-pinned axis preserved verbatim (only ``backend="auto"`` is
  concretised), or
* raises a structured :class:`UnsupportedPlanError` that names the offending
  axis, quotes the requested value, and carries a nearest supported
  alternative that itself resolves.

There is no third outcome — in particular no silent rewriting of workers,
reduction or statefulness to make a plan fit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CheckPlan, UnsupportedPlanError, default_registry
from repro.engine.plan import BACKENDS, PLAN_AXES, REDUCTIONS, SHAPES, STORES

plan_axes = st.fixed_dictionaries(
    {
        "shape": st.sampled_from(SHAPES),
        "reduction": st.sampled_from(REDUCTIONS),
        "store": st.sampled_from(STORES),
        "backend": st.sampled_from(BACKENDS),
        "workers": st.integers(min_value=1, max_value=8),
        "stateful": st.booleans(),
    }
)


def build_plan(axes):
    """Construct a plan, funnelling construction-time rejections upward."""
    return CheckPlan(**axes)


@given(plan_axes)
@settings(max_examples=300)
def test_resolution_never_silently_downgrades(axes):
    registry = default_registry()
    try:
        plan = build_plan(axes)
    except UnsupportedPlanError as error:
        # Construction-time rejection (contradictory store/stateful): still
        # structured — axis named, alternative present.
        assert error.axis in PLAN_AXES
        assert error.alternative is not None
        return

    try:
        engine, resolved = registry.resolve(plan)
    except UnsupportedPlanError as error:
        assert error.axis in PLAN_AXES
        assert error.axis in str(error)
        # The error quotes the value that was actually requested.
        assert error.value == plan.axes()[error.axis]
        # The nearest supported alternative is a runnable plan.
        assert isinstance(error.alternative, CheckPlan)
        alt_engine, alt_resolved = registry.resolve(error.alternative)
        assert alt_engine.capabilities.supports(alt_resolved)
        return

    # Success: the engine genuinely supports the plan...
    assert engine.capabilities.supports(resolved)
    # ...and every axis the caller pinned survived resolution verbatim;
    # only the "auto" backend may have been concretised.
    for axis, requested in plan.axes().items():
        if axis == "backend" and plan.backend == "auto":
            assert resolved.backend in ("serial", "frontier", "worksteal")
            continue
        assert resolved.axes()[axis] == requested


@given(plan_axes)
@settings(max_examples=200)
def test_resolution_is_deterministic(axes):
    registry = default_registry()
    try:
        plan = build_plan(axes)
    except UnsupportedPlanError:
        return
    try:
        first = registry.resolve(plan)
    except UnsupportedPlanError as error:
        with_retry = None
        try:
            registry.resolve(plan)
        except UnsupportedPlanError as second_error:
            with_retry = second_error
        assert with_retry is not None
        assert with_retry.axis == error.axis
        assert with_retry.alternative == error.alternative
        return
    second = registry.resolve(plan)
    assert first[0] is second[0]
    assert first[1] == second[1]


@given(st.text(min_size=1, max_size=12))
@settings(max_examples=100)
def test_unknown_vocabulary_values_raise_structured_errors(value):
    for axis, vocabulary in (
        ("shape", SHAPES),
        ("reduction", REDUCTIONS),
        ("store", STORES),
        ("backend", BACKENDS),
    ):
        if value in vocabulary:
            continue
        try:
            CheckPlan(**{axis: value})
        except UnsupportedPlanError as error:
            assert error.axis == axis
            assert error.value == value
            assert error.alternative in vocabulary
        else:  # pragma: no cover - would be a validation hole
            raise AssertionError(f"{axis}={value!r} was accepted")
