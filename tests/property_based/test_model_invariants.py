"""Property-based tests on semantic invariants of the MP substrate.

These properties formalise facts the reduction algorithms rely on:
cross-process commutation of enabled executions, message conservation of
the successor function, and determinism of the enabled-set computation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.semantics import apply_execution, enabled_executions
from repro.protocols.multicast import MulticastConfig, build_multicast_quorum
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum
from repro.protocols.storage import StorageConfig, build_storage_quorum

PROTOCOLS = [
    build_paxos_quorum(PaxosConfig(2, 2, 1)),
    build_storage_quorum(StorageConfig(2, 1)),
    build_multicast_quorum(MulticastConfig(2, 1, 0, 1)),
]

protocol_strategy = st.sampled_from(PROTOCOLS)
walks = st.lists(st.integers(min_value=0, max_value=10_000), max_size=12)


def random_walk(protocol, choices):
    """Follow a pseudo-random path selected by the list of choice indices."""
    state = protocol.initial_state()
    for choice in choices:
        enabled = enabled_executions(state, protocol)
        if not enabled:
            break
        state = apply_execution(state, enabled[choice % len(enabled)])
    return state


class TestSemanticInvariants:
    @given(protocol_strategy, walks)
    @settings(max_examples=60, deadline=None)
    def test_enabled_set_computation_is_deterministic(self, protocol, choices):
        state = random_walk(protocol, choices)
        first = enabled_executions(state, protocol)
        second = enabled_executions(state, protocol)
        assert first == second

    @given(protocol_strategy, walks)
    @settings(max_examples=60, deadline=None)
    def test_successor_conserves_untouched_messages(self, protocol, choices):
        state = random_walk(protocol, choices)
        for execution in enabled_executions(state, protocol):
            successor = apply_execution(state, execution)
            # Every message that was pending and not consumed must survive.
            for message in state.network.distinct():
                expected = state.network.count(message)
                consumed = sum(1 for m in execution.messages if m == message)
                assert successor.network.count(message) >= expected - consumed

    @given(protocol_strategy, walks)
    @settings(max_examples=60, deadline=None)
    def test_only_executing_process_changes_local_state(self, protocol, choices):
        state = random_walk(protocol, choices)
        for execution in enabled_executions(state, protocol):
            successor = apply_execution(state, execution)
            for pid, local in state.locals:
                if pid != execution.process_id:
                    assert successor.local(pid) == local

    @given(protocol_strategy, walks)
    @settings(max_examples=40, deadline=None)
    def test_cross_process_executions_commute(self, protocol, choices):
        state = random_walk(protocol, choices)
        enabled = enabled_executions(state, protocol)
        for first in enabled:
            for second in enabled:
                if first.process_id == second.process_id:
                    continue
                spec_reads = (
                    first.transition.annotation.spec_reads
                    | second.transition.annotation.spec_reads
                )
                if spec_reads:
                    # Ghost snapshots may legitimately differ across orders.
                    continue
                one_way = apply_execution(apply_execution(state, first), second)
                other_way = apply_execution(apply_execution(state, second), first)
                assert one_way == other_way

    @given(protocol_strategy, walks)
    @settings(max_examples=60, deadline=None)
    def test_states_remain_hashable_along_walks(self, protocol, choices):
        state = random_walk(protocol, choices)
        assert isinstance(hash(state), int)
