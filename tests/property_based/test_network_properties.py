"""Property-based tests (hypothesis) for the network multiset."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.channel import Network
from repro.mp.message import Message

PROCESSES = ["p1", "p2", "p3"]
TYPES = ["A", "B"]


def message_strategy():
    return st.builds(
        lambda mtype, sender, recipient, tag: Message.make(mtype, sender, recipient, tag=tag),
        st.sampled_from(TYPES),
        st.sampled_from(PROCESSES),
        st.sampled_from(PROCESSES),
        st.integers(min_value=0, max_value=2),
    )


message_lists = st.lists(message_strategy(), max_size=8)


class TestMultisetLaws:
    @given(message_lists)
    @settings(max_examples=80, deadline=None)
    def test_length_counts_multiplicity(self, messages):
        assert len(Network.of(messages)) == len(messages)

    @given(message_lists)
    @settings(max_examples=80, deadline=None)
    def test_construction_is_order_insensitive(self, messages):
        assert Network.of(messages) == Network.of(list(reversed(messages)))
        assert hash(Network.of(messages)) == hash(Network.of(list(reversed(messages))))

    @given(message_lists, message_lists)
    @settings(max_examples=80, deadline=None)
    def test_add_then_remove_is_identity(self, base, extra):
        network = Network.of(base)
        assert network.add_all(extra).remove_all(extra) == network

    @given(message_lists, message_lists)
    @settings(max_examples=80, deadline=None)
    def test_add_is_commutative(self, first, second):
        assert Network.of(first).add_all(second) == Network.of(second).add_all(first)

    @given(message_lists)
    @settings(max_examples=80, deadline=None)
    def test_count_matches_list_count(self, messages):
        network = Network.of(messages)
        for message in messages:
            assert network.count(message) == messages.count(message)

    @given(message_lists)
    @settings(max_examples=80, deadline=None)
    def test_pending_for_partitions_by_recipient(self, messages):
        network = Network.of(messages)
        total_distinct = len(list(network.distinct()))
        per_recipient = sum(len(network.pending_for(pid)) for pid in PROCESSES)
        assert per_recipient == total_distinct

    @given(message_lists)
    @settings(max_examples=80, deadline=None)
    def test_iteration_is_sorted_and_stable(self, messages):
        network = Network.of(messages)
        keys = [message.sort_key() for message in network.distinct()]
        assert keys == sorted(keys)
