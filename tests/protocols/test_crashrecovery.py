"""Tests of the crash-recovery storage models — the first *cyclic* family.

CRASH consumes its trigger and re-arms RECOVER (and vice versa), so exactly
one of the pair is always pending and the state graph has genuine cycles:
the protocol never terminates.  That makes this family the canonical input
for the liveness engines and the reason it carries the
``cyclic_state_graph`` metadata flag.
"""

import pytest

from repro.checker import dfs_search, ndfs_search
from repro.fastpath.search import fast_ndfs_search
from repro.mp.semantics import apply_execution, enabled_executions
from repro.protocols.crashrecovery import (
    STORED_VALUE,
    CrashRecoveryConfig,
    build_crash_recovery_quorum,
    build_crash_recovery_single,
    durability_invariant,
    eventually_done,
    eventually_progress,
)


class TestConfig:
    def test_setting_label(self):
        assert CrashRecoveryConfig(2, 1).setting_label == "(2,1)"

    @pytest.mark.parametrize("replicas, majority", [(1, 1), (2, 2), (3, 2), (5, 3)])
    def test_majority(self, replicas, majority):
        assert CrashRecoveryConfig(replicas, min(1, replicas)).majority == majority

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            CrashRecoveryConfig(0, 0)
        with pytest.raises(ValueError):
            CrashRecoveryConfig(2, 3)

    def test_process_ids(self):
        config = CrashRecoveryConfig(3, 2)
        assert config.writer_id() == "writer"
        assert config.replica_ids() == ("rep1", "rep2", "rep3")
        assert config.crash_prone_ids() == ("rep1", "rep2")


class TestModelStructure:
    def test_quorum_model_quorum_transitions(self):
        protocol = build_crash_recovery_quorum(CrashRecoveryConfig(2, 1))
        assert protocol.transition("STORE_ACK@writer").is_quorum_transition
        assert protocol.transition("STORE@rep1").annotation.is_reply

    def test_single_model_is_single_message_only(self):
        protocol = build_crash_recovery_single(CrashRecoveryConfig(2, 1))
        assert all(t.is_single_message for t in protocol.transitions)

    @pytest.mark.parametrize(
        "builder", [build_crash_recovery_quorum, build_crash_recovery_single]
    )
    def test_metadata_declares_the_cyclic_state_graph(self, builder):
        protocol = builder(CrashRecoveryConfig(2, 1))
        assert protocol.metadata.get("cyclic_state_graph") is True

    @pytest.mark.parametrize(
        "builder", [build_crash_recovery_quorum, build_crash_recovery_single]
    )
    def test_crash_and_recover_re_arm_each_other(self, builder):
        # Fire CRASH@rep1, then RECOVER@rep1: the replica is back up and a
        # fresh CRASH is pending — the device that closes the state cycle.
        protocol = builder(CrashRecoveryConfig(2, 1))
        state = protocol.initial_state()
        crash = next(
            e for e in enabled_executions(state, protocol)
            if e.transition.name == "CRASH@rep1"
        )
        crashed = apply_execution(state, crash)
        assert not crashed.local("rep1").up
        assert crashed.local("rep1").ever_crashed
        recover = next(
            e for e in enabled_executions(crashed, protocol)
            if e.transition.name == "RECOVER@rep1"
        )
        recovered = apply_execution(crashed, recover)
        assert recovered.local("rep1").up
        assert any(
            e.transition.name == "CRASH@rep1"
            for e in enabled_executions(recovered, protocol)
        )

    def test_down_replicas_hold_stores_until_recovery(self):
        # A down replica's STORE is guard-disabled: the message stays
        # pending and is processed only after the replica recovers.
        protocol = build_crash_recovery_single(CrashRecoveryConfig(2, 1))
        state = protocol.initial_state()
        crash = next(
            e for e in enabled_executions(state, protocol)
            if e.transition.name == "CRASH@rep1"
        )
        state = apply_execution(state, crash)
        start = next(
            e for e in enabled_executions(state, protocol)
            if e.transition.name == "WRITE_START@writer"
        )
        state = apply_execution(state, start)
        names = {e.transition.name for e in enabled_executions(state, protocol)}
        assert "STORE@rep1" not in names
        assert "STORE@rep2" in names
        recover = next(
            e for e in enabled_executions(state, protocol)
            if e.transition.name == "RECOVER@rep1"
        )
        state = apply_execution(state, recover)
        names = {e.transition.name for e in enabled_executions(state, protocol)}
        assert "STORE@rep1" in names


class TestVerdicts:
    """Pinned verdicts and state counts for the (2,1) scale."""

    def test_durability_invariant_holds_quorum(self):
        result = dfs_search(
            build_crash_recovery_quorum(CrashRecoveryConfig(2, 1)),
            durability_invariant(),
        )
        assert result.verified
        assert result.statistics.states_visited == 18

    def test_durability_invariant_holds_single(self):
        result = dfs_search(
            build_crash_recovery_single(CrashRecoveryConfig(2, 1)),
            durability_invariant(),
        )
        assert result.verified
        assert result.statistics.states_visited == 30

    @pytest.mark.liveness
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_progress_liveness_holds_quorum(self, search):
        outcome = search(
            build_crash_recovery_quorum(CrashRecoveryConfig(2, 1)),
            eventually_progress(),
        )
        assert outcome.verified
        assert outcome.statistics.states_visited == 11

    @pytest.mark.liveness
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_progress_liveness_holds_single(self, search):
        outcome = search(
            build_crash_recovery_single(CrashRecoveryConfig(2, 1)),
            eventually_progress(),
        )
        assert outcome.verified
        assert outcome.statistics.states_visited == 19

    @pytest.mark.liveness
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_done_liveness_fails_with_a_lasso_quorum(self, search):
        # A scheduler that only ever alternates CRASH/RECOVER starves the
        # write forever; ◇done has a lasso counterexample.
        outcome = search(
            build_crash_recovery_quorum(CrashRecoveryConfig(2, 1)),
            eventually_done(),
        )
        assert not outcome.verified
        cx = outcome.counterexample
        assert cx.is_lasso
        assert cx.cycle_start == 4
        assert len(cx.steps) == 6

    @pytest.mark.liveness
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_done_liveness_fails_with_a_lasso_single(self, search):
        outcome = search(
            build_crash_recovery_single(CrashRecoveryConfig(2, 1)),
            eventually_done(),
        )
        assert not outcome.verified
        cx = outcome.counterexample
        assert cx.is_lasso
        assert cx.cycle_start == 5
        assert len(cx.steps) == 7

    @pytest.mark.liveness
    @pytest.mark.parametrize("search", [ndfs_search, fast_ndfs_search])
    def test_lasso_replay_is_deterministic(self, search):
        # Replay must use the protocol instance the search ran on (the
        # recorded Executions hold that build's TransitionSpecs).
        protocol = build_crash_recovery_quorum(CrashRecoveryConfig(2, 1))
        cx = search(protocol, eventually_done()).counterexample
        first = cx.replay(protocol)
        second = cx.replay(protocol)
        assert first == second
        assert first[-1] == first[cx.cycle_start]
        # No state on the lasso satisfies the goal.
        assert all(not state.local("writer").phase == "done" for state in first)
