"""Tests of the workload catalog used by the benchmark harness."""

import pytest

from repro.protocols.catalog import (
    default_catalog,
    entry_by_key,
    multicast_entry,
    paxos_entry,
    storage_entry,
)


class TestEntries:
    def test_paxos_entry_builds_both_models(self):
        entry = paxos_entry(2, 2, 1)
        assert entry.quorum_model().metadata["model"] == "quorum"
        assert entry.single_model().metadata["model"] == "single-message"
        assert not entry.expect_violation

    def test_faulty_paxos_entry_expects_violation(self):
        entry = paxos_entry(2, 3, 1, faulty=True)
        assert entry.expect_violation
        assert "Faulty" in entry.description

    def test_storage_entry_wrong_spec(self):
        entry = storage_entry(3, 2, wrong_specification=True)
        assert entry.expect_violation
        assert entry.invariant.name == "wrong-regularity"

    def test_storage_entry_correct_spec(self):
        entry = storage_entry(3, 1)
        assert not entry.expect_violation
        assert entry.invariant.name == "regularity"

    def test_multicast_entry_threshold_drives_expectation(self):
        assert not multicast_entry(3, 0, 1, 1).expect_violation
        assert multicast_entry(2, 1, 2, 1).expect_violation


class TestCatalog:
    @pytest.mark.parametrize("scale", ["small", "paper"])
    def test_catalog_keys_unique(self, scale):
        entries = default_catalog(scale)
        keys = [entry.key for entry in entries]
        assert len(keys) == len(set(keys))

    def test_catalog_covers_all_three_protocols(self):
        descriptions = " ".join(entry.description for entry in default_catalog("paper"))
        assert "Paxos" in descriptions
        assert "storage" in descriptions
        assert "Multicast" in descriptions

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            default_catalog("huge")

    def test_entry_by_key(self):
        entry = entry_by_key("storage-3-1")
        assert entry is not None
        assert entry.description.startswith("Regular storage")
        assert entry_by_key("does-not-exist") is None

    def test_paper_catalog_matches_paper_settings(self):
        descriptions = {entry.description for entry in default_catalog("paper")}
        assert "Paxos (2,3,1)" in descriptions
        assert "Echo Multicast (3,0,1,1)" in descriptions
        assert "Regular storage (3,2)" in descriptions
