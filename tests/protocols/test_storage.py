"""Tests of the regular storage models."""

import pytest

from repro.checker import ModelChecker, Strategy
from repro.mp.semantics import apply_execution, enabled_executions
from repro.protocols.storage import (
    INITIAL_VALUE,
    WRITTEN_VALUE,
    StorageConfig,
    base_object_monotonicity,
    build_storage_quorum,
    build_storage_single,
    regularity_invariant,
    wrong_regularity_invariant,
)


class TestConfig:
    def test_setting_label(self):
        assert StorageConfig(3, 2).setting_label == "(3,2)"

    @pytest.mark.parametrize("bases, majority", [(1, 1), (2, 2), (3, 2), (5, 3)])
    def test_majority(self, bases, majority):
        assert StorageConfig(bases, 1).majority == majority

    def test_invalid_setting_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(0, 1)

    def test_process_ids(self):
        config = StorageConfig(3, 2)
        assert config.writer_id() == "writer"
        assert config.base_ids() == ("base1", "base2", "base3")
        assert config.reader_ids() == ("reader1", "reader2")


class TestModelStructure:
    def test_quorum_model_quorum_transitions(self):
        protocol = build_storage_quorum(StorageConfig(3, 1))
        assert protocol.transition("STORE_ACK@writer").is_quorum_transition
        assert protocol.transition("VAL@reader1").is_quorum_transition
        assert protocol.transition("STORE@base1").annotation.is_reply
        assert protocol.transition("GET@base1").annotation.is_reply

    def test_single_model_is_single_message_only(self):
        protocol = build_storage_single(StorageConfig(3, 2))
        assert all(t.is_single_message for t in protocol.transitions)

    def test_reader_transitions_declare_spec_reads(self):
        protocol = build_storage_quorum(StorageConfig(3, 1))
        assert protocol.transition("READ_START@reader1").annotation.spec_reads == frozenset(
            {"writer"}
        )
        assert protocol.transition("VAL@reader1").annotation.spec_reads == frozenset({"writer"})

    def test_driver_triggers_write_and_reads(self):
        protocol = build_storage_quorum(StorageConfig(3, 2))
        recipients = sorted(m.recipient for m in protocol.driver_messages)
        assert recipients == ["reader1", "reader2", "writer"]


class TestBehaviour:
    def run_to_completion(self, protocol):
        state = protocol.initial_state()
        while True:
            enabled = enabled_executions(state, protocol)
            if not enabled:
                return state
            state = apply_execution(state, enabled[0])

    @pytest.mark.parametrize("builder", [build_storage_quorum, build_storage_single])
    def test_read_returns_a_register_value(self, builder):
        protocol = builder(StorageConfig(3, 1))
        final = self.run_to_completion(protocol)
        reader = final.local("reader1")
        assert reader.phase == "done"
        assert reader.returned in (INITIAL_VALUE, WRITTEN_VALUE)

    def test_write_eventually_completes(self):
        protocol = build_storage_quorum(StorageConfig(3, 1))
        final = self.run_to_completion(protocol)
        assert final.local("writer").phase == "done"
        stored = [final.local(f"base{i}").value for i in (1, 2, 3)]
        assert stored.count(WRITTEN_VALUE) >= 2


class TestVerification:
    @pytest.mark.parametrize("builder", [build_storage_quorum, build_storage_single])
    def test_regularity_holds(self, builder):
        protocol = builder(StorageConfig(3, 1))
        result = ModelChecker(protocol, regularity_invariant()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_base_monotonicity_holds(self):
        protocol = build_storage_quorum(StorageConfig(3, 1))
        result = ModelChecker(protocol, base_object_monotonicity()).run(Strategy.SPOR_NET)
        assert result.verified

    @pytest.mark.parametrize("builder", [build_storage_quorum, build_storage_single])
    def test_wrong_regularity_violated(self, builder):
        protocol = builder(StorageConfig(3, 1))
        result = ModelChecker(protocol, wrong_regularity_invariant()).run(Strategy.SPOR_NET)
        assert not result.verified
        violating_reader = result.counterexample.violating_state.local("reader1")
        assert violating_reader.returned == INITIAL_VALUE
        assert violating_reader.write_done_at_end

    def test_wrong_regularity_found_by_unreduced_search_too(self):
        protocol = build_storage_quorum(StorageConfig(2, 1))
        unreduced = ModelChecker(protocol, wrong_regularity_invariant()).run(Strategy.UNREDUCED)
        reduced = ModelChecker(protocol, wrong_regularity_invariant()).run(Strategy.SPOR_NET)
        assert not unreduced.verified and not reduced.verified

    def test_quorum_model_not_larger_than_single_message_model(self):
        config = StorageConfig(3, 1)
        quorum_result = ModelChecker(
            build_storage_quorum(config), regularity_invariant()
        ).run(Strategy.UNREDUCED)
        single_result = ModelChecker(
            build_storage_single(config), regularity_invariant()
        ).run(Strategy.UNREDUCED)
        assert (
            quorum_result.statistics.states_visited
            <= single_result.statistics.states_visited
        )
