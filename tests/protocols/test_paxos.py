"""Tests of the Paxos models (quorum, single-message, faulty)."""

import pytest

from repro.checker import ModelChecker, Strategy
from repro.mp.semantics import apply_execution, enabled_executions
from repro.protocols.paxos import (
    PaxosConfig,
    build_faulty_paxos_quorum,
    build_faulty_paxos_single,
    build_paxos_quorum,
    build_paxos_single,
    acceptor_consistency,
    chosen_value_validity,
    consensus_invariant,
)


class TestConfig:
    def test_setting_label(self):
        assert PaxosConfig(2, 3, 1).setting_label == "(2,3,1)"

    @pytest.mark.parametrize("acceptors, majority", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)])
    def test_majority(self, acceptors, majority):
        assert PaxosConfig(1, acceptors, 1).majority == majority

    def test_process_ids(self):
        config = PaxosConfig(2, 3, 1)
        assert config.proposer_ids() == ("proposer1", "proposer2")
        assert config.acceptor_ids() == ("acceptor1", "acceptor2", "acceptor3")
        assert config.learner_ids() == ("learner1",)

    def test_distinct_proposals(self):
        config = PaxosConfig(3, 3, 1)
        numbers = {config.proposal_number(i) for i in range(3)}
        values = {config.proposal_value(i) for i in range(3)}
        assert len(numbers) == 3 and len(values) == 3

    def test_invalid_setting_rejected(self):
        with pytest.raises(ValueError):
            PaxosConfig(0, 3, 1)


class TestModelStructure:
    def test_quorum_model_transition_inventory(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        names = protocol.transition_names()
        assert len(names) == 2 * 2 + 2 * 3 + 1
        assert protocol.transition("READ_REPL@proposer1").is_quorum_transition
        assert protocol.transition("ACCEPT@learner1").is_quorum_transition
        assert protocol.transition("READ@acceptor1").is_single_message

    def test_single_model_has_no_quorum_transitions(self):
        protocol = build_paxos_single(PaxosConfig(2, 3, 1))
        assert all(t.is_single_message for t in protocol.transitions)

    def test_driver_triggers_each_proposer(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 3, 1))
        recipients = [m.recipient for m in protocol.driver_messages]
        assert sorted(recipients) == ["proposer1", "proposer2"]

    def test_read_is_annotated_as_reply(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        assert protocol.transition("READ@acceptor1").annotation.is_reply

    def test_accept_is_visible(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        assert protocol.transition("ACCEPT@learner1").annotation.visible

    def test_metadata_describes_variant(self):
        quorum_model = build_paxos_quorum(PaxosConfig(1, 3, 1))
        single_model = build_paxos_single(PaxosConfig(1, 3, 1))
        assert quorum_model.metadata["model"] == "quorum"
        assert single_model.metadata["model"] == "single-message"


class TestBehaviour:
    def run_to_completion(self, protocol):
        state = protocol.initial_state()
        while True:
            enabled = enabled_executions(state, protocol)
            if not enabled:
                return state
            state = apply_execution(state, enabled[0])

    def test_single_proposer_run_learns_its_value(self):
        protocol = build_paxos_quorum(PaxosConfig(1, 3, 1))
        final = self.run_to_completion(protocol)
        assert final.local("learner1").learned == frozenset({"value1"})

    def test_single_message_model_also_learns(self):
        protocol = build_paxos_single(PaxosConfig(1, 3, 1))
        final = self.run_to_completion(protocol)
        assert final.local("learner1").learned == frozenset({"value1"})

    def test_acceptors_promise_monotonically(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 2, 1))
        final = self.run_to_completion(protocol)
        for pid in ("acceptor1", "acceptor2"):
            local = final.local(pid)
            assert local.promised_no >= local.accepted_no


class TestVerification:
    @pytest.mark.parametrize("builder", [build_paxos_quorum, build_paxos_single])
    def test_consensus_holds_in_small_settings(self, builder):
        protocol = builder(PaxosConfig(2, 2, 1))
        result = ModelChecker(protocol, consensus_invariant()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_validity_holds(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 2, 1))
        result = ModelChecker(protocol, chosen_value_validity()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_acceptor_consistency_holds(self):
        protocol = build_paxos_quorum(PaxosConfig(2, 2, 1))
        result = ModelChecker(protocol, acceptor_consistency()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_quorum_model_not_larger_than_single_message_model(self):
        config = PaxosConfig(2, 2, 1)
        invariant = consensus_invariant()
        quorum_result = ModelChecker(build_paxos_quorum(config), invariant).run(Strategy.UNREDUCED)
        single_result = ModelChecker(build_paxos_single(config), invariant).run(Strategy.UNREDUCED)
        assert (
            quorum_result.statistics.states_visited
            <= single_result.statistics.states_visited
        )


class TestFaultyPaxos:
    @pytest.mark.parametrize(
        "builder", [build_faulty_paxos_quorum, build_faulty_paxos_single]
    )
    def test_consensus_violated_at_paper_setting(self, builder):
        protocol = builder(PaxosConfig(2, 3, 1))
        result = ModelChecker(protocol, consensus_invariant()).run(Strategy.SPOR_NET)
        assert not result.verified
        learned = set()
        for pid, local in result.counterexample.violating_state.locals:
            if pid.startswith("learner"):
                learned |= set(local.learned)
        assert len(learned) > 1

    def test_counterexample_replays_through_semantics(self):
        protocol = build_faulty_paxos_quorum(PaxosConfig(2, 3, 1))
        result = ModelChecker(protocol, consensus_invariant()).run(Strategy.SPOR_NET)
        state = result.counterexample.initial_state
        for step in result.counterexample.steps:
            state = apply_execution(state, step.execution)
            assert state == step.state
        assert not consensus_invariant().holds_in(state, protocol)

    def test_faulty_model_metadata_flag(self):
        protocol = build_faulty_paxos_quorum(PaxosConfig(2, 3, 1))
        assert protocol.metadata["faulty_learners"] is True
        assert "faulty" in protocol.name
