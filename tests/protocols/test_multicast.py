"""Tests of the Echo Multicast models (honest and Byzantine behaviours)."""

import pytest

from repro.checker import ModelChecker, Strategy
from repro.mp.semantics import apply_execution, enabled_executions
from repro.protocols.multicast import (
    MulticastConfig,
    agreement_invariant,
    build_multicast_quorum,
    build_multicast_single,
    echo_uniqueness,
    honest_delivery_integrity,
)


class TestConfig:
    def test_paper_settings_parameters(self):
        setting = MulticastConfig(3, 0, 1, 1)
        assert setting.receivers_total == 4
        assert setting.assumed_faults == 1
        assert setting.echo_quorum == 3
        assert not setting.exceeds_threshold

    def test_no_byzantine_receiver_setting(self):
        setting = MulticastConfig(2, 1, 0, 1)
        assert setting.assumed_faults == 0
        assert setting.echo_quorum == 2
        assert not setting.exceeds_threshold

    def test_wrong_agreement_setting_exceeds_threshold(self):
        setting = MulticastConfig(2, 1, 2, 1)
        assert setting.assumed_faults == 1
        assert setting.exceeds_threshold

    def test_setting_label(self):
        assert MulticastConfig(3, 1, 1, 1).setting_label == "(3,1,1,1)"

    def test_equivocation_groups_cover_honest_receivers(self):
        setting = MulticastConfig(3, 0, 1, 1)
        group_x, group_y = setting.equivocation_groups()
        assert set(group_x) | set(group_y) == set(setting.honest_receiver_ids())
        assert not set(group_x) & set(group_y)

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            MulticastConfig(0, 1, 0, 1)
        with pytest.raises(ValueError):
            MulticastConfig(2, 0, 0, 0)


class TestModelStructure:
    def test_quorum_model_echo_transitions(self):
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 1, 1))
        assert protocol.transition("ECHO@initiator1").is_quorum_transition
        assert protocol.transition("ECHO_X@byz_initiator1").is_quorum_transition
        assert protocol.transition("ECHO_Y@byz_initiator1").is_quorum_transition
        assert protocol.transition("INIT@receiver1").annotation.is_reply

    def test_single_model_is_single_message_only(self):
        protocol = build_multicast_single(MulticastConfig(2, 1, 1, 1))
        assert all(t.is_single_message for t in protocol.transitions)

    def test_commit_is_visible(self):
        protocol = build_multicast_quorum(MulticastConfig(3, 0, 1, 1))
        assert protocol.transition("COMMIT@receiver1").annotation.visible


class TestBehaviour:
    def run_to_completion(self, protocol):
        state = protocol.initial_state()
        while True:
            enabled = enabled_executions(state, protocol)
            if not enabled:
                return state
            state = apply_execution(state, enabled[0])

    def test_honest_multicast_delivers_to_all(self):
        protocol = build_multicast_quorum(MulticastConfig(3, 1, 0, 0))
        final = self.run_to_completion(protocol)
        for pid in ("receiver1", "receiver2", "receiver3"):
            delivered = final.local(pid).delivered
            assert ("initiator1", "msg[initiator1]") in delivered

    def test_honest_receiver_echoes_once_per_initiator(self):
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 0, 1))
        final = self.run_to_completion(protocol)
        for pid in ("receiver1", "receiver2"):
            echoed_initiators = [initiator for initiator, _ in final.local(pid).echoed]
            assert len(echoed_initiators) == len(set(echoed_initiators))

    def test_byzantine_initiator_cannot_commit_both_within_threshold(self):
        protocol = build_multicast_quorum(MulticastConfig(3, 0, 1, 1))
        final = self.run_to_completion(protocol)
        assert len(final.local("byz_initiator1").committed) <= 1


class TestMessageLoss:
    """The lossy-channel fault model behind ``message_loss=True``."""

    def drop_transitions(self, protocol):
        return [
            spec.name for spec in protocol.transitions
            if spec.name.startswith("DROP_")
        ]

    def test_lossy_models_gain_drop_transitions_per_honest_receiver(self):
        config = MulticastConfig(2, 1, 0, 1, message_loss=True)
        for builder in (build_multicast_quorum, build_multicast_single):
            names = self.drop_transitions(builder(config))
            assert "DROP_INIT@receiver1" in names
            assert "DROP_COMMIT@receiver1" in names
            assert "DROP_INIT@receiver2" in names
            assert "DROP_COMMIT@receiver2" in names

    def test_default_models_have_no_drop_transitions(self):
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 0, 1))
        assert self.drop_transitions(protocol) == []

    def test_metadata_records_the_fault_model(self):
        lossy = build_multicast_quorum(MulticastConfig(2, 1, 0, 1, message_loss=True))
        plain = build_multicast_quorum(MulticastConfig(2, 1, 0, 1))
        assert lossy.metadata["message_loss"] is True
        assert plain.metadata["message_loss"] is False

    def test_drop_transitions_stay_visible_to_reduction(self):
        # Dropping a message changes what can ever be delivered; marking
        # the transitions visible keeps stubborn-set reduction conservative.
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 0, 1, message_loss=True))
        annotation = protocol.transition("DROP_INIT@receiver1").annotation
        assert annotation.visible

    def test_loss_only_removes_deliveries_agreement_still_holds(self):
        config = MulticastConfig(2, 1, 0, 1, message_loss=True)
        result = ModelChecker(
            build_multicast_quorum(config), agreement_invariant()
        ).run(Strategy.SPOR_NET)
        assert result.verified

    def test_loss_keeps_the_wrong_agreement_violation(self):
        config = MulticastConfig(2, 1, 2, 1, message_loss=True)
        result = ModelChecker(
            build_multicast_quorum(config), agreement_invariant()
        ).run(Strategy.UNREDUCED)
        assert not result.verified


class TestVerification:
    @pytest.mark.parametrize(
        "setting",
        [MulticastConfig(3, 0, 1, 1), MulticastConfig(2, 1, 0, 1)],
        ids=["(3,0,1,1)", "(2,1,0,1)"],
    )
    @pytest.mark.parametrize("builder", [build_multicast_quorum, build_multicast_single])
    def test_agreement_holds_within_threshold(self, setting, builder):
        result = ModelChecker(builder(setting), agreement_invariant()).run(Strategy.SPOR_NET)
        assert result.verified

    @pytest.mark.parametrize("builder", [build_multicast_quorum, build_multicast_single])
    def test_agreement_violated_beyond_threshold(self, builder):
        protocol = builder(MulticastConfig(2, 1, 2, 1))
        result = ModelChecker(protocol, agreement_invariant()).run(Strategy.SPOR_NET)
        assert not result.verified
        # The violating state shows two honest receivers delivering the two
        # conflicting messages of the Byzantine initiator.
        delivered = set()
        for pid in ("receiver1", "receiver2"):
            delivered |= {
                value
                for initiator, value in result.counterexample.violating_state.local(pid).delivered
                if initiator == "byz_initiator1"
            }
        assert len(delivered) == 2

    def test_delivery_integrity_holds(self):
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 1, 1))
        result = ModelChecker(protocol, honest_delivery_integrity()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_echo_uniqueness_holds(self):
        protocol = build_multicast_quorum(MulticastConfig(2, 1, 1, 1))
        result = ModelChecker(protocol, echo_uniqueness()).run(Strategy.SPOR_NET)
        assert result.verified

    def test_quorum_model_not_larger_than_single_message_model(self):
        setting = MulticastConfig(3, 0, 1, 1)
        quorum_result = ModelChecker(
            build_multicast_quorum(setting), agreement_invariant()
        ).run(Strategy.UNREDUCED)
        single_result = ModelChecker(
            build_multicast_single(setting), agreement_invariant()
        ).run(Strategy.UNREDUCED)
        assert (
            quorum_result.statistics.states_visited
            <= single_result.statistics.states_visited
        )
