"""Tests of the Section II-C interleaving blow-up formulas."""

import math

import pytest

from repro.analysis.blowup import (
    blowup_factor,
    blowup_lower_bound,
    interleaving_state_bound,
    paxos_blowup_bound,
    paxos_smallest_instance_example,
    paxos_transition_count,
    single_message_state_bound,
)
from repro.protocols.paxos import PaxosConfig, build_paxos_quorum


class TestBounds:
    @pytest.mark.parametrize("k, expected", [(0, 0), (1, 1), (2, 4), (3, 18), (4, 96)])
    def test_interleaving_bound_is_k_factorial_times_k(self, k, expected):
        assert interleaving_state_bound(k) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleaving_state_bound(-1)

    def test_single_message_bound_shifts_by_quorum_size(self):
        assert single_message_state_bound(3, 2) == interleaving_state_bound(5)

    @pytest.mark.parametrize("k, l", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 5)])
    def test_paper_inequality_factor_at_least_k_plus_l_squared(self, k, l):
        assert blowup_factor(k, l) >= blowup_lower_bound(k, l)

    def test_blowup_factor_requires_concurrency(self):
        with pytest.raises(ValueError):
            blowup_factor(0, 2)


class TestPaxosExample:
    def test_paper_quotes_169(self):
        example = paxos_smallest_instance_example()
        assert example.bound == 169

    def test_transition_count_matches_model(self):
        config = PaxosConfig(1, 3, 1)
        protocol = build_paxos_quorum(config)
        assert paxos_transition_count(config) == len(protocol.transitions)

    def test_blowup_bound_uses_process_count(self):
        config = PaxosConfig(1, 3, 1)
        transitions = paxos_transition_count(config)
        assert paxos_blowup_bound(config) == (transitions + 5) ** 2

    def test_bound_grows_with_setting(self):
        assert paxos_blowup_bound(PaxosConfig(2, 3, 1)) > paxos_blowup_bound(PaxosConfig(1, 3, 1))
