"""Degenerate-record arithmetic: no ZeroDivisionError, no NaN, no lies.

Sub-resolution timer reads (0.0 elapsed), zero-denominator hit rates and
missing fields must yield honest ``None``s in payloads and "n/a" in
renderings — never a crash or an infinite "speedup".
"""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import (
    AggregateRow,
    aggregate_records,
    bench_payload,
    render_aggregate,
    render_telemetry,
    result_record,
    safe_ratio,
)
from repro.checker.result import CheckResult, SearchStatistics


def make_record(states=100, seconds=1.0, complete=True, verified=True, **extra):
    result = CheckResult(
        protocol_name="p",
        property_name="inv",
        strategy="unreduced",
        verified=verified,
        complete=complete,
        statistics=SearchStatistics(
            states_visited=states, elapsed_seconds=seconds
        ),
    )
    record = result_record(result)
    record.update(extra)
    return record


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(10, 4) == 2.5

    @pytest.mark.parametrize("numerator, denominator", [
        (10, 0), (10, 0.0), (10, -1.0), (10, None), (None, 4), (None, None),
        ("oops", "nope"),
    ])
    def test_degenerate_inputs_yield_none(self, numerator, denominator):
        assert safe_ratio(numerator, denominator) is None


class TestAggregateRowSpeedup:
    def test_zero_parallel_seconds_yields_none_not_inf(self):
        row = AggregateRow(cell="c", model="quorum", strategy="s")
        row.best_seconds["serial"] = 1.0
        row.best_seconds["parallel[4]"] = 0.0
        assert row.speedup() is None

    def test_missing_sides_yield_none(self):
        row = AggregateRow(cell="c", model="quorum", strategy="s")
        assert row.speedup() is None
        row.best_seconds["serial"] = 1.0
        assert row.speedup() is None


class TestZeroElapsedRecords:
    def test_aggregate_and_render_survive_zero_elapsed(self):
        payloads = [
            bench_payload(
                "sweep",
                [
                    make_record(seconds=0.0, workers=1),
                    make_record(seconds=0.0, workers=4),
                ],
            )
        ]
        summary = aggregate_records(payloads)
        text = render_aggregate(summary)
        assert "inf" not in text and "nan" not in text
        # Zero-elapsed parallel best: the speedup column degrades to "-".
        (row,) = summary.rows
        assert row.speedup() is None

    def test_render_telemetry_survives_degenerate_records(self):
        # No telemetry block, zero elapsed, zero states: every derived
        # rate must degrade to n/a instead of dividing by zero.
        payloads = [
            bench_payload(
                "sweep",
                [make_record(states=0, seconds=0.0, workers=1)],
            )
        ]
        text = render_telemetry(payloads)
        assert text  # rendered something, did not raise

    def test_incomplete_record_aggregates_as_inconclusive(self):
        payloads = [
            bench_payload("sweep", [make_record(complete=False, workers=1)])
        ]
        text = render_aggregate(aggregate_records(payloads))
        assert "Inconclusive" in text
