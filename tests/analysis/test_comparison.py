"""Tests of the reduction-percentage helpers."""

from repro.analysis.comparison import compare_results, reduction_percentage
from repro.checker.result import CheckResult, SearchStatistics


def make_result(states, seconds, strategy="spor"):
    return CheckResult(
        protocol_name="p",
        property_name="q",
        strategy=strategy,
        verified=True,
        complete=True,
        statistics=SearchStatistics(states_visited=states, elapsed_seconds=seconds),
    )


class TestReductionPercentage:
    def test_half_saved(self):
        assert reduction_percentage(200, 100) == 50.0

    def test_no_saving(self):
        assert reduction_percentage(100, 100) == 0.0

    def test_negative_when_worse(self):
        assert reduction_percentage(100, 150) == -50.0

    def test_zero_baseline_is_zero(self):
        assert reduction_percentage(0, 10) == 0.0


class TestCompareResults:
    def test_percentages_and_labels(self):
        baseline = make_result(1000, 10.0, strategy="unreduced")
        improved = make_result(100, 2.0, strategy="spor")
        comparison = compare_results(baseline, improved)
        assert comparison.state_reduction_percent == 90.0
        assert comparison.time_reduction_percent == 80.0
        assert comparison.baseline_label == "unreduced"
        assert comparison.improved_label == "spor"

    def test_custom_labels(self):
        comparison = compare_results(
            make_result(10, 1.0), make_result(5, 0.5),
            baseline_label="no quorum", improved_label="quorum",
        )
        assert comparison.baseline_label == "no quorum"
        assert comparison.improved_label == "quorum"

    def test_summary_mentions_counts(self):
        comparison = compare_results(make_result(1000, 10.0), make_result(100, 2.0))
        summary = comparison.summary()
        assert "90%" in summary
        assert "1000" in summary and "100" in summary
