"""Tests of the paper-style table rendering."""

from repro.analysis.reporting import EvaluationTable, TableRow, format_count, format_duration
from repro.checker.result import CheckResult, SearchStatistics


def make_result(states, seconds):
    return CheckResult(
        protocol_name="p", property_name="q", strategy="spor",
        verified=True, complete=True,
        statistics=SearchStatistics(states_visited=states, elapsed_seconds=seconds),
    )


class TestFormatting:
    def test_format_duration_milliseconds(self):
        assert format_duration(0.25) == "250ms"

    def test_format_duration_seconds(self):
        assert format_duration(12.4) == "12s"

    def test_format_duration_minutes(self):
        assert format_duration(184) == "3m4s"

    def test_format_duration_hours(self):
        assert format_duration(9 * 3600 + 37 * 60) == "9h37m"

    def test_format_count_thousands_separator(self):
        assert format_count(2822764) == "2,822,764"


class TestEvaluationTable:
    def build_table(self):
        table = EvaluationTable(title="Table I", columns=["No quorum", "Quorum"])
        row = table.new_row("Paxos (2,3,1)", "consensus", "Verified")
        row.add_result("No quorum", make_result(500, 2.0))
        row.add_result("Quorum", make_result(200, 1.0))
        return table

    def test_render_contains_headers_and_values(self):
        text = self.build_table().render()
        assert "Table I" in text
        assert "No quorum states" in text
        assert "500" in text and "200" in text
        assert "Verified" in text

    def test_missing_cells_rendered_as_dash(self):
        table = EvaluationTable(title="T", columns=["A", "B"])
        table.new_row("X", "p", "CE").add_result("A", make_result(5, 0.1))
        assert "-" in table.render()

    def test_best_column_per_row(self):
        table = self.build_table()
        assert table.best_column_per_row() == {"Paxos (2,3,1)": "Quorum"}

    def test_best_column_handles_empty_rows(self):
        table = EvaluationTable(title="T", columns=["A"])
        table.add_row(TableRow(protocol="empty", property_name="p", outcome="Verified"))
        assert table.best_column_per_row() == {"empty": None}
