"""Unit tests for global states."""

from dataclasses import dataclass

import pytest

from repro.mp.channel import Network
from repro.mp.errors import MPError
from repro.mp.message import Message
from repro.mp.process import LocalState
from repro.mp.state import GlobalState


@dataclass(frozen=True)
class Counter(LocalState):
    value: int = 0


def make_state(values=(0, 0), messages=()):
    locals_ = [(f"p{i + 1}", Counter(value)) for i, value in enumerate(values)]
    return GlobalState(locals_, Network.of(messages))


class TestConstruction:
    def test_duplicate_process_ids_rejected(self):
        with pytest.raises(MPError):
            GlobalState([("p", Counter()), ("p", Counter())], Network.empty())

    def test_process_ids_order_preserved(self):
        state = make_state((1, 2))
        assert state.process_ids == ("p1", "p2")

    def test_locals_dict(self):
        state = make_state((1, 2))
        assert state.locals_dict() == {"p1": Counter(1), "p2": Counter(2)}


class TestQueries:
    def test_local_lookup(self):
        state = make_state((5, 7))
        assert state.local("p2") == Counter(7)

    def test_local_unknown_raises(self):
        with pytest.raises(KeyError):
            make_state().local("ghost")

    def test_network_property(self):
        message = Message.make("M", "p1", "p2")
        state = make_state(messages=[message])
        assert state.network.count(message) == 1


class TestUpdates:
    def test_with_local_replaces_only_target(self):
        state = make_state((1, 2))
        updated = state.with_local("p1", Counter(9))
        assert updated.local("p1") == Counter(9)
        assert updated.local("p2") == Counter(2)
        assert state.local("p1") == Counter(1)

    def test_with_local_same_value_returns_self(self):
        state = make_state((1, 2))
        assert state.with_local("p1", Counter(1)) is state

    def test_with_local_unknown_raises(self):
        with pytest.raises(KeyError):
            make_state().with_local("ghost", Counter())

    def test_with_network(self):
        state = make_state()
        message = Message.make("M", "p1", "p2")
        updated = state.with_network(Network.of([message]))
        assert len(updated.network) == 1
        assert len(state.network) == 0

    def test_with_updates_changes_both(self):
        state = make_state((1, 2))
        message = Message.make("M", "p1", "p2")
        updated = state.with_updates("p2", Counter(3), Network.of([message]))
        assert updated.local("p2") == Counter(3)
        assert len(updated.network) == 1

    def test_with_updates_unknown_process_raises(self):
        with pytest.raises(KeyError):
            make_state().with_updates("ghost", Counter(), Network.empty())


class TestEqualityAndHashing:
    def test_equal_states_hash_equal(self):
        assert make_state((1, 2)) == make_state((1, 2))
        assert hash(make_state((1, 2))) == hash(make_state((1, 2)))

    def test_states_differing_in_local_not_equal(self):
        assert make_state((1, 2)) != make_state((1, 3))

    def test_states_differing_in_network_not_equal(self):
        message = Message.make("M", "p1", "p2")
        assert make_state() != make_state(messages=[message])

    def test_not_equal_to_other_types(self):
        assert make_state() != 42

    def test_usable_as_set_member(self):
        states = {make_state((1, 2)), make_state((1, 2)), make_state((2, 1))}
        assert len(states) == 2


class TestDescribe:
    def test_describe_lists_processes(self):
        text = make_state((1, 2)).describe()
        assert "p1" in text and "p2" in text

    def test_describe_lists_messages(self):
        message = Message.make("HELLO", "p1", "p2")
        text = make_state(messages=[message]).describe()
        assert "HELLO" in text

    def test_describe_empty_network(self):
        assert "(none)" in make_state().describe()
