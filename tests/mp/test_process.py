"""Unit tests for process declarations and the LocalState helper base class."""

from dataclasses import dataclass

import pytest

from repro.mp.process import LocalState, ProcessDecl


@dataclass(frozen=True)
class Sample(LocalState):
    phase: str = "idle"
    count: int = 0


class NotADataclass(LocalState):
    """LocalState subclass that forgot the @dataclass decorator."""


class TestLocalState:
    def test_update_returns_modified_copy(self):
        original = Sample()
        updated = original.update(phase="busy", count=2)
        assert updated == Sample(phase="busy", count=2)
        assert original == Sample()

    def test_update_with_no_changes_is_equal_copy(self):
        original = Sample(phase="busy")
        assert original.update() == original

    def test_update_requires_dataclass(self):
        with pytest.raises(TypeError):
            NotADataclass().update(phase="busy")

    def test_field_names_in_declaration_order(self):
        assert Sample().field_names() == ("phase", "count")

    def test_field_names_requires_dataclass(self):
        with pytest.raises(TypeError):
            NotADataclass().field_names()

    def test_instances_are_hashable(self):
        assert len({Sample(), Sample(), Sample(count=1)}) == 2


class TestProcessDecl:
    def test_valid_declaration(self):
        decl = ProcessDecl("acceptor1", "acceptor", Sample())
        assert decl.pid == "acceptor1"
        assert decl.ptype == "acceptor"
        assert decl.initial_state == Sample()

    def test_declarations_are_hashable(self):
        first = ProcessDecl("p", "t", Sample())
        second = ProcessDecl("p", "t", Sample())
        assert first == second
        assert len({first, second}) == 1
