"""Unit tests for the network multiset."""

import pytest

from repro.mp.channel import Network
from repro.mp.message import Message


def msg(mtype="M", sender="a", recipient="b", **fields):
    return Message.make(mtype, sender, recipient, **fields)


class TestConstruction:
    def test_empty_network(self):
        network = Network.empty()
        assert len(network) == 0
        assert not network

    def test_of_messages(self):
        network = Network.of([msg(x=1), msg(x=2)])
        assert len(network) == 2

    def test_duplicates_are_counted(self):
        network = Network.of([msg(), msg()])
        assert len(network) == 2
        assert network.count(msg()) == 2

    def test_zero_or_negative_counts_dropped(self):
        network = Network([(msg(), 0), (msg(x=1), -2)])
        assert len(network) == 0

    def test_items_are_deterministic(self):
        first = Network.of([msg(x=2), msg(x=1)])
        second = Network.of([msg(x=1), msg(x=2)])
        assert first.items == second.items


class TestQueries:
    def test_count_absent_message_is_zero(self):
        assert Network.empty().count(msg()) == 0

    def test_iter_repeats_by_multiplicity(self):
        network = Network.of([msg(), msg(), msg(x=1)])
        assert len(list(network)) == 3

    def test_distinct_ignores_multiplicity(self):
        network = Network.of([msg(), msg(), msg(x=1)])
        assert len(list(network.distinct())) == 2

    def test_pending_for_filters_recipient(self):
        network = Network.of([msg(recipient="b"), msg(recipient="c")])
        assert len(network.pending_for("b")) == 1

    def test_pending_for_filters_type(self):
        network = Network.of([msg(mtype="X"), msg(mtype="Y")])
        assert len(network.pending_for("b", mtype="X")) == 1

    def test_pending_for_filters_sender(self):
        network = Network.of([msg(sender="a"), msg(sender="z")])
        assert len(network.pending_for("b", sender="z")) == 1

    def test_channel_view(self):
        network = Network.of([msg(sender="a", recipient="b"), msg(sender="c", recipient="b")])
        assert len(network.channel("a", "b")) == 1

    def test_senders_to(self):
        network = Network.of([msg(sender="a"), msg(sender="c"), msg(sender="a", x=2)])
        assert network.senders_to("b") == ("a", "c")

    def test_senders_to_with_type_filter(self):
        network = Network.of([msg(sender="a", mtype="X"), msg(sender="c", mtype="Y")])
        assert network.senders_to("b", mtype="X") == ("a",)


class TestUpdates:
    def test_add_all_returns_new_network(self):
        original = Network.empty()
        updated = original.add_all([msg()])
        assert len(original) == 0
        assert len(updated) == 1

    def test_add_all_empty_is_identity(self):
        network = Network.of([msg()])
        assert network.add_all([]) is network

    def test_remove_all(self):
        network = Network.of([msg(), msg(x=1)])
        remaining = network.remove_all([msg()])
        assert len(remaining) == 1
        assert remaining.count(msg()) == 0

    def test_remove_one_of_duplicates(self):
        network = Network.of([msg(), msg()])
        remaining = network.remove_all([msg()])
        assert remaining.count(msg()) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Network.empty().remove_all([msg()])

    def test_remove_more_than_present_raises(self):
        network = Network.of([msg()])
        with pytest.raises(KeyError):
            network.remove_all([msg(), msg()])

    def test_remove_all_empty_is_identity(self):
        network = Network.of([msg()])
        assert network.remove_all([]) is network


class TestEqualityAndHashing:
    def test_equal_networks_hash_equal(self):
        first = Network.of([msg(), msg(x=1)])
        second = Network.of([msg(x=1), msg()])
        assert first == second
        assert hash(first) == hash(second)

    def test_different_multiplicity_not_equal(self):
        assert Network.of([msg()]) != Network.of([msg(), msg()])

    def test_not_equal_to_other_types(self):
        assert Network.empty() != "network"

    def test_repr_mentions_messages(self):
        network = Network.of([msg(), msg()])
        assert "x2" in repr(network)
