"""Unit tests for protocol definitions."""

import pytest

from repro.mp.builder import ProtocolBuilder
from repro.mp.errors import ProtocolDefinitionError
from repro.mp.message import Message, driver_message
from repro.mp.process import ProcessDecl
from repro.mp.protocol import Protocol
from repro.mp.transition import TransitionSpec

from ..conftest import CollectorState, PingState, PongState, build_ping_pong, build_vote_collection


def noop_action(local, _messages, _ctx):
    return local


def make_transition(name="T", process_id="ping", message_type="M", **kwargs):
    return TransitionSpec(
        name=name, process_id=process_id, message_type=message_type,
        action=noop_action, **kwargs,
    )


def two_processes():
    return (
        ProcessDecl("ping", "pinger", PingState()),
        ProcessDecl("pong", "ponger", PongState()),
    )


class TestValidation:
    def test_duplicate_process_ids_rejected(self):
        processes = (
            ProcessDecl("p", "x", PingState()),
            ProcessDecl("p", "x", PingState()),
        )
        with pytest.raises(ProtocolDefinitionError):
            Protocol("bad", processes, ())

    def test_duplicate_transition_names_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            Protocol("bad", two_processes(), (make_transition(), make_transition()))

    def test_transition_of_unknown_process_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            Protocol("bad", two_processes(), (make_transition(process_id="ghost"),))

    def test_unknown_quorum_peers_rejected(self):
        transition = make_transition(quorum_peers=frozenset({"ghost"}))
        with pytest.raises(ProtocolDefinitionError):
            Protocol("bad", two_processes(), (transition,))

    def test_driver_allowed_as_quorum_peer(self):
        transition = make_transition(quorum_peers=frozenset({"driver"}))
        protocol = Protocol("ok", two_processes(), (transition,))
        assert protocol.transition("T").quorum_peers == frozenset({"driver"})

    def test_driver_message_to_unknown_process_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            Protocol(
                "bad", two_processes(), (make_transition(),),
                driver_messages=(driver_message("M", "ghost"),),
            )

    def test_unhashable_initial_state_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessDecl("p", "x", {"not": "hashable"})

    def test_empty_pid_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessDecl("", "x", PingState())

    def test_empty_ptype_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessDecl("p", "", PingState())


class TestLookups:
    def test_process_ids(self, ping_pong):
        assert ping_pong.process_ids == ("ping", "pong")

    def test_process_lookup(self, ping_pong):
        assert ping_pong.process("ping").ptype == "pinger"

    def test_process_lookup_unknown(self, ping_pong):
        with pytest.raises(KeyError):
            ping_pong.process("ghost")

    def test_processes_of_type(self, vote_collection):
        voters = vote_collection.processes_of_type("voter")
        assert len(voters) == 3
        assert all(process.ptype == "voter" for process in voters)

    def test_transitions_of_process(self, ping_pong):
        names = [t.name for t in ping_pong.transitions_of("pong")]
        assert names == ["PING@pong"]

    def test_transition_lookup(self, ping_pong):
        assert ping_pong.transition("PONG@ping").process_id == "ping"

    def test_transition_lookup_unknown(self, ping_pong):
        with pytest.raises(KeyError):
            ping_pong.transition("MISSING")

    def test_transition_names(self, ping_pong):
        assert set(ping_pong.transition_names()) == {"START@ping", "PING@pong", "PONG@ping"}

    def test_transitions_by_base_name_groups_unrefined(self, ping_pong):
        grouped = ping_pong.transitions_by_base_name()
        assert set(grouped) == {"START@ping", "PING@pong", "PONG@ping"}
        assert all(len(specs) == 1 for specs in grouped.values())


class TestInitialState:
    def test_initial_state_has_all_processes(self, vote_collection):
        state = vote_collection.initial_state()
        assert set(state.process_ids) == set(vote_collection.process_ids)

    def test_initial_state_contains_driver_messages(self, vote_collection):
        state = vote_collection.initial_state()
        assert len(state.network) == 3  # one CAST trigger per voter

    def test_initial_local_states(self, vote_collection):
        state = vote_collection.initial_state()
        assert state.local("collector") == CollectorState()


class TestDerivation:
    def test_with_transitions_replaces_set(self, ping_pong):
        only_ping = [ping_pong.transition("PING@pong")]
        derived = ping_pong.with_transitions(only_ping, name="reduced")
        assert derived.name == "reduced"
        assert derived.transition_names() == ("PING@pong",)
        assert len(ping_pong.transitions) == 3

    def test_with_transitions_keeps_name_by_default(self, ping_pong):
        derived = ping_pong.with_transitions(ping_pong.transitions)
        assert derived.name == ping_pong.name

    def test_with_transitions_merges_metadata(self, ping_pong):
        derived = ping_pong.with_transitions(
            ping_pong.transitions, metadata_updates={"refinement": "none"}
        )
        assert derived.metadata["refinement"] == "none"

    def test_describe_mentions_processes_and_transitions(self, vote_collection):
        text = vote_collection.describe()
        assert "collector" in text
        assert "VOTE@collector" in text
        assert "quorum" in text


class TestBuilderErrors:
    def test_duplicate_process(self):
        builder = ProtocolBuilder("x")
        builder.add_process("p", "t", PingState())
        with pytest.raises(ProtocolDefinitionError):
            builder.add_process("p", "t", PingState())

    def test_duplicate_transition(self):
        builder = ProtocolBuilder("x")
        builder.add_process("p", "t", PingState())
        builder.add_transition("T", "p", "M", noop_action)
        with pytest.raises(ProtocolDefinitionError):
            builder.add_transition("T", "p", "M", noop_action)

    def test_unknown_possible_senders_rejected_at_build(self):
        builder = ProtocolBuilder("x")
        builder.add_process("p", "t", PingState())
        builder.add_spec(
            make_transition(process_id="p").with_annotation(
                possible_senders=frozenset({"ghost"})
            )
        )
        with pytest.raises(ProtocolDefinitionError):
            builder.build()

    def test_process_ids_filter_by_type(self):
        builder = ProtocolBuilder("x")
        builder.add_process("a", "alpha", PingState())
        builder.add_process("b", "beta", PingState())
        assert builder.process_ids("alpha") == ("a",)
        assert builder.process_ids() == ("a", "b")

    def test_builders_produce_expected_fixture_protocols(self):
        assert len(build_ping_pong(3).driver_messages) == 3
        assert len(build_vote_collection(4, 2).processes) == 5
