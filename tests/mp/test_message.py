"""Unit tests for messages and payload canonicalisation."""

import pytest

from repro.mp.errors import MessageError
from repro.mp.message import DRIVER, Message, driver_message, freeze_payload


class TestMessageConstruction:
    def test_make_builds_sorted_payload(self):
        message = Message.make("READ", "p1", "a1", zeta=1, alpha=2)
        assert message.payload == (("alpha", 2), ("zeta", 1))

    def test_make_without_fields_has_empty_payload(self):
        message = Message.make("PING", "a", "b")
        assert message.payload == ()

    def test_messages_are_hashable(self):
        first = Message.make("READ", "p1", "a1", n=1)
        second = Message.make("READ", "p1", "a1", n=1)
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_equal_payload_different_order_is_equal(self):
        first = Message.make("M", "a", "b", x=1, y=2)
        second = Message.make("M", "a", "b", y=2, x=1)
        assert first == second

    def test_different_payload_not_equal(self):
        first = Message.make("M", "a", "b", x=1)
        second = Message.make("M", "a", "b", x=2)
        assert first != second

    def test_unhashable_payload_rejected(self):
        with pytest.raises(MessageError):
            Message.make("M", "a", "b", bad=bytearray(b"mutable"))


class TestPayloadFreezing:
    def test_list_payload_becomes_tuple(self):
        message = Message.make("M", "a", "b", items=[1, 2, 3])
        assert message["items"] == (1, 2, 3)

    def test_nested_list_payload(self):
        message = Message.make("M", "a", "b", items=[[1], [2]])
        assert message["items"] == ((1,), (2,))

    def test_set_payload_becomes_frozenset(self):
        message = Message.make("M", "a", "b", items={1, 2})
        assert message["items"] == frozenset({1, 2})

    def test_dict_payload_becomes_sorted_pairs(self):
        frozen = freeze_payload({"outer": {"b": 2, "a": 1}})
        assert frozen == (("outer", (("a", 1), ("b", 2))),)


class TestMessageAccessors:
    def test_getitem_returns_field(self):
        message = Message.make("READ", "p1", "a1", proposal_no=7)
        assert message["proposal_no"] == 7

    def test_getitem_missing_raises_keyerror(self):
        message = Message.make("READ", "p1", "a1")
        with pytest.raises(KeyError):
            message["missing"]

    def test_get_returns_default_for_missing(self):
        message = Message.make("READ", "p1", "a1")
        assert message.get("missing", 42) == 42

    def test_contains(self):
        message = Message.make("READ", "p1", "a1", proposal_no=7)
        assert "proposal_no" in message
        assert "other" not in message

    def test_fields_returns_dict_copy(self):
        message = Message.make("READ", "p1", "a1", proposal_no=7, value="x")
        assert message.fields() == {"proposal_no": 7, "value": "x"}

    def test_channel_is_sender_recipient_pair(self):
        message = Message.make("READ", "p1", "a1")
        assert message.channel() == ("p1", "a1")

    def test_describe_mentions_type_and_endpoints(self):
        message = Message.make("READ", "p1", "a1", n=1)
        text = message.describe()
        assert "READ" in text and "p1" in text and "a1" in text

    def test_sort_key_is_total_even_with_mixed_payload_types(self):
        first = Message.make("M", "a", "b", v=1)
        second = Message.make("M", "a", "b", v="text")
        assert sorted([first, second], key=Message.sort_key)


class TestDriverMessages:
    def test_driver_message_sender(self):
        message = driver_message("PROPOSE", "proposer1")
        assert message.sender == DRIVER
        assert message.recipient == "proposer1"
        assert message.mtype == "PROPOSE"

    def test_driver_message_payload(self):
        message = driver_message("START", "p", round=3)
        assert message["round"] == 3
