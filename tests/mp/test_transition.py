"""Unit tests for transition specifications, quorum specs and annotations."""

import pytest

from repro.mp.errors import QuorumSpecificationError, TransitionExecutionError
from repro.mp.message import Message
from repro.mp.transition import (
    ActionContext,
    Execution,
    LporAnnotation,
    QuorumKind,
    QuorumSpec,
    SendSpec,
    TransitionSpec,
    exact_quorum,
    majority_of,
    single_message,
)


def noop_action(local, _messages, _ctx):
    return local


class TestQuorumSpec:
    def test_single_message_spec(self):
        spec = single_message()
        assert spec.kind is QuorumKind.SINGLE
        assert spec.size == 1
        assert not spec.is_quorum

    def test_exact_quorum_spec(self):
        spec = exact_quorum(3)
        assert spec.kind is QuorumKind.EXACT
        assert spec.size == 3
        assert spec.is_quorum

    def test_exact_quorum_of_one_is_single(self):
        assert exact_quorum(1).kind is QuorumKind.SINGLE

    def test_nonpositive_size_rejected(self):
        with pytest.raises(QuorumSpecificationError):
            QuorumSpec(QuorumKind.EXACT, 0)

    def test_single_with_other_size_rejected(self):
        with pytest.raises(QuorumSpecificationError):
            QuorumSpec(QuorumKind.SINGLE, 2)

    @pytest.mark.parametrize(
        "population, expected",
        [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4), (10, 6)],
    )
    def test_majority_of(self, population, expected):
        assert majority_of(population) == expected


class TestTransitionSpec:
    def test_missing_action_rejected(self):
        with pytest.raises(TransitionExecutionError):
            TransitionSpec(name="T", process_id="p", message_type="M")

    def test_quorum_peers_size_must_match_exact_quorum(self):
        with pytest.raises(QuorumSpecificationError):
            TransitionSpec(
                name="T",
                process_id="p",
                message_type="M",
                quorum=exact_quorum(2),
                quorum_peers=frozenset({"a", "b", "c"}),
                action=noop_action,
            )

    def test_quorum_peers_allowed_for_single_message(self):
        spec = TransitionSpec(
            name="T",
            process_id="p",
            message_type="M",
            quorum_peers=frozenset({"a"}),
            action=noop_action,
        )
        assert spec.quorum_peers == frozenset({"a"})

    def test_is_quorum_transition_classification(self):
        quorum_spec = TransitionSpec(
            name="Q", process_id="p", message_type="M",
            quorum=exact_quorum(2), action=noop_action,
        )
        single_spec = TransitionSpec(
            name="S", process_id="p", message_type="M", action=noop_action,
        )
        assert quorum_spec.is_quorum_transition and not quorum_spec.is_single_message
        assert single_spec.is_single_message and not single_spec.is_quorum_transition

    def test_base_name_of_refined_transition(self):
        spec = TransitionSpec(
            name="T__a_b", process_id="p", message_type="M",
            action=noop_action, refined_from="T",
        )
        assert spec.is_refined
        assert spec.base_name == "T"

    def test_base_name_of_unrefined_transition(self):
        spec = TransitionSpec(name="T", process_id="p", message_type="M", action=noop_action)
        assert not spec.is_refined
        assert spec.base_name == "T"

    def test_effective_senders_prefers_quorum_peers(self):
        spec = TransitionSpec(
            name="T", process_id="p", message_type="M", action=noop_action,
            quorum_peers=frozenset({"a"}),
            annotation=LporAnnotation(possible_senders=frozenset({"a", "b"})),
        )
        assert spec.effective_senders() == frozenset({"a"})

    def test_effective_senders_falls_back_to_annotation(self):
        spec = TransitionSpec(
            name="T", process_id="p", message_type="M", action=noop_action,
            annotation=LporAnnotation(possible_senders=frozenset({"a", "b"})),
        )
        assert spec.effective_senders() == frozenset({"a", "b"})

    def test_effective_senders_none_when_unknown(self):
        spec = TransitionSpec(name="T", process_id="p", message_type="M", action=noop_action)
        assert spec.effective_senders() is None

    def test_with_annotation_replaces_fields(self):
        spec = TransitionSpec(name="T", process_id="p", message_type="M", action=noop_action)
        updated = spec.with_annotation(priority=5, visible=True)
        assert updated.annotation.priority == 5
        assert updated.annotation.visible
        assert spec.annotation.priority == 0

    def test_repr_mentions_peers(self):
        spec = TransitionSpec(
            name="T", process_id="p", message_type="M", action=noop_action,
            quorum_peers=frozenset({"a"}),
        )
        assert "peers" in repr(spec)

    def test_default_guard_is_true(self):
        spec = TransitionSpec(name="T", process_id="p", message_type="M", action=noop_action)
        assert spec.guard(None, ()) is True


class TestActionContext:
    def test_send_queues_message_from_self(self):
        ctx = ActionContext("p1")
        ctx.send("p2", "M", x=1)
        assert ctx.outbox == (Message.make("M", "p1", "p2", x=1),)

    def test_send_message_rejects_foreign_sender(self):
        ctx = ActionContext("p1")
        with pytest.raises(TransitionExecutionError):
            ctx.send_message(Message.make("M", "p2", "p3"))

    def test_send_message_accepts_own_sender(self):
        ctx = ActionContext("p1")
        message = Message.make("M", "p1", "p2")
        ctx.send_message(message)
        assert ctx.outbox == (message,)

    def test_spec_read_requires_declaration(self):
        ctx = ActionContext("p1", spec_view={"p2": "state"}, spec_reads=frozenset())
        with pytest.raises(TransitionExecutionError):
            ctx.spec_read("p2")

    def test_spec_read_returns_declared_process_state(self):
        ctx = ActionContext("p1", spec_view={"p2": "state"}, spec_reads=frozenset({"p2"}))
        assert ctx.spec_read("p2") == "state"

    def test_spec_read_unknown_process(self):
        ctx = ActionContext("p1", spec_view={}, spec_reads=frozenset({"p2"}))
        with pytest.raises(TransitionExecutionError):
            ctx.spec_read("p2")

    def test_outbox_preserves_send_order(self):
        ctx = ActionContext("p1")
        ctx.send("a", "M1")
        ctx.send("b", "M2")
        assert [m.mtype for m in ctx.outbox] == ["M1", "M2"]


class TestExecution:
    def test_senders_of_execution(self):
        spec = TransitionSpec(
            name="T", process_id="p", message_type="M",
            quorum=exact_quorum(2), action=noop_action,
        )
        messages = (
            Message.make("M", "a", "p"),
            Message.make("M", "b", "p"),
        )
        execution = Execution(spec, messages)
        assert execution.senders == frozenset({"a", "b"})
        assert execution.process_id == "p"

    def test_describe_mentions_transition_and_messages(self):
        spec = TransitionSpec(name="T", process_id="p", message_type="M", action=noop_action)
        execution = Execution(spec, (Message.make("M", "a", "p"),))
        text = execution.describe()
        assert "T" in text and "M" in text


class TestSendSpec:
    def test_defaults(self):
        spec = SendSpec("M")
        assert spec.recipients is None
        assert not spec.to_senders_only

    def test_annotation_defaults(self):
        annotation = LporAnnotation()
        assert annotation.sends == ()
        assert annotation.possible_senders is None
        assert not annotation.is_reply
        assert not annotation.visible
        assert annotation.spec_reads == frozenset()
