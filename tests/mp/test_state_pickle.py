"""Pickling of global states and networks across process boundaries.

The parallel search ships states between workers; the compact ``__reduce__``
of :class:`GlobalState` must preserve value equality and the fingerprint
(within one hash seed), rebuild the shared-index invariant, and keep the
network canonical.
"""

from __future__ import annotations

import pickle

from repro.mp.channel import Network
from repro.mp.message import Message
from repro.mp.semantics import enabled_executions, apply_execution


def reachable_sample(protocol, depth=3):
    """A few states reachable within ``depth`` steps (deterministic order)."""
    states = [protocol.initial_state()]
    frontier = list(states)
    for _ in range(depth):
        next_frontier = []
        for state in frontier:
            for execution in enabled_executions(state, protocol):
                next_frontier.append(apply_execution(state, execution))
        states.extend(next_frontier)
        frontier = next_frontier
    return states


class TestGlobalStatePickle:
    def test_round_trip_preserves_value_and_fingerprint(self, ping_pong_two_rounds):
        for state in reachable_sample(ping_pong_two_rounds):
            restored = pickle.loads(pickle.dumps(state))
            assert restored == state
            assert hash(restored) == hash(state)
            assert restored.fingerprint() == state.fingerprint()
            assert restored.locals == state.locals
            assert restored.network == state.network

    def test_quorum_protocol_states_round_trip(self, vote_collection):
        for state in reachable_sample(vote_collection, depth=2):
            restored = pickle.loads(pickle.dumps(state))
            assert restored == state
            assert restored.fingerprint() == state.fingerprint()

    def test_unpickled_states_share_one_index(self, ping_pong_two_rounds):
        states = reachable_sample(ping_pong_two_rounds, depth=2)
        restored = [pickle.loads(pickle.dumps(state)) for state in states]
        indices = {id(state._index) for state in restored}
        assert len(indices) == 1

    def test_restored_state_supports_functional_updates(self, ping_pong):
        state = pickle.loads(pickle.dumps(ping_pong.initial_state()))
        for execution in enabled_executions(state, ping_pong):
            successor = apply_execution(state, execution)
            rebuilt = pickle.loads(pickle.dumps(successor))
            assert rebuilt == successor
            assert rebuilt.fingerprint() == successor.fingerprint()

    def test_payload_is_compact(self, vote_collection):
        # The shared index and cached hashes must not be serialized; a state
        # should cost well under a kilobyte for these small protocols.
        blob = pickle.dumps(vote_collection.initial_state())
        assert len(blob) < 1024


class TestNetworkPickle:
    def test_round_trip_preserves_multiset(self):
        network = Network.of(
            [
                Message.make("A", "p1", "p2", k=1),
                Message.make("A", "p1", "p2", k=1),
                Message.make("B", "p2", "p1"),
            ]
        )
        restored = pickle.loads(pickle.dumps(network))
        assert restored == network
        assert hash(restored) == hash(network)
        assert restored.items == network.items
        assert len(restored) == 3

    def test_empty_network(self):
        restored = pickle.loads(pickle.dumps(Network.empty()))
        assert restored == Network.empty()
        assert not restored
