"""Unit tests for the interned-state successor engine."""

from __future__ import annotations

import pytest

from repro.mp.semantics import SuccessorEngine, apply_execution, enabled_executions
from repro.mp.state import StateInterner

from ..conftest import build_ping_pong, build_vote_collection


@pytest.fixture(params=["ping-pong", "vote-collection"])
def protocol(request):
    if request.param == "ping-pong":
        return build_ping_pong(rounds=2)
    return build_vote_collection(voters=3, quorum=2)


class TestInterning:
    def test_initial_state_is_interned(self, protocol):
        engine = SuccessorEngine(protocol)
        assert engine.initial_state() is engine.initial_state()

    def test_states_reached_twice_are_one_object(self, protocol):
        engine = SuccessorEngine(protocol)
        initial = engine.initial_state()
        enabled = engine.enabled(initial)
        if len(enabled) < 2:
            pytest.skip("needs two enabled executions")
        # Execute two independent executions in both orders; commuting
        # interleavings must funnel into the same interned object.
        first, second = enabled[0], enabled[1]
        one = engine.successor(engine.successor(initial, first), second)
        other = engine.successor(engine.successor(initial, second), first)
        if one == other:
            assert one is other

    def test_shared_interner_across_engines(self, protocol):
        interner = StateInterner()
        first = SuccessorEngine(protocol, interner=interner)
        second = SuccessorEngine(protocol, interner=interner)
        assert first.initial_state() is second.initial_state()


class TestCaches:
    def test_enabled_cache_returns_same_tuple(self, protocol):
        engine = SuccessorEngine(protocol)
        state = engine.initial_state()
        assert engine.enabled(state) is engine.enabled(state)
        assert engine.enabled_hits == 1
        assert engine.enabled_misses == 1

    def test_successor_cache_hit_on_repeat(self, protocol):
        engine = SuccessorEngine(protocol)
        state = engine.initial_state()
        execution = engine.enabled(state)[0]
        assert engine.successor(state, execution) is engine.successor(state, execution)
        assert engine.successor_hits == 1
        assert engine.successor_misses == 1

    def test_cache_can_be_disabled(self, protocol):
        engine = SuccessorEngine(protocol, cache_successors=False)
        state = engine.initial_state()
        execution = engine.enabled(state)[0]
        first = engine.successor(state, execution)
        second = engine.successor(state, execution)
        # No edge cache, but interning still canonicalises the results.
        assert first is second
        assert engine.cache_sizes()["successor_edges"] == 0

    def test_cache_sizes_reporting(self, protocol):
        engine = SuccessorEngine(protocol)
        state = engine.initial_state()
        for execution in engine.enabled(state):
            engine.successor(state, execution)
        sizes = engine.cache_sizes()
        assert sizes["enabled_sets"] == 1
        assert sizes["successor_edges"] == len(engine.enabled(state))
        assert sizes["interned_states"] >= 1


class TestAgreementWithPrimitives:
    def test_engine_matches_raw_semantics_on_walk(self, protocol):
        """A depth-bounded walk agrees with the uncached primitives."""
        engine = SuccessorEngine(protocol)
        frontier = [engine.initial_state()]
        for _ in range(4):
            next_frontier = []
            for state in frontier:
                cached = engine.enabled(state)
                assert cached == enabled_executions(state, protocol)
                for execution in cached:
                    successor = engine.successor(state, execution)
                    assert successor == apply_execution(state, execution)
                    next_frontier.append(successor)
            frontier = next_frontier
