"""LRU bounding of the successor engine's derived caches.

Stateless searches previously grew the enabled-set and successor caches
without bound; ``max_cache_entries`` turns both into LRU maps.  Eviction
must never change results — only cost — so every test pins correctness
against an unbounded engine.
"""

from __future__ import annotations

import pytest

from repro.checker.search import SearchConfig, dfs_search
from repro.checker.property import always_true
from repro.mp.semantics import SuccessorEngine
from repro.mp.semantics import state_graph_edges
from repro.por.dpor import DporSearch


def walk_states(protocol, count=12):
    """A deterministic stream of distinct reachable states to probe caches with."""
    states, _ = state_graph_edges(protocol)
    return sorted(states, key=lambda state: state.fingerprint())[:count]


class TestBoundedCaches:
    def test_capacity_is_respected(self, ping_pong_two_rounds):
        engine = SuccessorEngine(ping_pong_two_rounds, max_cache_entries=4)
        for state in walk_states(ping_pong_two_rounds):
            engine.enabled(state)
            for execution in engine.enabled(state):
                engine.successor(state, execution)
        sizes = engine.cache_sizes()
        assert sizes["enabled_sets"] <= 4
        assert len(engine._successor_cache) <= 4
        assert engine.eviction_counts()["enabled_sets"] > 0
        assert engine.eviction_counts()["successor_states"] > 0

    def test_unbounded_engine_never_evicts(self, ping_pong_two_rounds):
        engine = SuccessorEngine(ping_pong_two_rounds)
        for state in walk_states(ping_pong_two_rounds):
            engine.enabled(state)
        assert engine.eviction_counts() == {
            "enabled_sets": 0,
            "successor_states": 0,
        }

    def test_results_identical_to_unbounded(self, vote_collection):
        bounded = SuccessorEngine(vote_collection, max_cache_entries=2)
        unbounded = SuccessorEngine(vote_collection)
        for state in walk_states(vote_collection):
            state_b = bounded.intern(state)
            state_u = unbounded.intern(state)
            enabled_b = bounded.enabled(state_b)
            enabled_u = unbounded.enabled(state_u)
            assert enabled_b == enabled_u
            for execution in enabled_b:
                assert bounded.successor(state_b, execution) == unbounded.successor(
                    state_u, execution
                )

    def test_lru_keeps_recently_used_entries(self, ping_pong_two_rounds):
        states = walk_states(ping_pong_two_rounds, count=3)
        engine = SuccessorEngine(ping_pong_two_rounds, max_cache_entries=2)
        engine.enabled(states[0])
        engine.enabled(states[1])
        engine.enabled(states[0])  # refresh 0, making 1 the LRU victim
        engine.enabled(states[2])
        assert states[0] in engine._enabled_cache
        assert states[1] not in engine._enabled_cache
        assert states[2] in engine._enabled_cache

    def test_invalid_capacity_rejected(self, ping_pong):
        with pytest.raises(ValueError):
            SuccessorEngine(ping_pong, max_cache_entries=0)


class TestSearchPlumbing:
    def test_stateless_dfs_with_capacity_matches_unbounded(self, ping_pong_two_rounds):
        unbounded = dfs_search(
            ping_pong_two_rounds, always_true(), SearchConfig(stateful=False)
        )
        bounded = dfs_search(
            ping_pong_two_rounds,
            always_true(),
            SearchConfig(stateful=False, engine_cache_capacity=3),
        )
        assert bounded.verified == unbounded.verified
        assert (
            bounded.statistics.states_visited == unbounded.statistics.states_visited
        )
        assert (
            bounded.statistics.transitions_executed
            == unbounded.statistics.transitions_executed
        )

    def test_dpor_with_capacity_matches_unbounded(self, ping_pong_two_rounds):
        unbounded = DporSearch(ping_pong_two_rounds).run(always_true())
        bounded_search = DporSearch(
            ping_pong_two_rounds,
            config=SearchConfig(stateful=False, engine_cache_capacity=4),
        )
        assert bounded_search.engine.max_cache_entries == 4
        bounded = bounded_search.run(always_true())
        assert bounded.verified == unbounded.verified
        assert (
            bounded.statistics.states_visited == unbounded.statistics.states_visited
        )
