"""Unit tests for the MP error hierarchy."""

import pytest

from repro.mp.errors import (
    MessageError,
    MPError,
    ProtocolDefinitionError,
    QuorumSpecificationError,
    TransitionExecutionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            MessageError,
            ProtocolDefinitionError,
            QuorumSpecificationError,
            TransitionExecutionError,
        ],
    )
    def test_all_errors_derive_from_mperror(self, error_cls):
        assert issubclass(error_cls, MPError)
        with pytest.raises(MPError):
            raise error_cls("boom")

    def test_catching_specific_error_does_not_catch_siblings(self):
        with pytest.raises(MessageError):
            try:
                raise MessageError("payload")
            except ProtocolDefinitionError:  # pragma: no cover - must not trigger
                pytest.fail("MessageError must not be caught as ProtocolDefinitionError")

    def test_error_messages_preserved(self):
        error = QuorumSpecificationError("quorum size must be positive")
        assert "positive" in str(error)
