"""Unit tests for the operational semantics (enabled sets and successors)."""

from dataclasses import dataclass

import pytest

from repro.mp import (
    ActionContext,
    LporAnnotation,
    ProtocolBuilder,
    exact_quorum,
)
from repro.mp.errors import TransitionExecutionError
from repro.mp.process import LocalState
from repro.mp.semantics import (
    apply_execution,
    enabled_executions,
    enabled_executions_for,
    is_enabled,
    state_graph_edges,
    successors,
)

from ..conftest import build_ping_pong, build_vote_collection


@dataclass(frozen=True)
class Sink(LocalState):
    """Local state recording which senders were consumed."""

    seen: frozenset = frozenset()


def build_quorum_sink(senders=3, quorum=2, guard=None, quorum_peers=None,
                      bad_action=False):
    """One sink process with a quorum transition; senders triggered by the driver."""
    builder = ProtocolBuilder("sink")
    builder.add_process("sink", "sink", Sink())
    sender_ids = tuple(f"s{i + 1}" for i in range(senders))

    def forward(local, messages, ctx):
        (message,) = messages
        ctx.send("sink", "DATA", origin=ctx.process_id)
        return local

    for pid in sender_ids:
        builder.add_process(pid, "sender", Sink())
        builder.add_transition(
            name=f"GO@{pid}", process_id=pid, message_type="GO", action=forward,
            annotation=LporAnnotation(sends=()),
        )
        builder.trigger("GO", pid)

    def consume(local, messages, _ctx):
        if bad_action:
            return ["unhashable"]
        return Sink(seen=local.seen | {m["origin"] for m in messages})

    spec = exact_quorum(quorum)
    builder.add_transition(
        name="DATA@sink", process_id="sink", message_type="DATA",
        quorum=spec, guard=guard, action=consume, quorum_peers=quorum_peers,
        annotation=LporAnnotation(possible_senders=frozenset(sender_ids)),
    )
    return builder.build()


class TestSingleMessageEnabledness:
    def test_initially_only_driver_triggered_transitions_enabled(self, ping_pong):
        state = ping_pong.initial_state()
        enabled = enabled_executions(state, ping_pong)
        assert [e.transition.name for e in enabled] == ["START@ping"]

    def test_is_enabled_helper(self, ping_pong):
        state = ping_pong.initial_state()
        assert is_enabled(state, ping_pong.transition("START@ping"))
        assert not is_enabled(state, ping_pong.transition("PING@pong"))
        assert not is_enabled(state, ping_pong.transition("PONG@ping"))

    def test_enabled_executions_for_restricted_transition(self, ping_pong):
        state = ping_pong.initial_state()
        assert enabled_executions_for(state, ping_pong.transition("PONG@ping")) == ()

    def test_two_pending_messages_give_two_executions(self):
        protocol = build_ping_pong(rounds=2)
        state = protocol.initial_state()
        enabled = enabled_executions(state, protocol)
        # Both PING driver messages are identical, so the multiset holds one
        # distinct message with multiplicity two and one execution per
        # distinct message.
        assert len(enabled) == 1

    def test_guard_filters_executions(self):
        protocol = build_quorum_sink(senders=2, quorum=1,
                                     guard=lambda _local, msgs: msgs[0]["origin"] == "s1")
        state = protocol.initial_state()
        # Drive both senders so DATA messages exist.
        for _ in range(2):
            execution = next(
                e for e in enabled_executions(state, protocol)
                if e.transition.name.startswith("GO")
            )
            state = apply_execution(state, execution)
        data_executions = enabled_executions_for(state, protocol.transition("DATA@sink"))
        assert len(data_executions) == 1
        assert data_executions[0].messages[0]["origin"] == "s1"


class TestQuorumEnabledness:
    def drive_all(self, protocol):
        """Execute every driver-triggered GO transition."""
        state = protocol.initial_state()
        while True:
            go = [e for e in enabled_executions(state, protocol)
                  if e.transition.name.startswith("GO")]
            if not go:
                return state
            state = apply_execution(state, go[0])

    def test_no_execution_below_quorum(self):
        protocol = build_quorum_sink(senders=3, quorum=2)
        state = protocol.initial_state()
        go = [e for e in enabled_executions(state, protocol) if e.transition.name.startswith("GO")]
        state = apply_execution(state, go[0])
        assert enabled_executions_for(state, protocol.transition("DATA@sink")) == ()

    def test_all_sender_combinations_enumerated(self):
        protocol = build_quorum_sink(senders=3, quorum=2)
        state = self.drive_all(protocol)
        executions = enabled_executions_for(state, protocol.transition("DATA@sink"))
        sender_sets = {e.senders for e in executions}
        assert sender_sets == {
            frozenset({"s1", "s2"}),
            frozenset({"s1", "s3"}),
            frozenset({"s2", "s3"}),
        }

    def test_quorum_peers_restrict_combinations(self):
        protocol = build_quorum_sink(senders=3, quorum=2,
                                     quorum_peers=frozenset({"s1", "s3"}))
        state = self.drive_all(protocol)
        executions = enabled_executions_for(state, protocol.transition("DATA@sink"))
        assert {e.senders for e in executions} == {frozenset({"s1", "s3"})}

    def test_quorum_peers_missing_sender_disables(self):
        protocol = build_quorum_sink(senders=3, quorum=2,
                                     quorum_peers=frozenset({"s1", "s2"}))
        state = protocol.initial_state()
        # Only drive s3: the peer-restricted quorum must stay disabled.
        go3 = next(e for e in enabled_executions(state, protocol)
                   if e.transition.name == "GO@s3")
        state = apply_execution(state, go3)
        assert enabled_executions_for(state, protocol.transition("DATA@sink")) == ()

    def test_quorum_guard_applies_to_message_set(self):
        protocol = build_quorum_sink(
            senders=3, quorum=2,
            guard=lambda _local, msgs: all(m["origin"] != "s2" for m in msgs),
        )
        state = self.drive_all(protocol)
        executions = enabled_executions_for(state, protocol.transition("DATA@sink"))
        assert {e.senders for e in executions} == {frozenset({"s1", "s3"})}


class TestSuccessors:
    def test_apply_execution_consumes_and_sends(self, ping_pong):
        state = ping_pong.initial_state()
        (start,) = enabled_executions(state, ping_pong)
        after_start = apply_execution(state, start)
        assert len(after_start.network.pending_for("ping", mtype="START")) == 0
        assert len(after_start.network.pending_for("pong", mtype="PING")) == 1
        (ping,) = enabled_executions(after_start, ping_pong)
        after_ping = apply_execution(after_start, ping)
        assert len(after_ping.network.pending_for("pong", mtype="PING")) == 0
        assert len(after_ping.network.pending_for("ping", mtype="PONG")) == 1
        assert after_ping.local("pong").pings == 1

    def test_apply_execution_returns_new_state(self, ping_pong):
        state = ping_pong.initial_state()
        (execution,) = enabled_executions(state, ping_pong)
        successor = apply_execution(state, execution)
        assert successor != state
        assert state.local("ping").sent == 0
        assert successor.local("ping").sent == 1

    def test_action_returning_none_keeps_local_state(self):
        builder = ProtocolBuilder("noop")
        builder.add_process("p", "t", Sink())
        builder.add_transition("T@p", "p", "T", lambda _l, _m, _c: None)
        builder.trigger("T", "p")
        protocol = builder.build()
        state = protocol.initial_state()
        (execution,) = enabled_executions(state, protocol)
        successor = apply_execution(state, execution)
        assert successor.local("p") == Sink()

    def test_unhashable_local_state_rejected(self):
        protocol = build_quorum_sink(senders=2, quorum=1, bad_action=True)
        state = protocol.initial_state()
        go = [e for e in enabled_executions(state, protocol) if e.transition.name.startswith("GO")]
        state = apply_execution(state, go[0])
        (data,) = enabled_executions_for(state, protocol.transition("DATA@sink"))
        with pytest.raises(TransitionExecutionError):
            apply_execution(state, data)

    def test_successors_pairs_executions_with_states(self, ping_pong):
        state = ping_pong.initial_state()
        pairs = successors(state, ping_pong)
        assert len(pairs) == 1
        execution, successor = pairs[0]
        assert execution.transition.name == "START@ping"
        assert successor.local("ping").sent == 1


class TestStateGraphEnumeration:
    def test_ping_pong_state_graph(self):
        protocol = build_ping_pong(rounds=1)
        states, edges = state_graph_edges(protocol)
        # init -> after START -> after PING -> after PONG
        assert len(states) == 4
        assert len(edges) == 3

    def test_vote_collection_counts(self):
        protocol = build_vote_collection(voters=2, quorum=2)
        states, edges = state_graph_edges(protocol)
        assert len(states) >= 4
        assert all(isinstance(edge, tuple) and len(edge) == 2 for edge in edges)

    def test_max_states_bound_enforced(self):
        protocol = build_vote_collection(voters=3, quorum=2)
        with pytest.raises(RuntimeError):
            state_graph_edges(protocol, max_states=2)
