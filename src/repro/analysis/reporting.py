"""Plain-text table rendering for the benchmark harness.

The benchmark modules collect rows shaped like the paper's Tables I and II
(protocol, property, result, then states/time per search strategy) and use
these helpers to print them.  Keeping the rendering here keeps the
benchmarks declarative and makes the tables reusable from the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checker.result import CheckResult


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper does (e.g. ``3m4s``, ``9h37m``)."""
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    total = int(round(seconds))
    hours, remainder = divmod(total, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}h{minutes}m"
    if minutes:
        return f"{minutes}m{secs}s"
    return f"{secs}s"


def format_count(value: int) -> str:
    """Render a state count with thousands separators, as in the paper."""
    return f"{value:,}"


@dataclass
class TableRow:
    """One row of an evaluation table.

    Attributes:
        protocol: Row label, e.g. ``"Paxos (2,2,1)"``.
        property_name: The property checked.
        outcome: ``"Verified"`` or ``"CE"``.
        cells: Mapping from column name to a ``(states, seconds)`` pair.
    """

    protocol: str
    property_name: str
    outcome: str
    cells: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    def add_result(self, column: str, result: CheckResult) -> None:
        """Record a check result under a column of the table."""
        self.cells[column] = (
            result.statistics.states_visited,
            result.statistics.elapsed_seconds,
        )


@dataclass
class EvaluationTable:
    """A paper-style table: rows of protocol settings, columns of strategies."""

    title: str
    columns: Sequence[str]
    rows: List[TableRow] = field(default_factory=list)

    def add_row(self, row: TableRow) -> None:
        self.rows.append(row)

    def new_row(self, protocol: str, property_name: str, outcome: str) -> TableRow:
        """Create, register and return a fresh row."""
        row = TableRow(protocol=protocol, property_name=property_name, outcome=outcome)
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Render the table as aligned plain text."""
        headers = ["Protocol", "Property", "Result"]
        for column in self.columns:
            headers.append(f"{column} states")
            headers.append(f"{column} time")

        body: List[List[str]] = []
        for row in self.rows:
            line = [row.protocol, row.property_name, row.outcome]
            for column in self.columns:
                cell = row.cells.get(column)
                if cell is None:
                    line.extend(["-", "-"])
                else:
                    states, seconds = cell
                    line.extend([format_count(states), format_duration(seconds)])
            body.append(line)

        widths = [len(header) for header in headers]
        for line in body:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, separator, render_line(headers), separator]
        lines.extend(render_line(line) for line in body)
        lines.append(separator)
        return "\n".join(lines)

    def best_column_per_row(self) -> Dict[str, Optional[str]]:
        """For each row, the column with the fewest states (the bold entries
        of the paper's tables)."""
        best: Dict[str, Optional[str]] = {}
        for row in self.rows:
            if not row.cells:
                best[row.protocol] = None
                continue
            best[row.protocol] = min(row.cells, key=lambda column: row.cells[column][0])
        return best
