"""Reduction metrics: the percentages quoted in the paper's abstract and text.

The paper reports savings such as "up to 92% memory and 85% time reduction";
memory is proxied by the number of stored states (the dominant memory cost
of stateful explicit-state model checking).  These helpers compute the same
percentages from two :class:`~repro.checker.result.CheckResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..checker.result import CheckResult


def reduction_percentage(baseline: float, improved: float) -> float:
    """Percentage saved by ``improved`` relative to ``baseline``.

    Positive values mean the improved run was cheaper; negative values mean
    it was more expensive.  A zero baseline yields 0.0 by convention.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


@dataclass(frozen=True)
class ResultComparison:
    """Memory (state count) and time savings of one run over another.

    Attributes:
        baseline_label: Name of the baseline strategy/model.
        improved_label: Name of the improved strategy/model.
        state_reduction_percent: States saved, as a percentage.
        time_reduction_percent: Wall-clock time saved, as a percentage.
        baseline_states: State count of the baseline run.
        improved_states: State count of the improved run.
        baseline_seconds: Duration of the baseline run.
        improved_seconds: Duration of the improved run.
    """

    baseline_label: str
    improved_label: str
    state_reduction_percent: float
    time_reduction_percent: float
    baseline_states: int
    improved_states: int
    baseline_seconds: float
    improved_seconds: float

    def summary(self) -> str:
        """One-line rendering, e.g. for benchmark output."""
        return (
            f"{self.improved_label} vs {self.baseline_label}: "
            f"{self.state_reduction_percent:.0f}% fewer states "
            f"({self.baseline_states} -> {self.improved_states}), "
            f"{self.time_reduction_percent:.0f}% less time "
            f"({self.baseline_seconds:.2f}s -> {self.improved_seconds:.2f}s)"
        )


def compare_results(
    baseline: CheckResult,
    improved: CheckResult,
    baseline_label: Optional[str] = None,
    improved_label: Optional[str] = None,
) -> ResultComparison:
    """Compare two check results as the paper's tables do (states and time)."""
    return ResultComparison(
        baseline_label=baseline_label or baseline.strategy,
        improved_label=improved_label or improved.strategy,
        state_reduction_percent=reduction_percentage(
            baseline.statistics.states_visited, improved.statistics.states_visited
        ),
        time_reduction_percent=reduction_percentage(
            baseline.statistics.elapsed_seconds, improved.statistics.elapsed_seconds
        ),
        baseline_states=baseline.statistics.states_visited,
        improved_states=improved.statistics.states_visited,
        baseline_seconds=baseline.statistics.elapsed_seconds,
        improved_seconds=improved.statistics.elapsed_seconds,
    )
