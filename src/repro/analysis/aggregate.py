"""Aggregation of machine-readable benchmark results (``BENCH_*.json``).

The ``python -m repro`` CLI emits every run as a JSON payload so that
sweeps from different machines, worker counts and commits can be compared
offline.  This module owns the payload schema end to end:

* :func:`result_record` — flatten one :class:`CheckResult` into the
  JSON-able per-cell record the CLI and the cell-parallel runner emit;
* :func:`telemetry_block` — the compact telemetry subset those records
  carry (throughput, memo behaviour, peak RSS, per-phase span seconds);
* :func:`bench_payload` / :func:`write_bench_file` — wrap records into a
  self-describing payload and write it as ``BENCH_<kind>_<label>.json``;
* :func:`load_bench_files` — read payloads back from files or directories;
* :func:`aggregate_records` / :func:`render_aggregate` — merge payloads
  into per-cell rows (best time per mode, serial-vs-parallel speedups) and
  render them as a plain-text table;
* :func:`render_telemetry` — the companion table over the telemetry
  blocks (``python -m repro report --telemetry``).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..checker.result import (
    OUTCOME_LABELS,
    CheckResult,
    outcome_label_for,
    outcome_of,
)

#: Filename prefix of every machine-readable benchmark artifact.
BENCH_PREFIX = "BENCH_"


def safe_ratio(numerator, denominator) -> Optional[float]:
    """``numerator / denominator`` or None for degenerate denominators.

    Sub-millisecond cells legitimately record ``elapsed_seconds == 0.0``
    and empty runs record zero hits+misses; every derived rate in this
    module funnels through here so those records render as "-" instead of
    raising ``ZeroDivisionError`` or leaking ``inf``/``nan`` into payloads.
    """
    try:
        if numerator is None or denominator is None or denominator <= 0:
            return None
    except TypeError:  # non-numeric garbage from a hand-edited payload
        return None
    return numerator / denominator


def record_outcome(record: Dict) -> str:
    """The rendered outcome label of one result record.

    Reads the record's own ``outcome`` field when present and falls back
    to deriving it from the ``verified``/``complete`` flags, so payloads
    written before the three-valued outcome existed still render honestly
    (a truncated clean run shows as inconclusive, never ``Verified``).
    A recorded ``incomplete_reason`` (worker crash, cancelled) renders in
    place of the default budget spelling.
    """
    reason = record.get("incomplete_reason")
    outcome = record.get("outcome")
    if outcome in OUTCOME_LABELS:
        return outcome_label_for(outcome, reason)
    return outcome_label_for(
        outcome_of(
            bool(record.get("verified")),
            bool(record.get("complete", True)),
            record.get("counterexample_steps") is not None,
        ),
        reason,
    )


def result_record(result: CheckResult, **extra) -> Dict:
    """Flatten a :class:`CheckResult` into a JSON-able record.

    Results produced through the plan layer additionally carry their
    resolved axes (``shape`` / ``reduction`` / ``backend``) and the registry
    name of the engine that ran them, so payloads from different engines
    aggregate without guessing the configuration back out of the legacy
    strategy string.  Extra keyword fields (cell key, model variant, worker
    count, ...) are merged in; they must be JSON-serialisable.
    """
    statistics = result.statistics
    record = {
        "protocol": result.protocol_name,
        "property": result.property_name,
        "strategy": result.strategy,
        "verified": result.verified,
        "complete": result.complete,
        "outcome": result.outcome(),
        "stateful": result.stateful,
        "counterexample_steps": (
            len(result.counterexample.steps) if result.counterexample else None
        ),
        "states_visited": statistics.states_visited,
        "transitions_executed": statistics.transitions_executed,
        "revisits": statistics.revisits,
        "max_depth": statistics.max_depth,
        "elapsed_seconds": statistics.elapsed_seconds,
        "enabled_set_computations": statistics.enabled_set_computations,
    }
    if result.incomplete_reason is not None:
        record["incomplete_reason"] = result.incomplete_reason
    if result.plan is not None:
        record.update(
            shape=result.plan.shape,
            reduction=result.plan.reduction,
            backend=result.plan.backend,
            successors=result.plan.successors,
            goal=result.plan.goal,
        )
    if result.engine is not None:
        record["engine"] = result.engine
    if result.telemetry is not None:
        block = telemetry_block(result.telemetry)
        if block:
            record["telemetry"] = block
    record.update(extra)
    return record


#: Metric names carried (when present) into every record's telemetry block.
TELEMETRY_BLOCK_METRICS = (
    "states_per_second",
    "reduction_ratio",
    "frontier_peak",
    "state_store_size",
    "fastpath_memo_hits",
    "fastpath_memo_misses",
    "fastpath_memo_evictions",
    "worksteal_steals",
    "worksteal_publishes",
    "swarm_walks_completed",
    "swarm_walks_per_second",
    "swarm_unique_fingerprints",
)


def telemetry_block(snapshot: Optional[Dict]) -> Optional[Dict]:
    """Compact, record-friendly subset of a ``CheckResult.telemetry`` snapshot.

    The full snapshot is deep (every labelled series of every instrument);
    bench records only need the scalars worth comparing across runs:
    throughput, the reduction ratio, fast-path memo behaviour, steal
    traffic, peak RSS and the per-phase span totals.  Counters use their
    cross-label total; gauges are included only when single-valued (a
    per-shard gauge has no meaningful scalar).  Returns ``None`` when
    nothing qualifies.
    """
    if not snapshot:
        return None
    metrics = snapshot.get("metrics", {})

    def scalar(name: str):
        metric = metrics.get(name)
        if not metric:
            return None
        if metric.get("kind") == "counter":
            return metric.get("total", 0)
        values = metric.get("values", ())
        if len(values) == 1:
            return values[0]["value"]
        return None

    block: Dict = {}
    for name in TELEMETRY_BLOCK_METRICS:
        value = scalar(name)
        if value is not None:
            block[name] = value
    for key in ("peak_rss_kb", "tracemalloc_peak_kb"):
        if key in snapshot:
            block[key] = snapshot[key]
    finished = snapshot.get("spans", {}).get("finished", ())
    if finished:
        totals: Dict[str, float] = {}
        for span in finished:
            name = span["span"]
            totals[name] = totals.get(name, 0.0) + span["elapsed_seconds"]
        block["span_seconds"] = {
            name: round(seconds, 6) for name, seconds in sorted(totals.items())
        }
    return block or None


def bench_payload(kind: str, results: Sequence[Dict], **meta) -> Dict:
    """Wrap per-cell records into a self-describing payload."""
    payload = {
        "schema": "repro-bench/1",
        "kind": kind,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": list(results),
    }
    payload.update(meta)
    return payload


def write_bench_file(
    directory: Path, kind: str, payload: Dict, label: Optional[str] = None
) -> Path:
    """Write a payload as ``BENCH_<kind>[_<label>]_<timestamp>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    middle = f"{kind}_{label}" if label else kind
    path = directory / f"{BENCH_PREFIX}{middle}_{stamp}.json"
    serial = 0
    while path.exists():
        serial += 1
        path = directory / f"{BENCH_PREFIX}{middle}_{stamp}-{serial}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_files(paths: Iterable) -> List[Dict]:
    """Load payloads from JSON files and/or directories of ``BENCH_*.json``.

    Raises:
        FileNotFoundError: If a given path does not exist.
        ValueError: If a file does not carry the expected schema marker.
    """
    payloads: List[Dict] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.glob(f"{BENCH_PREFIX}*.json"))
        elif path.exists():
            files = [path]
        else:
            raise FileNotFoundError(f"no such benchmark file or directory: {path}")
        for file in files:
            payload = json.loads(file.read_text())
            if not str(payload.get("schema", "")).startswith("repro-bench/"):
                raise ValueError(f"{file} is not a repro benchmark payload")
            payload["_source"] = str(file)
            payloads.append(payload)
    return payloads


def _mode_of(record: Dict) -> str:
    workers = int(record.get("workers", 1) or 1)
    return f"parallel[{workers}]" if workers > 1 else "serial"


@dataclass
class AggregateRow:
    """All observations of one ``(cell, model, strategy)`` combination.

    Attributes:
        cell: Catalog key (falls back to the protocol name for ad-hoc runs).
        model: ``"quorum"`` or ``"single"``.
        strategy: Search strategy string.
        outcome: ``"Verified"`` / ``"CE"`` / ``"Inconclusive (budget hit)"``
            when all observations agree, ``"mixed"`` otherwise.
        states_visited: State count (the paper's primary column); ``None``
            until observed, ``-1`` if observations disagree.
        best_seconds: Mode name -> fastest observed wall clock.
        runs: Mode name -> number of observations.
    """

    cell: str
    model: str
    strategy: str
    outcome: str = "-"
    states_visited: Optional[int] = None
    best_seconds: Dict[str, float] = field(default_factory=dict)
    runs: Dict[str, int] = field(default_factory=dict)

    def speedup(self) -> Optional[float]:
        """Best serial time over best parallel time, when both exist.

        None when either mode is unobserved or the parallel best is a
        zero-elapsed (sub-millisecond) record: a ratio against a zero
        denominator is noise, not a speedup.
        """
        serial = self.best_seconds.get("serial")
        parallel = min(
            (value for mode, value in self.best_seconds.items() if mode != "serial"),
            default=None,
        )
        return safe_ratio(serial, parallel)


@dataclass
class AggregateSummary:
    """Merged view over any number of benchmark payloads."""

    rows: List[AggregateRow]
    payload_count: int
    record_count: int

    def total_states(self) -> int:
        # The -1 "observations disagree" sentinel must not leak into sums.
        return sum(
            row.states_visited
            for row in self.rows
            if row.states_visited is not None and row.states_visited > 0
        )


def aggregate_records(payloads: Sequence[Dict]) -> AggregateSummary:
    """Merge payloads into one row per ``(cell, model, strategy)``."""
    rows: Dict[Tuple[str, str, str], AggregateRow] = {}
    record_count = 0
    for payload in payloads:
        for record in payload.get("results", ()):
            record_count += 1
            cell = str(record.get("cell") or record.get("protocol") or "?")
            model = str(record.get("model", "-"))
            strategy = str(record.get("strategy", "-"))
            key = (cell, model, strategy)
            row = rows.get(key)
            if row is None:
                row = rows[key] = AggregateRow(cell=cell, model=model, strategy=strategy)
            mode = _mode_of(record)
            elapsed = float(record.get("elapsed_seconds", 0.0))
            best = row.best_seconds.get(mode)
            if best is None or elapsed < best:
                row.best_seconds[mode] = elapsed
            row.runs[mode] = row.runs.get(mode, 0) + 1
            outcome = record_outcome(record)
            if row.outcome == "-":
                row.outcome = outcome
            elif row.outcome != outcome:
                row.outcome = "mixed"
            states = record.get("states_visited")
            if states is not None:
                if row.states_visited is None:
                    row.states_visited = int(states)
                elif row.states_visited != int(states):
                    # Disagreeing counts across observations (e.g. different
                    # bounds) are flagged rather than silently averaged.
                    row.states_visited = -1
    ordered = sorted(rows.values(), key=lambda row: (row.cell, row.model, row.strategy))
    return AggregateSummary(
        rows=ordered, payload_count=len(payloads), record_count=record_count
    )


def render_aggregate(summary: AggregateSummary) -> str:
    """Render a summary as a plain-text table with per-row speedups."""
    header = ("cell", "model", "strategy", "outcome", "states", "best serial", "best parallel", "speedup")
    lines: List[Tuple[str, ...]] = [header]
    for row in summary.rows:
        states = "-"
        if row.states_visited is not None:
            states = "(differs)" if row.states_visited < 0 else f"{row.states_visited:,}"
        serial = row.best_seconds.get("serial")
        parallel_modes = {m: v for m, v in row.best_seconds.items() if m != "serial"}
        best_parallel = min(parallel_modes.values()) if parallel_modes else None
        speedup = row.speedup()
        lines.append(
            (
                row.cell,
                row.model,
                row.strategy,
                row.outcome,
                states,
                f"{serial:.3f}s" if serial is not None else "-",
                f"{best_parallel:.3f}s" if best_parallel is not None else "-",
                f"{speedup:.2f}x" if speedup is not None else "-",
            )
        )
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = []
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip())
        if index == 0:
            rendered.append("  ".join("-" * widths[i] for i in range(len(header))))
    rendered.append(
        f"({summary.record_count} records from {summary.payload_count} payloads)"
    )
    return "\n".join(rendered)


def render_telemetry(payloads: Sequence[Dict]) -> str:
    """Render the telemetry blocks of bench payloads as a plain-text table.

    One row per record carrying a ``telemetry`` block (records from before
    the observability layer simply have none and are skipped); columns are
    the cross-run comparables: throughput, memo hit rate and evictions,
    peak RSS and the measured search-span seconds.
    """
    header = ("cell", "model", "engine", "states/s", "memo hit%",
              "evictions", "peak RSS", "search s")
    lines: List[Tuple[str, ...]] = [header]
    skipped = 0
    for payload in payloads:
        for record in payload.get("results", ()):
            block = record.get("telemetry")
            if not block:
                skipped += 1
                continue
            hits = block.get("fastpath_memo_hits")
            misses = block.get("fastpath_memo_misses")
            ratio = (
                safe_ratio(hits, hits + misses)
                if hits is not None and misses is not None
                else None
            )
            hit_rate = f"{100.0 * ratio:.1f}%" if ratio is not None else "-"
            throughput = block.get("states_per_second")
            if throughput is None:
                # Older records carry no telemetry throughput; derive it,
                # guarding against zero-elapsed sub-millisecond runs.
                throughput = safe_ratio(
                    record.get("states_visited"), record.get("elapsed_seconds")
                )
            rss = block.get("peak_rss_kb")
            search_seconds = (block.get("span_seconds") or {}).get("search")
            evictions = block.get("fastpath_memo_evictions")
            lines.append(
                (
                    str(record.get("cell") or record.get("protocol") or "?"),
                    str(record.get("model", "-")),
                    str(record.get("engine", "-")),
                    f"{throughput:,.0f}" if throughput else "-",
                    hit_rate,
                    f"{evictions:,}" if evictions is not None else "-",
                    f"{rss:,} KiB" if rss else "-",
                    f"{search_seconds:.3f}" if search_seconds is not None else "-",
                )
            )
    if len(lines) == 1:
        return "(no telemetry blocks in the given payloads)"
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = []
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip())
        if index == 0:
            rendered.append("  ".join("-" * widths[i] for i in range(len(header))))
    if skipped:
        rendered.append(f"({skipped} records without telemetry omitted)")
    return "\n".join(rendered)
