"""Analysis helpers: the Section II-C blow-up formulas, reduction metrics,
paper-style table rendering used by the benchmark harness, and aggregation
of the CLI's machine-readable ``BENCH_*.json`` results."""

from .aggregate import (
    AggregateRow,
    AggregateSummary,
    aggregate_records,
    bench_payload,
    load_bench_files,
    render_aggregate,
    result_record,
    write_bench_file,
)
from .blowup import (
    PaxosBlowupExample,
    blowup_factor,
    blowup_lower_bound,
    interleaving_state_bound,
    paxos_blowup_bound,
    paxos_smallest_instance_example,
    paxos_transition_count,
    single_message_state_bound,
)
from .comparison import ResultComparison, compare_results, reduction_percentage
from .reporting import EvaluationTable, TableRow, format_count, format_duration

__all__ = [
    "AggregateRow",
    "AggregateSummary",
    "EvaluationTable",
    "PaxosBlowupExample",
    "ResultComparison",
    "TableRow",
    "aggregate_records",
    "bench_payload",
    "blowup_factor",
    "load_bench_files",
    "render_aggregate",
    "result_record",
    "write_bench_file",
    "blowup_lower_bound",
    "compare_results",
    "format_count",
    "format_duration",
    "interleaving_state_bound",
    "paxos_blowup_bound",
    "paxos_smallest_instance_example",
    "paxos_transition_count",
    "reduction_percentage",
    "single_message_state_bound",
]
