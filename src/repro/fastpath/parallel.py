"""Parallel fast-path engines: packed work-stealing DFS and frontier BFS.

Both engines reuse the PR-2/PR-3 coordination machinery — the lock-striped
:class:`~repro.parallel.worksteal.StripedClaimTable`, the
:class:`~repro.parallel.worksteal.WorkStealingDeques` termination protocol
and the level-barrier reply collection of :mod:`repro.parallel.worker` —
but change the currency that crosses process boundaries to pure integers:

* **Work-stealing DFS** (:func:`fast_parallel_dfs_search`): a stolen frame
  is ``(pending indices, execution-index path, ancestor fingerprints)`` —
  no state object at all.  The thief replays the path from the initial
  state through its warm memo tables (a handful of dict hits per edge), so
  stolen frames pickle in tens of bytes regardless of protocol size.
* **Frontier BFS** (:func:`fast_parallel_bfs_search`): fingerprint-native
  by construction.  A level delta is a list of ``(source, fingerprint,
  parent fingerprint, execution index, holds)`` int tuples; the packed
  child states never leave the worker that discovered them.  Ownership of
  the fingerprint partition (the splitmix64 ``shard_of`` routing) decides
  *deduplication*; the discovering worker keeps and later expands the
  states the owner accepts, so every state is expanded exactly once and
  visited counts equal the serial fingerprint-store BFS closure.

Fingerprints agree across workers because packed fingerprints equal
``GlobalState.fingerprint()`` and ``fork`` workers share the parent's hash
seed — the same invariant the object-graph parallel engines rely on.

The work-stealing coordinator additionally exposes *live* progress: workers
flush a batched claim counter into shared memory, and the coordinator's
wait loop emits ``progress`` events as the total crosses
:data:`~repro.engine.events.PROGRESS_INTERVAL` boundaries (the object
engine does the same since this PR).
"""

from __future__ import annotations

import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import Reducer, SearchConfig, SearchOutcome, _maybe_span
from ..checker.statestore import ShardedFingerprintStore, shard_of
from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..parallel.bfs import default_mp_context
from ..parallel.worker import collect_replies, shutdown_processes
from ..parallel.worksteal import (
    HEARTBEAT_EVERY,
    BatchedCounter,
    StallDetector,
    StripedClaimTable,
    WorkerTelemetryChannel,
    WorkStealingDeques,
    pending_indices,
)
from .compiler import FastSuccessorEngine, PackedExecution, PackedState
from .search import (
    fast_bfs_search,
    fast_dfs_search,
    make_invariant_checker,
    make_reduction_bridge,
)

__all__ = ["fast_parallel_bfs_search", "fast_parallel_dfs_search"]

_STAT_KEYS = (
    "transitions_executed",
    "revisits",
    "enabled_set_computations",
    "full_expansions",
    "reduced_expansions",
    "max_depth",
    "deadlock_states",
    "claimed",
)


@dataclass(frozen=True)
class FastStolenFrame:
    """A stealable unit of packed depth-first work — integers only.

    Attributes:
        pending: Enabled-order indices still to explore, or ``None`` for the
            unexpanded seed frame of the whole search.
        path: Execution-index path from the initial state to the frame's
            state; the thief replays it to rebuild the packed state.
        ancestors: Fingerprints of the strict ancestors on the DFS path
            (cycle-proviso input), root-to-parent order.
    """

    pending: Optional[Tuple[int, ...]]
    path: Tuple[int, ...] = ()
    ancestors: Tuple[int, ...] = ()


class _FastLocalFrame:
    """One entry of a fast worker's private DFS stack."""

    __slots__ = ("packed", "fingerprint", "enabled", "pending", "next_index",
                 "path", "successors")

    def __init__(self, packed: PackedState, path: Tuple[int, ...]) -> None:
        self.packed = packed
        self.fingerprint = packed[3]
        self.enabled: Tuple[PackedExecution, ...] = ()
        self.pending: Tuple[int, ...] = ()
        self.next_index = 0
        self.path = path
        self.successors: Dict[PackedExecution, PackedState] = {}


def replay_counterexample(
    engine: FastSuccessorEngine, invariant: Invariant, path: Tuple[int, ...]
) -> Counterexample:
    """Decode an execution-index path into a counterexample."""
    cursor = engine.initial_packed()
    initial = engine.decode(cursor)
    steps: List[Step] = []
    for index in path:
        execution = engine.enabled_packed(cursor)[index]
        cursor = engine.successor_packed(cursor, execution)
        steps.append(
            Step(execution=engine.execution_of(execution),
                 state=engine.decode(cursor))
        )
    return Counterexample(
        initial_state=initial, steps=tuple(steps), property_name=invariant.name
    )


# --------------------------------------------------------------------- #
# Work-stealing DFS
# --------------------------------------------------------------------- #
def _fast_worksteal_worker(
    worker_id: int,
    engine: FastSuccessorEngine,
    invariant: Invariant,
    reducer: Optional[Reducer],
    config: SearchConfig,
    table: StripedClaimTable,
    deques: WorkStealingDeques,
    result_queue,
    start_time: float,
    claims_counter,
    channel: Optional[WorkerTelemetryChannel] = None,
) -> None:
    """Worker body: replay stolen paths, explore subtrees packed.

    Live per-worker counters and heartbeats flow through ``channel`` on the
    same batched cadence as the claim counter.
    """
    try:
        protocol = engine.protocol
        holds = make_invariant_checker(engine, invariant, protocol,
                                       capacity=engine.memo_capacity)
        seen = ShardedFingerprintStore(num_shards=8)
        stats = {key: 0 for key in _STAT_KEYS}
        violations: List[Tuple[int, ...]] = []
        truncated = False
        claims = BatchedCounter(claims_counter)
        beats = 0

        def publish_telemetry() -> None:
            if channel is not None:
                channel.publish(worker_id, stats["claimed"],
                                stats["transitions_executed"],
                                stats["revisits"])

        def expand(frame: _FastLocalFrame, bridge) -> None:
            enabled = engine.enabled_packed(frame.packed)
            stats["enabled_set_computations"] += 1
            frame.enabled = enabled
            if config.check_deadlocks and not enabled:
                stats["deadlock_states"] += 1
            if bridge is None or len(enabled) <= 1:
                stats["full_expansions"] += 1
                frame.pending = tuple(range(len(enabled)))
                return
            reduced = bridge(frame.packed, enabled, frame.successors)
            if len(reduced) < len(enabled):
                stats["reduced_expansions"] += 1
            else:
                stats["full_expansions"] += 1
            frame.pending = pending_indices(enabled, reduced)

        def maybe_donate(
            task: FastStolenFrame, stack: List[_FastLocalFrame], floor: List[int]
        ) -> None:
            """Publish the shallowest unexplored sibling subtree (as ints)."""
            if deques.size_hint(worker_id) > 0:
                return
            top = len(stack) - 1
            floor[0] = min(floor[0], top)
            for position in range(floor[0], len(stack)):
                frame = stack[position]
                cut = frame.next_index
                if position == top:
                    cut += 1
                donated = frame.pending[cut:]
                if not donated:
                    if frame.next_index >= len(frame.pending):
                        floor[0] = position + 1
                    continue
                frame.pending = frame.pending[:cut]
                ancestors = task.ancestors + tuple(
                    below.fingerprint for below in stack[:position]
                )
                deques.publish(
                    worker_id,
                    FastStolenFrame(
                        pending=donated,
                        path=frame.path,
                        ancestors=ancestors,
                    ),
                )
                return

        def run_task(task: FastStolenFrame) -> None:
            nonlocal truncated, beats
            ancestor_fps = frozenset(task.ancestors)
            root = _FastLocalFrame(engine.replay_path(task.path), task.path)
            stack = [root]
            stack_fps: Set[int] = set()
            donate_floor = [0]
            bridge = None
            if reducer is not None:
                # Fingerprint-based proviso, mirroring the object-graph
                # work-stealing engine: the thief's local stack plus the
                # frame's ancestor fingerprints reconstruct the serial path.
                def fingerprint_on_stack(_words_of):
                    def on_stack(candidate):
                        fingerprint = candidate.fingerprint()
                        return (fingerprint in stack_fps
                                or fingerprint in ancestor_fps)

                    return on_stack

                bridge = make_reduction_bridge(
                    engine, protocol, reducer, fingerprint_on_stack
                )
            if task.pending is None:
                expand(root, bridge)
            else:
                root.enabled = engine.enabled_packed(root.packed)
                stats["enabled_set_computations"] += 1
                root.pending = task.pending
            stack_fps.add(root.fingerprint)

            while stack:
                if deques.stop.is_set():
                    return
                beats += 1
                if not beats & (HEARTBEAT_EVERY - 1):
                    publish_telemetry()
                if config.max_seconds is not None:
                    if time.perf_counter() - start_time > config.max_seconds:
                        truncated = True
                        deques.stop.set()
                        return
                maybe_donate(task, stack, donate_floor)
                frame = stack[-1]
                if frame.next_index >= len(frame.pending):
                    stack.pop()
                    stack_fps.discard(frame.fingerprint)
                    continue
                index = frame.pending[frame.next_index]
                frame.next_index += 1
                execution = frame.enabled[index]
                successor = frame.successors.get(execution)
                if successor is None:
                    successor = engine.successor_packed(frame.packed, execution)
                stats["transitions_executed"] += 1

                fingerprint = successor[3]
                if seen.contains_fingerprint(fingerprint):
                    stats["revisits"] += 1
                    continue
                seen.add_fingerprint(fingerprint)
                if not table.add_fingerprint(fingerprint):
                    stats["revisits"] += 1
                    continue
                stats["claimed"] += 1
                claims.increment()

                if not holds(successor):
                    violations.append(frame.path + (index,))
                    if config.stop_at_first_violation:
                        deques.stop.set()
                        return
                if config.max_states is not None and len(table) >= config.max_states:
                    truncated = True
                    deques.stop.set()
                    return
                if config.max_depth is not None and len(frame.path) >= config.max_depth:
                    truncated = True
                    continue

                child = _FastLocalFrame(successor, frame.path + (index,))
                expand(child, bridge)
                stack.append(child)
                stack_fps.add(fingerprint)
                if len(child.path) > stats["max_depth"]:
                    stats["max_depth"] = len(child.path)

        while not (deques.stop.is_set() or deques.done.is_set()):
            task = deques.next_task(worker_id)
            if task is None:
                claims.flush()
                publish_telemetry()
                while not (deques.stop.is_set() or deques.done.is_set()):
                    task = deques.try_acquire(worker_id)
                    if task is not None:
                        break
                    if channel is not None:
                        channel.beat(worker_id)
                    time.sleep(WorkStealingDeques.IDLE_SLEEP_SECONDS)
                if task is None:
                    break
            run_task(task)
        claims.flush()
        publish_telemetry()
        result_queue.put(("report", worker_id, stats, violations, truncated))
    except BaseException:
        deques.stop.set()
        result_queue.put(("error", worker_id, traceback.format_exc()))


def fast_parallel_dfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    workers: int = 2,
    reducer: Optional[Reducer] = None,
    mp_context=None,
    worker_timeout: Optional[float] = None,
    claim_capacity: Optional[int] = None,
    claim_stripes: Optional[int] = None,
    observer: Optional[Observer] = None,
    engine: Optional[FastSuccessorEngine] = None,
    telemetry=None,
) -> SearchOutcome:
    """Packed work-stealing DFS; coordination as in
    :func:`repro.parallel.dfs.parallel_dfs_search`, frames as int-tuples.

    ``workers <= 1`` (or a platform without ``fork``) delegates to
    :func:`~repro.fastpath.search.fast_dfs_search`.  Claims are
    fingerprint-based for every store kind, exactly like the object-graph
    work-stealing engine.  With an observer attached the coordinator also
    relays live ``worker-telemetry`` rows and ``worker-stalled`` warnings;
    with ``telemetry`` attached it records per-worker counters, steal
    traffic and the coordinator engine's memo behaviour.
    """
    config = config or SearchConfig()
    if engine is not None and engine.protocol is not protocol:
        raise ValueError("fast successor engine was built for a different protocol")
    if workers <= 1:
        return fast_dfs_search(protocol, invariant, config, reducer=reducer,
                               observer=observer, engine=engine,
                               telemetry=telemetry)
    context = mp_context if mp_context is not None else default_mp_context()
    if context is None:
        warnings.warn(
            "fast_parallel_dfs_search requires a fork-capable platform; "
            "falling back to the serial fast DFS",
            RuntimeWarning,
            stacklevel=2,
        )
        return fast_dfs_search(protocol, invariant, config, reducer=reducer,
                               observer=observer, engine=engine,
                               telemetry=telemetry)

    statistics = SearchStatistics()
    start_time = time.perf_counter()

    # Compile before forking so every worker inherits the warm tables.
    if engine is None:
        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
    initial = engine.initial_packed()
    statistics.states_visited = 1
    holds = make_invariant_checker(engine, invariant, protocol,
                                   capacity=engine.memo_capacity)
    if not holds(initial):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        counterexample = Counterexample(
            initial_state=engine.decode(initial), steps=(),
            property_name=invariant.name,
        )
        return SearchOutcome(False, False, counterexample, statistics)

    capacity = claim_capacity
    if capacity is None:
        capacity = 1 << 20
        if config.max_states is not None:
            capacity = max(capacity, 4 * config.max_states)
    stripes = claim_stripes if claim_stripes is not None else max(16, 4 * workers)
    table = StripedClaimTable(capacity=capacity, stripes=stripes, mp_context=context)
    table.add_fingerprint(initial[3])

    verified = True
    complete = True
    truncated = False
    counterexample: Optional[Counterexample] = None
    deadlock_states = 0
    manager = context.Manager()
    processes = []
    deques = None
    claims_counter = context.Value("l", 1)
    channel = WorkerTelemetryChannel(workers, mp_context=context)
    stall_detector = StallDetector(workers)
    try:
        deques = WorkStealingDeques(workers, manager, mp_context=context)
        deques.publish(
            0,
            FastStolenFrame(pending=None, path=(), ancestors=(initial[3],)),
        )
        result_queue = context.Queue()
        processes = [
            context.Process(
                target=_fast_worksteal_worker,
                args=(
                    worker_id,
                    engine,
                    invariant,
                    reducer,
                    config,
                    table,
                    deques,
                    result_queue,
                    start_time,
                    claims_counter,
                    channel,
                ),
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        for process in processes:
            process.start()

        deadline = None if worker_timeout is None else start_time + worker_timeout
        last_progress = 1
        last_rows = [None] * workers
        while not (deques.done.is_set() or deques.stop.is_set()):
            if deadline is not None and time.perf_counter() > deadline:
                deques.stop.set()
                raise RuntimeError(
                    "fast_parallel_dfs_search: timed out waiting for the workers"
                )
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    truncated = True
                    deques.stop.set()
                    break
            if any(not process.is_alive() for process in processes):
                break
            if observer is not None:
                claimed = claims_counter.value
                if claimed - last_progress >= PROGRESS_INTERVAL:
                    last_progress = claimed
                    emit(observer, "progress", states_visited=claimed)
                for worker_id, row in enumerate(channel.read_all()):
                    if row != last_rows[worker_id]:
                        last_rows[worker_id] = row
                        emit(observer, "worker-telemetry", worker=worker_id,
                             claimed=row[0], transitions_executed=row[1],
                             revisits=row[2])
                for worker_id, idle in stall_detector.check(channel.heartbeats()):
                    emit(observer, "worker-stalled", worker=worker_id,
                         idle_seconds=idle)
            deques.done.wait(0.05)

        remaining = None
        if deadline is not None:
            remaining = max(0.1, deadline - time.perf_counter())
        replies = collect_replies(result_queue, workers, "report", remaining, processes)
        violations: List[Tuple[int, ...]] = []
        for worker_id, stats, worker_violations, worker_truncated in replies:
            emit(observer, "worker-report", worker=worker_id,
                 claimed=stats["claimed"],
                 transitions_executed=stats["transitions_executed"],
                 revisits=stats["revisits"])
            statistics.transitions_executed += stats["transitions_executed"]
            statistics.revisits += stats["revisits"]
            statistics.enabled_set_computations += stats["enabled_set_computations"]
            statistics.full_expansions += stats["full_expansions"]
            statistics.reduced_expansions += stats["reduced_expansions"]
            statistics.max_depth = max(statistics.max_depth, stats["max_depth"])
            violations.extend(tuple(path) for path in worker_violations)
            truncated = truncated or worker_truncated
            if telemetry is not None:
                telemetry.record_worker(worker_id, stats)
        statistics.states_visited = len(table)
        deadlock_states = sum(reply[1]["deadlock_states"] for reply in replies)
        if telemetry is not None:
            telemetry.record_worksteal(
                steals=deques.steal_count(),
                publishes=deques.publish_count(),
                claim_table=table,
            )
            telemetry.record_fastpath(engine)

        if violations:
            verified = False
            best = min(violations, key=lambda path: (len(path), path))
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(best))
            with _maybe_span(telemetry, "ce-replay", path_length=len(best)):
                counterexample = replay_counterexample(engine, invariant, best)
        if truncated or (not verified and config.stop_at_first_violation):
            complete = False
    finally:
        if deques is not None:
            deques.stop.set()
        shutdown_processes(processes, queues=[result_queue],
                           telemetry=telemetry)
        manager.shutdown()

    statistics.elapsed_seconds = time.perf_counter() - start_time
    return SearchOutcome(
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=statistics,
        deadlock_states=deadlock_states,
    )


# --------------------------------------------------------------------- #
# Frontier BFS
# --------------------------------------------------------------------- #
def _fast_frontier_worker(
    worker_id: int,
    num_workers: int,
    engine: FastSuccessorEngine,
    invariant: Invariant,
    task_queue,
    result_queue,
) -> None:
    """Fingerprint-native frontier worker.

    Ownership (the ``shard_of`` partition) governs *deduplication* only;
    the worker that discovered a state keeps its packed form and expands it
    once the owner accepts the fingerprint.  The command protocol mirrors
    :func:`repro.parallel.worker.frontier_worker` with one extra ``adopt``
    barrier carrying the accepted fingerprints back to their discoverers.
    """
    try:
        protocol = engine.protocol
        holds = make_invariant_checker(engine, invariant, protocol,
                                       capacity=engine.memo_capacity)
        shard: Set[int] = set()
        frontier: List[PackedState] = []
        pending_children: Dict[int, PackedState] = {}
        while True:
            command, payload = task_queue.get()
            if command == "stop":
                return
            if command == "seed":
                initial = engine.initial_packed()
                if shard_of(initial[3], num_workers) == worker_id:
                    shard.add(initial[3])
                    frontier = [initial]
                else:
                    frontier = []
                result_queue.put(("seeded", worker_id))
            elif command == "expand":
                outgoing: List[List[Tuple[int, int, int, int, bool]]] = [
                    [] for _ in range(num_workers)
                ]
                pending_children = {}
                expansions = 0
                transitions = 0
                for packed in frontier:
                    enabled = engine.enabled_packed(packed)
                    expansions += 1
                    parent_fp = packed[3]
                    for index, execution in enumerate(enabled):
                        successor = engine.successor_packed(packed, execution)
                        transitions += 1
                        fingerprint = successor[3]
                        if fingerprint not in pending_children:
                            pending_children[fingerprint] = successor
                        destination = shard_of(fingerprint, num_workers)
                        outgoing[destination].append(
                            (worker_id, fingerprint, parent_fp, index,
                             holds(successor))
                        )
                result_queue.put(
                    ("expanded", worker_id, outgoing, expansions, transitions)
                )
            elif command == "absorb":
                accepted: List[Tuple[int, int, int, int]] = []
                violations: List[int] = []
                revisits = 0
                for source, fingerprint, parent_fp, exec_index, holds_flag in payload:
                    if fingerprint in shard:
                        revisits += 1
                        continue
                    shard.add(fingerprint)
                    accepted.append((source, fingerprint, parent_fp, exec_index))
                    if not holds_flag:
                        violations.append(fingerprint)
                result_queue.put(
                    ("absorbed", worker_id, len(accepted), revisits,
                     violations, accepted)
                )
            elif command == "adopt":
                frontier = [pending_children[fingerprint] for fingerprint in payload]
                pending_children = {}
                result_queue.put(("adopted", worker_id, len(frontier)))
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown worker command: {command!r}")
    except BaseException:
        result_queue.put(("error", worker_id, traceback.format_exc()))


def fast_parallel_bfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    workers: int = 2,
    mp_context=None,
    worker_timeout: Optional[float] = None,
    observer: Optional[Observer] = None,
    engine: Optional[FastSuccessorEngine] = None,
    telemetry=None,
) -> SearchOutcome:
    """Level-synchronous packed frontier BFS with int-tuple deltas.

    Visited counts equal the serial fingerprint-store BFS closure at every
    worker count (the delta exchange changes who *stores* a fingerprint,
    never whether a state is expanded).  Deduplication is fingerprint-based
    by construction, which is why the registry only offers this engine for
    the fingerprint store kinds.  ``workers <= 1`` (or no ``fork``)
    delegates to :func:`~repro.fastpath.search.fast_bfs_search`.  With an
    observer attached, every expand barrier additionally relays one
    ``worker-telemetry`` event per worker (cumulative expansions and
    transitions) — no extra IPC, the counts ride the existing replies.
    """
    config = config or SearchConfig()
    if engine is not None and engine.protocol is not protocol:
        raise ValueError("fast successor engine was built for a different protocol")
    if workers <= 1:
        return fast_bfs_search(protocol, invariant, config, observer=observer,
                               engine=engine, telemetry=telemetry)
    context = mp_context if mp_context is not None else default_mp_context()
    if context is None:
        warnings.warn(
            "fast_parallel_bfs_search requires a fork-capable platform; "
            "falling back to the serial fast BFS",
            RuntimeWarning,
            stacklevel=2,
        )
        return fast_bfs_search(protocol, invariant, config, observer=observer,
                               engine=engine, telemetry=telemetry)

    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is None:
        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
    initial = engine.initial_packed()
    statistics.states_visited = 1
    holds = make_invariant_checker(engine, invariant, protocol,
                                   capacity=engine.memo_capacity)
    if not holds(initial):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        counterexample = Counterexample(
            initial_state=engine.decode(initial), steps=(),
            property_name=invariant.name,
        )
        return SearchOutcome(False, False, counterexample, statistics)

    task_queues = [context.Queue() for _ in range(workers)]
    result_queue = context.Queue()
    processes = [
        context.Process(
            target=_fast_frontier_worker,
            args=(
                worker_id,
                workers,
                engine,
                invariant,
                task_queues[worker_id],
                result_queue,
            ),
            daemon=True,
        )
        for worker_id in range(workers)
    ]

    #: fingerprint -> None (initial) or (parent fingerprint, exec index).
    parents: Dict[int, Optional[Tuple[int, int]]] = {initial[3]: None}

    def rebuild(violating_fp: int) -> Counterexample:
        path: List[int] = []
        cursor = violating_fp
        while parents[cursor] is not None:
            parent_fp, exec_index = parents[cursor]
            path.append(exec_index)
            cursor = parent_fp
        path.reverse()
        return replay_counterexample(engine, invariant, tuple(path))

    verified = True
    complete = True
    counterexample: Optional[Counterexample] = None
    peak_frontier = 1
    worker_totals = [[0, 0] for _ in range(workers)]  # expansions, transitions
    try:
        for process in processes:
            process.start()
        for queue in task_queues:
            queue.put(("seed", None))
        collect_replies(result_queue, workers, "seeded", worker_timeout, processes)

        frontier_total = 1
        depth = 0
        while frontier_total:
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    complete = False
                    break
            if config.max_depth is not None and depth >= config.max_depth:
                complete = False
                break

            for queue in task_queues:
                queue.put(("expand", None))
            expanded = collect_replies(
                result_queue, workers, "expanded", worker_timeout, processes
            )
            for reply_worker, outgoing, expansions, transitions in expanded:
                statistics.enabled_set_computations += expansions
                statistics.full_expansions += expansions
                statistics.transitions_executed += transitions
                totals = worker_totals[reply_worker]
                totals[0] += expansions
                totals[1] += transitions
                if observer is not None and expansions:
                    emit(observer, "worker-telemetry", worker=reply_worker,
                         expansions=totals[0], transitions_executed=totals[1])

            level_deltas = 0
            for destination in range(workers):
                batch: List[Tuple[int, int, int, int, bool]] = []
                for _worker_id, outgoing, _expansions, _transitions in expanded:
                    batch.extend(outgoing[destination])
                level_deltas += len(batch)
                task_queues[destination].put(("absorb", batch))
            absorbed = collect_replies(
                result_queue, workers, "absorbed", worker_timeout, processes
            )

            level_new = 0
            level_violations: List[int] = []
            adopt_lists: List[List[int]] = [[] for _ in range(workers)]
            for _worker_id, new_count, revisits, violations, accepted in absorbed:
                level_new += new_count
                statistics.revisits += revisits
                level_violations.extend(violations)
                for source, fingerprint, parent_fp, exec_index in accepted:
                    parents[fingerprint] = (parent_fp, exec_index)
                    adopt_lists[source].append(fingerprint)
            statistics.states_visited += level_new

            if level_violations:
                verified = False
                counterexample = rebuild(level_violations[0])
                emit(observer, "violation-found",
                     states_visited=statistics.states_visited, depth=depth + 1)
                if config.stop_at_first_violation:
                    complete = False
                    break
            if (
                config.max_states is not None
                and statistics.states_visited >= config.max_states
            ):
                complete = False
                depth += 1
                statistics.max_depth = max(statistics.max_depth, depth)
                break

            for worker_id in range(workers):
                task_queues[worker_id].put(("adopt", adopt_lists[worker_id]))
            collect_replies(
                result_queue, workers, "adopted", worker_timeout, processes
            )

            if level_new:
                emit(observer, "level-completed", depth=depth + 1,
                     new_states=level_new, deltas=level_deltas,
                     states_visited=statistics.states_visited)
            frontier_total = level_new
            peak_frontier = max(peak_frontier, frontier_total)
            depth += 1
            if frontier_total:
                statistics.max_depth = max(statistics.max_depth, depth)
    finally:
        for queue in task_queues:
            try:
                queue.put(("stop", None))
            except Exception:  # pragma: no cover - queue already broken
                pass
        shutdown_processes(processes, queues=[result_queue] + task_queues,
                           telemetry=telemetry)

    statistics.elapsed_seconds = time.perf_counter() - start_time
    if telemetry is not None:
        telemetry.metrics.gauge(
            "frontier_peak", "widest BFS level explored"
        ).set(peak_frontier)
        telemetry.record_store(parents)
        telemetry.record_fastpath(engine)
        for worker_id, (_expansions, transitions) in enumerate(worker_totals):
            telemetry.record_worker(worker_id,
                                    {"transitions_executed": transitions})
    return SearchOutcome(
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=statistics,
    )
