"""Serial fingerprint-native search loops over packed states.

These mirror :func:`repro.checker.search.dfs_search` and
:func:`~repro.checker.search.bfs_search` decision for decision — same
statistics semantics, same budget handling, same observer events, same
counterexamples — but the currency of the loop is the packed
:data:`~repro.fastpath.compiler.PackedState` word tuple.  Object-graph
states are materialised in exactly three places, all off the hot path:

* **invariant evaluation misses** — verdicts of invariants declared
  ``network_sensitive=False`` (all bundled properties) are memoised per
  local-state word vector, which is tiny compared to the state count; a
  network-sensitive invariant is evaluated per state via ``decode`` and
  stays correct, just slower;
* **the reducer bridge** — the stubborn-set reducers are object-graph
  functions, so when a reduction is configured the expanded state and its
  executions are decoded for the reducer's benefit while dedup, successor
  application and hashing stay packed;
* **counterexample replay** — only the violating path is decoded.

Store semantics match the object engine's: ``"full"`` deduplicates exact
packed words (interning is injective, so word equality is state equality),
the fingerprint kinds deduplicate the packed fingerprint, which is
bit-identical to ``GlobalState.fingerprint()``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import (
    ReductionContext,
    Reducer,
    SearchConfig,
    SearchOutcome,
    _maybe_span,
)
from ..checker.statestore import ShardedFingerprintStore
from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..mp.state import GlobalState
from .compiler import FastSuccessorEngine, PackedExecution, PackedState


class _PackedStore:
    """Visited-set over packed states with the serial stores' semantics."""

    __slots__ = ("kind", "_words", "_fingerprints", "_sharded")

    def __init__(self, kind: str, shards: int) -> None:
        self.kind = kind
        self._words: Set[Tuple[int, ...]] = set()
        self._fingerprints: Set[int] = set()
        self._sharded: Optional[ShardedFingerprintStore] = None
        if kind == "sharded-fingerprint":
            self._sharded = ShardedFingerprintStore(num_shards=shards)
        elif kind not in ("full", "fingerprint"):
            raise ValueError(f"unknown packed store kind: {kind!r}")

    def add(self, packed: PackedState) -> bool:
        if self.kind == "full":
            words = packed[0]
            if words in self._words:
                return False
            self._words.add(words)
            return True
        if self._sharded is not None:
            return self._sharded.add_fingerprint(packed[3])
        fingerprint = packed[3]
        if fingerprint in self._fingerprints:
            return False
        self._fingerprints.add(fingerprint)
        return True

    def __len__(self) -> int:
        if self.kind == "full":
            return len(self._words)
        if self._sharded is not None:
            return len(self._sharded)
        return len(self._fingerprints)

    def shard_sizes(self):
        """Per-shard occupancy when sharded, else None (duck-typed to match
        :meth:`ShardedFingerprintStore.shard_sizes` for telemetry)."""
        if self._sharded is not None:
            return self._sharded.shard_sizes()
        return None


def _memoised_predicate(
    engine: FastSuccessorEngine,
    evaluate: Callable[[GlobalState], bool],
    network_sensitive: bool,
    capacity: Optional[int] = None,
) -> Callable[[PackedState], bool]:
    """Packed evaluation of a state predicate, memoised per locals vector
    when sound (``network_sensitive=False``), optionally LRU-bounded."""
    if network_sensitive:
        def check_sensitive(packed: PackedState) -> bool:
            return bool(evaluate(engine.decode(packed)))

        return check_sensitive

    if capacity is not None and capacity < 1:
        raise ValueError("memo capacity must be at least 1 (or None)")
    count = engine.num_processes
    from collections import OrderedDict

    memo: "OrderedDict[Tuple[int, ...], bool]" = OrderedDict()

    def check(packed: PackedState) -> bool:
        key = packed[0][:count]
        verdict = memo.get(key)
        if verdict is None:
            verdict = bool(evaluate(engine.decode(packed)))
            memo[key] = verdict
            if capacity is not None and len(memo) > capacity:
                memo.popitem(last=False)
        elif capacity is not None:
            memo.move_to_end(key)
        return verdict

    return check


def make_invariant_checker(
    engine: FastSuccessorEngine, invariant: Invariant, protocol: Protocol,
    capacity: Optional[int] = None,
) -> Callable[[PackedState], bool]:
    """Packed invariant evaluation, memoised per locals vector when sound.

    Invariants declaring ``network_sensitive=False`` read process states
    only, so their verdict is a pure function of the locals word prefix —
    the memo turns per-state evaluation into one dict lookup.  Sensitive
    (or undeclared, the safe default) invariants decode every state.
    ``capacity`` LRU-bounds the memo (``None`` keeps it unbounded).  Works
    for any property exposing ``holds_in``/``network_sensitive`` — liveness
    goals (:class:`~repro.checker.property.Eventually`) reuse it.
    """
    return _memoised_predicate(
        engine,
        lambda state: invariant.holds_in(state, protocol),
        getattr(invariant, "network_sensitive", True),
        capacity,
    )


class _FastFrame:
    """One entry of the packed DFS stack."""

    __slots__ = ("packed", "pending", "next_index", "via", "successors")

    def __init__(self, packed: PackedState, via: Optional[PackedExecution]) -> None:
        self.packed = packed
        self.pending: Tuple[PackedExecution, ...] = ()
        self.next_index = 0
        self.via = via
        self.successors: Dict[PackedExecution, PackedState] = {}


def make_reduction_bridge(
    engine: FastSuccessorEngine,
    protocol: Protocol,
    reducer: Reducer,
    make_on_stack: Callable[
        [Dict[GlobalState, Tuple[int, ...]]], Callable[[GlobalState], bool]
    ],
):
    """Adapter running an object-graph reducer over a packed frame.

    Returns ``bridge(packed, enabled, successor_memo) -> reduced packed
    executions``.  The expanded state and its executions are decoded once;
    proviso successors computed for the reducer are kept in the frame's
    packed memo so the search reuses them on expansion, mirroring the
    object engine's per-frame memoisation.

    ``make_on_stack`` builds the cycle-proviso predicate; it receives the
    bridge's decoded-state -> packed-words map (filled as the reducer asks
    for successors) so word-exact callers can avoid re-encoding, while the
    fingerprint-based work-stealing caller ignores it.
    """

    def bridge(
        packed: PackedState,
        enabled: Tuple[PackedExecution, ...],
        successor_memo: Dict[PackedExecution, PackedState],
    ) -> Tuple[PackedExecution, ...]:
        state = engine.decode(packed)
        executions = tuple(engine.execution_of(p) for p in enabled)
        packed_of = dict(zip(executions, enabled))
        decoded: Dict[PackedExecution, GlobalState] = {}
        words_of: Dict[GlobalState, Tuple[int, ...]] = {}

        def successor_fn(execution):
            target = packed_of[execution]
            packed_successor = successor_memo.get(target)
            if packed_successor is None:
                packed_successor = engine.successor_packed(packed, target)
                successor_memo[target] = packed_successor
            child = decoded.get(target)
            if child is None:
                child = engine.decode(packed_successor)
                decoded[target] = child
                words_of[child] = packed_successor[0]
            return child

        context = ReductionContext(
            state=state,
            enabled=executions,
            protocol=protocol,
            successor=successor_fn,
            on_stack=make_on_stack(words_of),
            engine=None,
        )
        reduced = reducer(context)
        if reduced is executions or len(reduced) == len(executions):
            return enabled
        return tuple(packed_of[execution] for execution in reduced)

    return bridge


def words_on_stack_factory(
    engine: FastSuccessorEngine, on_stack_words: Set[Tuple[int, ...]]
):
    """Word-exact cycle-proviso predicate for :func:`make_reduction_bridge`
    (the serial DFS: membership in the live packed-words stack set)."""

    def make_on_stack(words_of: Dict[GlobalState, Tuple[int, ...]]):
        def on_stack(candidate: GlobalState) -> bool:
            words = words_of.get(candidate)
            if words is None:
                words = engine.encode(candidate)[0]
            return words in on_stack_words

        return on_stack

    return make_on_stack


def _path_from_stack(
    engine: FastSuccessorEngine,
    stack: List[_FastFrame],
    final: Optional[Tuple[PackedExecution, PackedState]],
    property_name: str,
) -> Counterexample:
    """Decode the violating path from the packed DFS stack."""
    initial = engine.decode(stack[0].packed)
    steps = []
    for frame in stack[1:]:
        steps.append(
            Step(execution=engine.execution_of(frame.via),
                 state=engine.decode(frame.packed))
        )
    if final is not None:
        execution, packed = final
        steps.append(
            Step(execution=engine.execution_of(execution),
                 state=engine.decode(packed))
        )
    return Counterexample(initial_state=initial, steps=tuple(steps),
                          property_name=property_name)


def fast_dfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    reducer: Optional[Reducer] = None,
    observer: Optional[Observer] = None,
    engine: Optional[FastSuccessorEngine] = None,
    telemetry=None,
) -> SearchOutcome:
    """Packed-state depth-first search; semantics of ``dfs_search`` exactly."""
    config = config or SearchConfig()
    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("fast successor engine was built for a different protocol")
    if engine is None:
        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
    holds = make_invariant_checker(engine, invariant, protocol,
                                   capacity=config.fastpath_memo_capacity)

    def record_telemetry() -> None:
        if telemetry is None:
            return
        telemetry.record_store(store)
        telemetry.record_fastpath(engine)

    store: Optional[_PackedStore] = None
    if config.stateful:
        store = _PackedStore(config.state_store, config.state_store_shards)

    initial = engine.initial_packed()
    if store is not None:
        store.add(initial)
    statistics.states_visited = 1

    counterexample: Optional[Counterexample] = None
    verified = True
    complete = True
    deadlock_states = 0

    if not holds(initial):
        counterexample = Counterexample(
            initial_state=engine.decode(initial), steps=(),
            property_name=invariant.name,
        )
        verified = False
        emit(observer, "violation-found", states_visited=1, depth=0)
        if config.stop_at_first_violation:
            statistics.elapsed_seconds = time.perf_counter() - start_time
            record_telemetry()
            return SearchOutcome(False, False, counterexample, statistics)

    on_stack_words: Set[Tuple[int, ...]] = {initial[0]}
    bridge = None
    if reducer is not None:
        bridge = make_reduction_bridge(
            engine, protocol, reducer,
            words_on_stack_factory(engine, on_stack_words),
        )

    def expand(frame: _FastFrame) -> None:
        nonlocal deadlock_states
        enabled = engine.enabled_packed(frame.packed)
        statistics.enabled_set_computations += 1
        if config.check_deadlocks and not enabled:
            deadlock_states += 1
        if bridge is None or len(enabled) <= 1:
            statistics.full_expansions += 1
            frame.pending = enabled
            return
        reduced = bridge(frame.packed, enabled, frame.successors)
        if len(reduced) < len(enabled):
            statistics.reduced_expansions += 1
        else:
            statistics.full_expansions += 1
        frame.pending = reduced

    root = _FastFrame(initial, via=None)
    expand(root)
    stack: List[_FastFrame] = [root]

    while stack:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                complete = False
                break
        frame = stack[-1]
        if frame.next_index >= len(frame.pending):
            stack.pop()
            on_stack_words.discard(frame.packed[0])
            continue
        execution = frame.pending[frame.next_index]
        frame.next_index += 1

        successor = frame.successors.get(execution)
        if successor is None:
            successor = engine.successor_packed(frame.packed, execution)
        statistics.transitions_executed += 1

        if store is not None:
            if not store.add(successor):
                statistics.revisits += 1
                continue
            statistics.states_visited = len(store)
        else:
            if successor[0] in on_stack_words:
                statistics.revisits += 1
                continue
            statistics.states_visited += 1
        if observer is not None and statistics.states_visited % PROGRESS_INTERVAL == 0:
            emit(observer, "progress", states_visited=statistics.states_visited,
                 transitions_executed=statistics.transitions_executed)

        if not holds(successor):
            verified = False
            counterexample = _path_from_stack(
                engine, stack, (execution, successor), invariant.name
            )
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            if config.stop_at_first_violation:
                complete = False
                break

        if config.max_states is not None and statistics.states_visited >= config.max_states:
            complete = False
            break
        if config.max_depth is not None and len(stack) > config.max_depth:
            complete = False
            continue

        child = _FastFrame(successor, via=execution)
        expand(child)
        stack.append(child)
        on_stack_words.add(successor[0])
        statistics.max_depth = max(statistics.max_depth, len(stack) - 1)

    statistics.elapsed_seconds = time.perf_counter() - start_time
    record_telemetry()
    return SearchOutcome(
        verified=verified,
        complete=complete and verified if config.stop_at_first_violation else complete,
        counterexample=counterexample,
        statistics=statistics,
        deadlock_states=deadlock_states,
    )


def fast_bfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    observer: Optional[Observer] = None,
    engine: Optional[FastSuccessorEngine] = None,
    telemetry=None,
) -> SearchOutcome:
    """Packed-state breadth-first search; semantics of ``bfs_search`` exactly."""
    config = config or SearchConfig()
    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("fast successor engine was built for a different protocol")
    if engine is None:
        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
    holds = make_invariant_checker(engine, invariant, protocol,
                                   capacity=config.fastpath_memo_capacity)

    initial = engine.initial_packed()
    store = _PackedStore(config.state_store, config.state_store_shards)
    store.add(initial)
    statistics.states_visited = 1
    peak_frontier = 1

    def record_telemetry() -> None:
        if telemetry is None:
            return
        telemetry.record_store(store)
        telemetry.record_fastpath(engine)
        telemetry.metrics.gauge(
            "frontier_peak", "largest BFS frontier level"
        ).set(peak_frontier)

    #: words -> None (initial) or (parent packed, packed execution).
    parents: Dict[Tuple[int, ...], Optional[Tuple[PackedState, PackedExecution]]] = {
        initial[0]: None
    }
    counterexample: Optional[Counterexample] = None
    verified = True
    complete = True

    def rebuild(packed: PackedState) -> Counterexample:
        steps = []
        cursor = packed
        while parents[cursor[0]] is not None:
            predecessor, execution = parents[cursor[0]]
            steps.append(
                Step(execution=engine.execution_of(execution),
                     state=engine.decode(cursor))
            )
            cursor = predecessor
        steps.reverse()
        return Counterexample(initial_state=engine.decode(initial),
                              steps=tuple(steps), property_name=invariant.name)

    if not holds(initial):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        record_telemetry()
        return SearchOutcome(False, False, rebuild(initial), statistics)

    frontier = [initial]
    depth = 0
    while frontier:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                complete = False
                break
        if config.max_depth is not None and depth >= config.max_depth:
            complete = False
            break
        next_frontier = []
        for packed in frontier:
            enabled = engine.enabled_packed(packed)
            statistics.enabled_set_computations += 1
            statistics.full_expansions += 1
            for execution in enabled:
                successor = engine.successor_packed(packed, execution)
                statistics.transitions_executed += 1
                if not store.add(successor):
                    statistics.revisits += 1
                    continue
                statistics.states_visited = len(store)
                parents[successor[0]] = (packed, execution)
                if not holds(successor):
                    verified = False
                    counterexample = rebuild(successor)
                    emit(observer, "violation-found",
                         states_visited=statistics.states_visited, depth=depth + 1)
                    if config.stop_at_first_violation:
                        statistics.elapsed_seconds = time.perf_counter() - start_time
                        record_telemetry()
                        return SearchOutcome(False, False, counterexample, statistics)
                if config.max_states is not None and statistics.states_visited >= config.max_states:
                    complete = False
                    next_frontier = []
                    statistics.max_depth = max(statistics.max_depth, depth + 1)
                    break
                next_frontier.append(successor)
            else:
                continue
            break
        frontier = next_frontier
        peak_frontier = max(peak_frontier, len(frontier))
        depth += 1
        if frontier:
            statistics.max_depth = max(statistics.max_depth, depth)
            emit(observer, "level-completed", depth=depth,
                 new_states=len(frontier),
                 states_visited=statistics.states_visited)

    statistics.elapsed_seconds = time.perf_counter() - start_time
    record_telemetry()
    return SearchOutcome(verified=verified, complete=complete,
                         counterexample=counterexample, statistics=statistics)


def fast_ndfs_search(
    protocol: Protocol,
    prop,
    config: Optional[SearchConfig] = None,
    observer: Optional[Observer] = None,
    engine: Optional[FastSuccessorEngine] = None,
    telemetry=None,
) -> SearchOutcome:
    """Packed-state nested DFS; mirrors
    :func:`repro.checker.search.ndfs_search` decision for decision.

    The blue/cyan/red marks are kept over packed keys — exact word tuples
    for the ``"full"`` store, fingerprints for the fingerprint kinds — and
    only the violating lasso is decoded.  Verdicts, visited counts and
    trace lengths are identical to the object-graph nested DFS.
    """
    config = config or SearchConfig()
    if not config.stateful:
        raise ValueError(
            "nested DFS is stateful by construction (the blue/red marks "
            "are the algorithm); config.stateful must be True"
        )
    if config.state_store not in ("full", "fingerprint", "sharded-fingerprint"):
        raise ValueError(
            f"nested DFS needs a real visited-state store, got "
            f"state_store={config.state_store!r}"
        )
    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("fast successor engine was built for a different protocol")
    if engine is None:
        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
    network_sensitive = getattr(prop, "network_sensitive", True)
    prunes = _memoised_predicate(
        engine, lambda state: prop.prunes(state, protocol),
        network_sensitive, config.fastpath_memo_capacity,
    )
    accepting = _memoised_predicate(
        engine, lambda state: prop.accepting(state, protocol),
        network_sensitive, config.fastpath_memo_capacity,
    )

    exact = config.state_store == "full"

    def key(packed: PackedState):
        return packed[0] if exact else packed[3]

    def expand(packed: PackedState) -> Tuple[PackedExecution, ...]:
        enabled = engine.enabled_packed(packed)
        statistics.enabled_set_computations += 1
        statistics.full_expansions += 1
        return enabled

    initial = engine.initial_packed()
    discovered = {key(initial)}
    statistics.states_visited = 1

    if prunes(initial):
        statistics.elapsed_seconds = time.perf_counter() - start_time
        return SearchOutcome(True, True, None, statistics)

    cyan = {key(initial)}
    blue = set()
    red = set()
    complete = True

    def lasso(stack: List[_FastFrame],
              final: Tuple[PackedExecution, PackedState],
              extra: List[_FastFrame], cycle_key) -> Counterexample:
        steps = [
            Step(execution=engine.execution_of(frame.via),
                 state=engine.decode(frame.packed))
            for frame in stack[1:]
        ]
        steps.extend(
            Step(execution=engine.execution_of(frame.via),
                 state=engine.decode(frame.packed))
            for frame in extra
        )
        execution, packed = final
        steps.append(Step(execution=engine.execution_of(execution),
                          state=engine.decode(packed)))
        path_packed = [stack[0].packed] + [frame.packed for frame in stack[1:]]
        cycle_start = next(
            index for index, entry in enumerate(path_packed)
            if key(entry) == cycle_key
        )
        return Counterexample(
            initial_state=engine.decode(stack[0].packed), steps=tuple(steps),
            property_name=prop.name, cycle_start=cycle_start,
        )

    def stutter(stack: List[_FastFrame],
                final: Optional[Tuple[PackedExecution, PackedState]]) -> Counterexample:
        steps = [
            Step(execution=engine.execution_of(frame.via),
                 state=engine.decode(frame.packed))
            for frame in stack[1:]
        ]
        if final is not None:
            execution, packed = final
            steps.append(Step(execution=engine.execution_of(execution),
                              state=engine.decode(packed)))
        return Counterexample(
            initial_state=engine.decode(stack[0].packed), steps=tuple(steps),
            property_name=prop.name, cycle_start=len(steps),
        )

    def red_search(stack: List[_FastFrame]) -> Optional[Counterexample]:
        seed = stack[-1]
        root = _FastFrame(seed.packed, via=None)
        root.pending = expand(seed.packed)
        red_stack = [root]
        while red_stack:
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    return None
            frame = red_stack[-1]
            if frame.next_index >= len(frame.pending):
                red_stack.pop()
                continue
            execution = frame.pending[frame.next_index]
            frame.next_index += 1
            successor = engine.successor_packed(frame.packed, execution)
            statistics.transitions_executed += 1
            skey = key(successor)
            if skey in cyan:
                return lasso(stack, (execution, successor),
                             red_stack[1:], skey)
            if skey in red:
                continue
            if skey not in discovered:
                discovered.add(skey)
                statistics.states_visited = len(discovered)
            if prunes(successor):
                red.add(skey)
                continue
            red.add(skey)
            child = _FastFrame(successor, via=execution)
            child.pending = expand(successor)
            red_stack.append(child)
        red.add(key(seed.packed))
        return None

    def finish(verified: bool, is_complete: bool,
               counterexample: Optional[Counterexample]) -> SearchOutcome:
        statistics.elapsed_seconds = time.perf_counter() - start_time
        if telemetry is not None:
            telemetry.record_fastpath(engine)
            telemetry.metrics.gauge(
                "state_store_size", "visited states/fingerprints held"
            ).set(len(discovered))
            telemetry.metrics.gauge(
                "ndfs_red_states", "states marked red by the nested search"
            ).set(len(red))
        return SearchOutcome(verified, is_complete, counterexample, statistics)

    root = _FastFrame(initial, via=None)
    root.pending = expand(initial)
    stack: List[_FastFrame] = [root]
    if not root.pending and accepting(initial):
        emit(observer, "violation-found", states_visited=1, depth=0)
        return finish(False, False, stutter(stack, None))

    while stack:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                return finish(True, False, None)
        frame = stack[-1]
        if frame.next_index >= len(frame.pending):
            if accepting(frame.packed):
                with _maybe_span(telemetry, "red-phase", stack_depth=len(stack)):
                    counterexample = red_search(stack)
                if counterexample is not None:
                    emit(observer, "violation-found",
                         states_visited=statistics.states_visited,
                         depth=len(stack))
                    return finish(False, False, counterexample)
                if config.max_seconds is not None:
                    if time.perf_counter() - start_time > config.max_seconds:
                        return finish(True, False, None)
            stack.pop()
            cyan.discard(key(frame.packed))
            blue.add(key(frame.packed))
            continue
        execution = frame.pending[frame.next_index]
        frame.next_index += 1

        successor = engine.successor_packed(frame.packed, execution)
        statistics.transitions_executed += 1
        skey = key(successor)

        if skey in cyan and (accepting(frame.packed) or accepting(successor)):
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            return finish(False, False,
                          lasso(stack, (execution, successor), [], skey))
        if skey in blue or skey in cyan:
            statistics.revisits += 1
            continue
        if skey not in discovered:
            discovered.add(skey)
            statistics.states_visited = len(discovered)
            if observer is not None and statistics.states_visited % PROGRESS_INTERVAL == 0:
                emit(observer, "progress",
                     states_visited=statistics.states_visited,
                     transitions_executed=statistics.transitions_executed)
        if prunes(successor):
            blue.add(skey)
            continue
        if config.max_states is not None and statistics.states_visited >= config.max_states:
            return finish(True, False, None)
        if config.max_depth is not None and len(stack) > config.max_depth:
            complete = False
            continue

        child = _FastFrame(successor, via=execution)
        child.pending = expand(successor)
        if not child.pending and accepting(successor):
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            return finish(False, False, stutter(stack, (execution, successor)))
        stack.append(child)
        cyan.add(skey)
        statistics.max_depth = max(statistics.max_depth, len(stack) - 1)

    return finish(True, complete, None)
