"""Packed-state fast-path successor engine.

This package is the per-state-constant answer to the ROADMAP's "the
per-state cost is the bottleneck again once search is parallel" item: a
protocol *compiler* that runs once per check and lowers the object-graph
model into table-driven form, plus search loops that operate on the lowered
representation end to end.

* :class:`FastSuccessorEngine` (:mod:`repro.fastpath.compiler`) interns
  local states and messages to small integers, packs a global state into a
  flat tuple of machine words, specialises every transition's guard/action
  into memo tables over those ids, and maintains the PR-1 incremental XOR
  fingerprint directly over words — packed fingerprints are bit-identical
  to :meth:`repro.mp.state.GlobalState.fingerprint`.
* :mod:`repro.fastpath.search` holds the serial fingerprint-native DFS/BFS
  loops; object-graph states are materialised only for counterexample
  replay, invariant-memo misses and the stubborn-set reducer bridge — never
  on the hot successor path.
* :mod:`repro.fastpath.parallel` holds the parallel variants: a
  work-stealing DFS whose stolen frames are pure int-tuples (thieves replay
  the execution-index path through the warm memo tables) and a
  fingerprint-native frontier BFS whose level deltas are int 4-tuples.

The engines are registered as ``serial-dfs-fast`` / ``serial-bfs-fast`` /
``frontier-bfs-fast`` / ``worksteal-dfs-fast`` behind the plan layer's
``successors="fast"`` axis (see :mod:`repro.engine.engines`).
"""

from .compiler import FastSuccessorEngine, PackedState
from .parallel import fast_parallel_bfs_search, fast_parallel_dfs_search
from .search import fast_bfs_search, fast_dfs_search

__all__ = [
    "FastSuccessorEngine",
    "PackedState",
    "fast_bfs_search",
    "fast_dfs_search",
    "fast_parallel_bfs_search",
    "fast_parallel_dfs_search",
]
