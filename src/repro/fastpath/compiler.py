"""The protocol compiler: object-graph models lowered to table-driven form.

The object-graph semantics (:mod:`repro.mp.semantics`) pays, per state, for
attribute walks over :class:`~repro.mp.message.Message` objects, ``repr``
-based sort keys, guard/action closure calls, :class:`ActionContext`
construction and per-object hashing.  All of that work is a pure function
of a small number of *distinct* inputs — a protocol has few local states
and few message values compared to its (combinatorially large) set of
global states — so the compiler interns those inputs to small integers once
and replaces the per-state work with dictionary lookups on int keys:

* **Interning tables.**  Local states and messages are interned to dense
  ids as they are discovered (``id -> object`` lists, ``object -> id``
  dicts).  Per message id the compiler precomputes the sort key and, per
  transition, whether the message is a consumption candidate.
* **Packed states.**  A global state becomes a flat tuple of machine words:
  one local-state id per process followed by the network as ``(message id,
  count)`` pairs sorted by id.  Alongside the words the engine carries the
  two XOR accumulators of the PR-1 incremental hash — the locals
  accumulator and the network accumulator — maintained word-incrementally,
  and the combined fingerprint, which is *bit-identical* to
  :meth:`repro.mp.state.GlobalState.fingerprint` of the decoded state.
* **Table-compiled transitions.**  Enabled-set computation is memoised per
  ``(local id, candidate ids)`` and action application per ``(local id,
  consumed ids, spec-read ids)``; a guard or action closure runs at most
  once per distinct input and every revisit is a dict hit.

Enabled executions are produced in *exactly* the object engine's
deterministic order (transition declaration order, candidates by message
sort key, the same combination enumeration), so execution indices are
interchangeable between the two engines — the parallel fast engines rely on
this to ship pure int-tuples across process boundaries.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..mp.channel import Network, item_hash
from ..mp.errors import MPError, TransitionExecutionError
from ..mp.message import Message
from ..mp.protocol import Protocol
from ..mp.state import GlobalState, _entry_hash, combine_state_hash
from ..mp.transition import ActionContext, Execution, QuorumKind, TransitionSpec

#: A packed global state: ``(words, locals accumulator, network accumulator,
#: fingerprint)``.  ``words`` is the flat word tuple — one local-state id
#: per process, then the network as ``(message id, count)`` pairs sorted by
#: id — and is the identity of the state (two packed states are equal iff
#: their words are equal).  The fingerprint equals the decoded state's
#: ``GlobalState.fingerprint()`` bit for bit.
PackedState = Tuple[Tuple[int, ...], int, int, int]

#: A packed execution: ``(transition index, consumed message ids)`` with the
#: ids in the object engine's message order (sorted by message sort key).
PackedExecution = Tuple[int, Tuple[int, ...]]


class CompiledTransition:
    """One transition lowered onto the interning tables."""

    __slots__ = (
        "spec",
        "index",
        "position",
        "pid",
        "message_type",
        "senders",
        "quorum_size",
        "is_single",
        "distinct_senders",
        "peers",
        "spec_positions",
        "spec_pids",
        "spec_reads",
        "guard",
        "action",
        "enabled_memo",
        "action_memo",
        "candidate_flags",
    )

    def __init__(self, spec: TransitionSpec, index: int, position: int,
                 spec_positions: Tuple[int, ...], spec_pids: Tuple[str, ...]) -> None:
        self.spec = spec
        self.index = index
        self.position = position
        self.pid = spec.process_id
        self.message_type = spec.message_type
        self.senders = spec.effective_senders()
        self.quorum_size = spec.quorum.size
        self.is_single = spec.quorum.kind is QuorumKind.SINGLE
        self.distinct_senders = spec.quorum.distinct_senders
        self.peers = spec.quorum_peers
        self.spec_positions = spec_positions
        self.spec_pids = spec_pids
        self.spec_reads = spec.annotation.spec_reads
        self.guard = spec.guard
        self.action = spec.action
        #: ``(local id, candidate ids) -> tuple of consumed-id tuples``.
        #: An ``OrderedDict`` so the engine can run it as an LRU when a
        #: ``memo_capacity`` is configured (plain-dict cost when unbounded).
        self.enabled_memo: "OrderedDict[Tuple, Tuple[Tuple[int, ...], ...]]" = OrderedDict()
        #: ``(local id, consumed ids, spec ids) -> (new local id, outbox)``.
        self.action_memo: "OrderedDict[Tuple, Tuple[int, Tuple[int, ...]]]" = OrderedDict()
        #: Per message id: is the message a consumption candidate?  Grown
        #: lazily in lockstep with the engine's message table.
        self.candidate_flags: List[bool] = []


class FastSuccessorEngine:
    """Table-compiled drop-in for :class:`~repro.mp.semantics.SuccessorEngine`.

    Compiled once per protocol (per check); the interning tables then grow
    monotonically as the search discovers new local states and messages.
    The packed API (``initial_packed`` / ``enabled_packed`` /
    ``successor_packed``) is the hot path; ``encode`` / ``decode`` /
    ``execution_of`` bridge to the object graph for counterexample replay,
    reducers and invariants.

    The engine is purely an optimisation: enabled executions, their order
    and the successor states are identical to the object engine's, and
    packed fingerprints equal :meth:`GlobalState.fingerprint` bit for bit
    (so fingerprint stores and cross-process claim tables interoperate).
    """

    __slots__ = (
        "protocol",
        "_pids",
        "_index",
        "_num_processes",
        "_transitions",
        "_local_ids",
        "_locals",
        "_msg_ids",
        "_msgs",
        "_msg_sort",
        "_consumers",
        "_entry_hash_memo",
        "_net_contrib_memo",
        "_exec_memo",
        "memo_capacity",
        "memo_evictions",
        "memo_hits",
        "memo_misses",
    )

    def __init__(self, protocol: Protocol,
                 memo_capacity: Optional[int] = None) -> None:
        if memo_capacity is not None and memo_capacity < 1:
            raise ValueError("memo_capacity must be at least 1 (or None)")
        #: LRU bound applied to each per-transition guard/action memo table
        #: (``None`` keeps them unbounded).  The interning tables themselves
        #: are never evicted — packed words reference ids forever — but the
        #: derived memo tables may grow with the product of local states and
        #: in-flight message combinations, which is what the bound caps.
        self.memo_capacity = memo_capacity
        #: Total entries evicted across all memo tables (diagnostics/tests).
        self.memo_evictions = 0
        #: Guard/action memo lookups served from the tables vs computed.
        self.memo_hits = 0
        self.memo_misses = 0
        self.protocol = protocol
        self._pids: Tuple[str, ...] = protocol.process_ids
        self._index = protocol.process_index
        self._num_processes = len(self._pids)
        position_of = {pid: position for position, pid in enumerate(self._pids)}
        transitions = []
        for index, spec in enumerate(protocol.transitions):
            spec_pids = tuple(sorted(spec.annotation.spec_reads))
            spec_positions = tuple(position_of[pid] for pid in spec_pids)
            transitions.append(
                CompiledTransition(
                    spec, index, position_of[spec.process_id],
                    spec_positions, spec_pids,
                )
            )
        self._transitions: Tuple[CompiledTransition, ...] = tuple(transitions)
        self._local_ids: Dict[Any, int] = {}
        self._locals: List[Any] = []
        self._msg_ids: Dict[Message, int] = {}
        self._msgs: List[Message] = []
        self._msg_sort: List[Tuple] = []
        #: Per message id: the transitions that may consume it.
        self._consumers: List[Tuple[CompiledTransition, ...]] = []
        #: Per process position: ``local id -> hash((position, pid, local))``.
        self._entry_hash_memo: Tuple[Dict[int, int], ...] = tuple(
            {} for _ in self._pids
        )
        #: ``(message id, count) -> item_hash(message, count)``.
        self._net_contrib_memo: Dict[Tuple[int, int], int] = {}
        #: Packed execution -> object-graph :class:`Execution`.
        self._exec_memo: Dict[PackedExecution, Execution] = {}

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def _intern_local(self, local: Any) -> int:
        local_id = self._local_ids.get(local)
        if local_id is None:
            local_id = len(self._locals)
            self._local_ids[local] = local_id
            self._locals.append(local)
        return local_id

    def _intern_message(self, message: Message) -> int:
        message_id = self._msg_ids.get(message)
        if message_id is None:
            message_id = len(self._msgs)
            self._msg_ids[message] = message_id
            self._msgs.append(message)
            self._msg_sort.append(message.sort_key())
            consumers = []
            for transition in self._transitions:
                candidate = (
                    message.recipient == transition.pid
                    and message.mtype == transition.message_type
                    and (
                        transition.senders is None
                        or message.sender in transition.senders
                    )
                )
                transition.candidate_flags.append(candidate)
                if candidate:
                    consumers.append(transition)
            self._consumers.append(tuple(consumers))
        return message_id

    def _entry_hash(self, position: int, local_id: int) -> int:
        memo = self._entry_hash_memo[position]
        value = memo.get(local_id)
        if value is None:
            value = _entry_hash(position, self._pids[position], self._locals[local_id])
            memo[local_id] = value
        return value

    def _net_contrib(self, message_id: int, count: int) -> int:
        key = (message_id, count)
        value = self._net_contrib_memo.get(key)
        if value is None:
            value = item_hash(self._msgs[message_id], count)
            self._net_contrib_memo[key] = value
        return value

    def table_sizes(self) -> Dict[str, int]:
        """Sizes of the interning and memo tables, for diagnostics/tests."""
        return {
            "locals": len(self._locals),
            "messages": len(self._msgs),
            "enabled_entries": sum(
                len(t.enabled_memo) for t in self._transitions
            ),
            "action_entries": sum(len(t.action_memo) for t in self._transitions),
        }

    def memo_stats(self) -> Dict[str, int]:
        """Guard/action memo behaviour over this engine's lifetime.

        ``hits``/``misses`` count lookups across both the enabled-set and
        action memos; ``evictions`` counts LRU drops when
        ``memo_capacity`` bounds the tables; ``entries`` is the current
        resident total.  Surfaced through the metrics registry into
        ``BENCH_*.json`` records so memo behaviour is part of the
        recorded perf trajectory.
        """
        sizes = self.table_sizes()
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "entries": sizes["enabled_entries"] + sizes["action_entries"],
        }

    @property
    def num_processes(self) -> int:
        """Number of processes; also the length of the locals word prefix."""
        return self._num_processes

    # ------------------------------------------------------------------ #
    # Encode / decode
    # ------------------------------------------------------------------ #
    def encode(self, state: GlobalState) -> PackedState:
        """Lower an object-graph state into packed form."""
        pairs = state.locals
        if tuple(pid for pid, _ in pairs) != self._pids:
            raise MPError(
                "state layout does not match the compiled protocol's process order"
            )
        lhash = 0
        local_words = []
        for position, (_pid, local) in enumerate(pairs):
            local_id = self._intern_local(local)
            local_words.append(local_id)
            lhash ^= self._entry_hash(position, local_id)
        net = sorted(
            (self._intern_message(message), count)
            for message, count in state.network.items
        )
        nethash = 0
        words = local_words
        for message_id, count in net:
            nethash ^= self._net_contrib(message_id, count)
            words.append(message_id)
            words.append(count)
        return tuple(words), lhash, nethash, combine_state_hash(lhash, nethash)

    def decode(self, packed: PackedState) -> GlobalState:
        """Materialise the object-graph state of a packed state.

        Off the hot path by design: used for counterexample replay,
        invariant-memo misses and the reducer bridge.  The precomputed
        accumulators are reattached, so nothing is rehashed.
        """
        words, lhash, nethash, _fp = packed
        count = self._num_processes
        locals_list = self._locals
        pairs = tuple(
            (pid, locals_list[words[position]])
            for position, pid in enumerate(self._pids)
        )
        msgs = self._msgs
        items = [
            (msgs[words[i]], words[i + 1]) for i in range(count, len(words), 2)
        ]
        items.sort(key=lambda item: item[0].sort_key())
        network = Network._from_canonical(tuple(items), nethash)
        return GlobalState._derive(pairs, network, self._index, lhash)

    def initial_packed(self) -> PackedState:
        """The protocol's initial state in packed form."""
        return self.encode(self.protocol.initial_state())

    def fingerprint(self, packed: PackedState) -> int:
        """The packed fingerprint (equals the decoded state's)."""
        return packed[3]

    # ------------------------------------------------------------------ #
    # Enabled executions
    # ------------------------------------------------------------------ #
    def enabled_packed(self, packed: PackedState) -> Tuple[PackedExecution, ...]:
        """All enabled executions, in the object engine's exact order."""
        words = packed[0]
        count = self._num_processes
        consumers = self._consumers
        buckets: Dict[int, List[int]] = {}
        for i in range(count, len(words), 2):
            message_id = words[i]
            for transition in consumers[message_id]:
                bucket = buckets.get(transition.index)
                if bucket is None:
                    buckets[transition.index] = [message_id]
                else:
                    bucket.append(message_id)
        if not buckets:
            return ()
        result: List[PackedExecution] = []
        for transition in self._transitions:
            candidate_ids = buckets.get(transition.index)
            if candidate_ids is None:
                continue
            key = (words[transition.position], tuple(candidate_ids))
            executions = transition.enabled_memo.get(key)
            if executions is None:
                self.memo_misses += 1
                executions = self._compute_enabled(transition, key[0], key[1])
                transition.enabled_memo[key] = executions
                if (
                    self.memo_capacity is not None
                    and len(transition.enabled_memo) > self.memo_capacity
                ):
                    transition.enabled_memo.popitem(last=False)
                    self.memo_evictions += 1
            else:
                self.memo_hits += 1
                if self.memo_capacity is not None:
                    transition.enabled_memo.move_to_end(key)
            index = transition.index
            for consumed in executions:
                result.append((index, consumed))
        return tuple(result)

    def _sorted_by_message(self, ids) -> List[int]:
        sort_keys = self._msg_sort
        return sorted(ids, key=lambda message_id: (sort_keys[message_id], message_id))

    def _compute_enabled(
        self, transition: CompiledTransition, local_id: int,
        candidate_ids: Tuple[int, ...],
    ) -> Tuple[Tuple[int, ...], ...]:
        """Memo-miss path: replicate :mod:`repro.mp.semantics` exactly."""
        order = self._sorted_by_message(candidate_ids)
        local = self._locals[local_id]
        msgs = self._msgs
        guard = transition.guard
        out: List[Tuple[int, ...]] = []
        if transition.is_single:
            for message_id in order:
                if guard(local, (msgs[message_id],)):
                    out.append((message_id,))
            return tuple(out)
        size = transition.quorum_size
        if len(order) < size:
            return ()
        if transition.distinct_senders:
            by_sender: Dict[str, List[int]] = {}
            for message_id in order:
                by_sender.setdefault(msgs[message_id].sender, []).append(message_id)
            available = sorted(by_sender)
            if len(available) < size:
                return ()
            if transition.peers is not None:
                required = sorted(transition.peers)
                if any(sender not in by_sender for sender in required):
                    return ()
                sender_combos = [tuple(required)]
            else:
                sender_combos = itertools.combinations(available, size)
            for combo in sender_combos:
                choices_per_sender = [by_sender[sender] for sender in combo]
                for choice in itertools.product(*choices_per_sender):
                    consumed = tuple(self._sorted_by_message(choice))
                    if guard(local, tuple(msgs[mid] for mid in consumed)):
                        out.append(consumed)
            return tuple(out)
        seen = set()
        for combo in itertools.combinations(range(len(order)), size):
            consumed = tuple(self._sorted_by_message(order[i] for i in combo))
            if consumed in seen:
                continue
            seen.add(consumed)
            if guard(local, tuple(msgs[mid] for mid in consumed)):
                out.append(consumed)
        return tuple(out)

    # ------------------------------------------------------------------ #
    # Successor application
    # ------------------------------------------------------------------ #
    def successor_packed(
        self, packed: PackedState, execution: PackedExecution
    ) -> PackedState:
        """Apply a packed execution; pure word/accumulator arithmetic."""
        words, lhash, nethash, _fp = packed
        transition = self._transitions[execution[0]]
        consumed = execution[1]
        position = transition.position
        local_id = words[position]
        spec_ids = tuple(words[pos] for pos in transition.spec_positions)
        key = (local_id, consumed, spec_ids)
        cached = transition.action_memo.get(key)
        if cached is None:
            self.memo_misses += 1
            cached = self._apply_action(transition, local_id, consumed, spec_ids)
            transition.action_memo[key] = cached
            if (
                self.memo_capacity is not None
                and len(transition.action_memo) > self.memo_capacity
            ):
                transition.action_memo.popitem(last=False)
                self.memo_evictions += 1
        else:
            self.memo_hits += 1
            if self.memo_capacity is not None:
                transition.action_memo.move_to_end(key)
        new_local_id, outbox = cached

        count = self._num_processes
        if new_local_id != local_id:
            lhash ^= self._entry_hash(position, local_id) ^ self._entry_hash(
                position, new_local_id
            )
            locals_part = (
                words[:position] + (new_local_id,) + words[position + 1:count]
            )
        else:
            locals_part = words[:count]

        delta: Dict[int, int] = {}
        for message_id in consumed:
            delta[message_id] = delta.get(message_id, 0) - 1
        for message_id in outbox:
            delta[message_id] = delta.get(message_id, 0) + 1
        delta = {message_id: d for message_id, d in delta.items() if d}
        if not delta:
            new_words = locals_part + words[count:]
            return new_words, lhash, nethash, combine_state_hash(lhash, nethash)

        contrib = self._net_contrib
        delta_ids = sorted(delta)
        out = list(locals_part)
        di = 0
        nd = len(delta_ids)
        i = count
        n = len(words)
        while i < n or di < nd:
            if di < nd and (i >= n or delta_ids[di] < words[i]):
                message_id = delta_ids[di]
                change = delta[message_id]
                if change < 0:
                    raise TransitionExecutionError(
                        f"transition {transition.spec.name} consumed a message "
                        "not present in the network"
                    )
                out.append(message_id)
                out.append(change)
                nethash ^= contrib(message_id, change)
                di += 1
            elif di < nd and delta_ids[di] == words[i]:
                message_id = words[i]
                old_count = words[i + 1]
                new_count = old_count + delta[message_id]
                if new_count < 0:
                    raise TransitionExecutionError(
                        f"transition {transition.spec.name} consumed more copies "
                        "of a message than the network holds"
                    )
                nethash ^= contrib(message_id, old_count)
                if new_count:
                    out.append(message_id)
                    out.append(new_count)
                    nethash ^= contrib(message_id, new_count)
                di += 1
                i += 2
            else:
                out.append(words[i])
                out.append(words[i + 1])
                i += 2
        return tuple(out), lhash, nethash, combine_state_hash(lhash, nethash)

    def _apply_action(
        self, transition: CompiledTransition, local_id: int,
        consumed: Tuple[int, ...], spec_ids: Tuple[int, ...],
    ) -> Tuple[int, Tuple[int, ...]]:
        """Memo-miss path: run the real action once, intern its results."""
        local = self._locals[local_id]
        messages = tuple(self._msgs[message_id] for message_id in consumed)
        spec_view = {
            pid: self._locals[spec_id]
            for pid, spec_id in zip(transition.spec_pids, spec_ids)
        }
        context = ActionContext(
            process_id=transition.pid,
            spec_view=spec_view,
            spec_reads=transition.spec_reads,
        )
        new_local = transition.action(local, messages, context)
        if new_local is None:
            new_local = local
        try:
            hash(new_local)
        except TypeError as exc:
            raise TransitionExecutionError(
                f"transition {transition.spec.name} produced an unhashable local state"
            ) from exc
        outbox = tuple(
            self._intern_message(message) for message in context.outbox
        )
        return self._intern_local(new_local), outbox

    # ------------------------------------------------------------------ #
    # Object-graph bridges
    # ------------------------------------------------------------------ #
    def execution_of(self, execution: PackedExecution) -> Execution:
        """The object-graph :class:`Execution` of a packed execution."""
        cached = self._exec_memo.get(execution)
        if cached is None:
            spec = self._transitions[execution[0]].spec
            cached = Execution(
                spec, tuple(self._msgs[message_id] for message_id in execution[1])
            )
            self._exec_memo[execution] = cached
        return cached

    def replay_path(self, path: Tuple[int, ...]) -> PackedState:
        """Walk an execution-index path from the initial state.

        The currency of the parallel fast engines: a frame or delta names
        states by the indices (into the deterministic enabled orders) of
        the executions reaching them, and any process replays the path
        through its warm memo tables.
        """
        cursor = self.initial_packed()
        for index in path:
            cursor = self.successor_packed(cursor, self.enabled_packed(cursor)[index])
        return cursor

    # Convenience mirrors of the object engine's API (tests, exploration).
    def initial_state(self) -> GlobalState:
        """The protocol's initial state (object form)."""
        return self.protocol.initial_state()

    def enabled(self, state: GlobalState) -> Tuple[Execution, ...]:
        """Object-level enabled set, computed through the tables."""
        return tuple(
            self.execution_of(execution)
            for execution in self.enabled_packed(self.encode(state))
        )

    def successor(self, state: GlobalState, execution: Execution) -> GlobalState:
        """Object-level successor, computed through the tables."""
        packed = self.encode(state)
        target = (
            self.protocol.transitions.index(execution.transition),
            tuple(self._intern_message(message) for message in execution.messages),
        )
        return self.decode(self.successor_packed(packed, target))
