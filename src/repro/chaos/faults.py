"""Seeded fault plans and the worker-side injection hook.

A :class:`FaultPlan` is a deterministic list of :class:`FaultInjection`
records — *which worker* suffers *which fault* at *which command* — with a
compact string spelling so a plan travels as one hashable value through
``CheckPlan.chaos``, the ``REPRO_CHAOS`` environment variable and the
service wire format.

Two spellings:

``"crash:1@3"``
    Explicit injections, comma-separated: ``kind:worker@nth[:seconds]``.
    Kind is ``crash`` (``os._exit`` — the hard death the OOM killer
    delivers, never reaching Python cleanup), ``stall`` (sleep without
    replying) or ``slow`` (sleep, then continue normally).

``"seed:42:crash=1"``
    Seeded derivation: ``crash=K`` injections are derived from the root
    seed with the same splitmix64 stream discipline as the swarm walk
    seeds, so a chaos run replays bit-identically from one integer.  The
    derived workers/commands are resolved against the actual worker count
    at hook-construction time.

The worker loop calls :meth:`ChaosHook.on_command` once per protocol
command (or per walk, for swarm workers); the hook counts commands and
fires the matching injection.  With no plan the hook is ``None`` and the
loops pay nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..swarm.seeds import GOLDEN_GAMMA

#: Environment variable carrying a fault-plan spec into worker processes
#: (inherited across ``fork``); the explicit ``chaos`` plan knob wins over
#: it when both are set.
CHAOS_ENV = "REPRO_CHAOS"

#: Fault kinds a plan may inject.
FAULT_KINDS = ("crash", "stall", "slow")

#: Default sleep of ``stall`` injections, chosen to exceed every liveness
#: poll/stall threshold in the runtime (2s poll, 5s stall detector).
DEFAULT_STALL_SECONDS = 30.0

#: Default sleep of ``slow`` injections: long enough to be observable,
#: short enough not to dominate a test run.
DEFAULT_SLOW_SECONDS = 0.2

_MASK = (1 << 64) - 1


class FaultPlanError(ValueError):
    """A fault-plan spec string does not parse."""


def _splitmix64(state: int) -> Tuple[int, int]:
    """One splitmix64 step: ``(new_state, output_word)``.

    The same finaliser the swarm seed derivation uses, so seeded chaos
    plans share the statistical discipline (and the replayability story)
    of the walk seeds.
    """
    state = (state + GOLDEN_GAMMA) & _MASK
    word = state
    word = ((word ^ (word >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    word = ((word ^ (word >> 27)) * 0x94D049BB133111EB) & _MASK
    return state, (word ^ (word >> 31)) & _MASK


@dataclass(frozen=True)
class FaultInjection:
    """One planned fault: worker ``worker`` at its ``at_command``-th command.

    ``at_command`` counts from 1: the first command a worker receives is
    command 1.  ``seconds`` is the sleep of stall/slow injections and
    ignored by crashes.
    """

    kind: str
    worker: int
    at_command: int
    seconds: Optional[float] = None

    def spec(self) -> str:
        base = f"{self.kind}:{self.worker}@{self.at_command}"
        if self.seconds is not None:
            return f"{base}:{self.seconds:g}"
        return base


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable set of fault injections."""

    injections: Tuple[FaultInjection, ...] = ()

    @classmethod
    def parse(cls, spec: Optional[str], workers: int = 1) -> Optional["FaultPlan"]:
        """Build a plan from its string spelling; ``None``/empty means none.

        ``workers`` resolves seeded derivations (``seed:S:crash=K``) to
        concrete worker indices; explicit injections pass through verbatim
        (injections naming workers outside the pool simply never fire).
        """
        if not spec:
            return None
        spec = spec.strip()
        if spec.startswith("seed:"):
            return cls.seeded_from_spec(spec, workers)
        injections = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            injections.append(_parse_injection(part))
        if not injections:
            raise FaultPlanError(f"fault plan {spec!r} names no injections")
        return cls(injections=tuple(injections))

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        crashes: int = 1,
        stalls: int = 0,
        slows: int = 0,
        max_command: int = 8,
    ) -> "FaultPlan":
        """Derive a plan from one root seed, splitmix64-style.

        Each injection draws its worker and command index from the seeded
        stream, so the plan — like a swarm run — is a pure function of
        ``(seed, workers, counts)`` and replays bit-identically.
        """
        state = seed & _MASK
        injections = []
        for kind, count, seconds in (
            ("crash", crashes, None),
            ("stall", stalls, DEFAULT_STALL_SECONDS),
            ("slow", slows, DEFAULT_SLOW_SECONDS),
        ):
            for _ in range(max(0, count)):
                state, word_a = _splitmix64(state)
                state, word_b = _splitmix64(state)
                injections.append(
                    FaultInjection(
                        kind=kind,
                        worker=word_a % max(1, workers),
                        at_command=1 + word_b % max(1, max_command),
                        seconds=seconds,
                    )
                )
        return cls(injections=tuple(injections))

    @classmethod
    def seeded_from_spec(cls, spec: str, workers: int) -> "FaultPlan":
        """Parse ``seed:S[:crash=K][:stall=K][:slow=K]`` (default crash=1)."""
        parts = spec.split(":")
        if len(parts) < 2 or parts[0] != "seed":
            raise FaultPlanError(f"seeded fault plan {spec!r} must start with 'seed:'")
        try:
            seed = int(parts[1])
        except ValueError:
            raise FaultPlanError(f"seeded fault plan {spec!r}: bad seed {parts[1]!r}") from None
        counts = {"crash": 0, "stall": 0, "slow": 0}
        extras = [part for part in parts[2:] if part]
        if not extras:
            counts["crash"] = 1
        for part in extras:
            if "=" not in part:
                raise FaultPlanError(
                    f"seeded fault plan {spec!r}: expected kind=count, got {part!r}"
                )
            kind, _, raw = part.partition("=")
            if kind not in counts:
                raise FaultPlanError(
                    f"seeded fault plan {spec!r}: unknown kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
            try:
                counts[kind] = int(raw)
            except ValueError:
                raise FaultPlanError(
                    f"seeded fault plan {spec!r}: bad count {raw!r}"
                ) from None
        return cls.seeded(
            seed, workers,
            crashes=counts["crash"], stalls=counts["stall"], slows=counts["slow"],
        )

    def spec(self) -> str:
        """Round-trippable explicit spelling of the plan."""
        return ",".join(injection.spec() for injection in self.injections)

    def for_worker(self, worker: int) -> Tuple[FaultInjection, ...]:
        """The injections targeting one worker, by command order."""
        return tuple(
            sorted(
                (inj for inj in self.injections if inj.worker == worker),
                key=lambda inj: inj.at_command,
            )
        )


def _parse_injection(part: str) -> FaultInjection:
    pieces = part.split(":")
    kind = pieces[0]
    if kind not in FAULT_KINDS:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in {part!r} "
            f"(expected one of {', '.join(FAULT_KINDS)})"
        )
    if len(pieces) < 2 or "@" not in pieces[1]:
        raise FaultPlanError(
            f"fault injection {part!r} must spell kind:worker@nth[:seconds]"
        )
    worker_raw, _, command_raw = pieces[1].partition("@")
    try:
        worker = int(worker_raw)
        at_command = int(command_raw)
    except ValueError:
        raise FaultPlanError(
            f"fault injection {part!r}: worker and command must be integers"
        ) from None
    if worker < 0 or at_command < 1:
        raise FaultPlanError(
            f"fault injection {part!r}: worker must be >= 0 and command >= 1"
        )
    seconds: Optional[float] = None
    if len(pieces) > 2:
        try:
            seconds = float(pieces[2])
        except ValueError:
            raise FaultPlanError(
                f"fault injection {part!r}: bad seconds {pieces[2]!r}"
            ) from None
    elif kind == "stall":
        seconds = DEFAULT_STALL_SECONDS
    elif kind == "slow":
        seconds = DEFAULT_SLOW_SECONDS
    return FaultInjection(kind=kind, worker=worker, at_command=at_command,
                          seconds=seconds)


class ChaosHook:
    """Worker-side injector: counts commands, fires planned faults.

    Built once per worker process; ``on_command`` runs at the top of the
    worker's command loop.  Crashes use ``os._exit`` so no ``finally``
    block, queue flush or exception-reply path softens them — exactly the
    failure mode a supervised runtime must survive.
    """

    def __init__(self, plan: FaultPlan, worker: int,
                 sleep=time.sleep, exit=os._exit) -> None:
        self.worker = worker
        self.commands_seen = 0
        self._pending = list(plan.for_worker(worker))
        self._sleep = sleep
        self._exit = exit
        self.fired: list = []

    def on_command(self, label: str = "") -> None:
        """Count one command; fire every injection planned for it."""
        self.commands_seen += 1
        while self._pending and self._pending[0].at_command == self.commands_seen:
            injection = self._pending.pop(0)
            self.fired.append(injection)
            if injection.kind == "crash":
                self._exit(1)
            else:  # stall and slow both sleep; slow then continues.
                self._sleep(injection.seconds or 0.0)


def chaos_hook_for_worker(
    spec: Optional[str], worker: int, workers: int
) -> Optional[ChaosHook]:
    """The worker's hook for a spec (falling back to ``REPRO_CHAOS``).

    Returns ``None`` — zero overhead — when neither the explicit spec nor
    the environment names a plan.  Invalid environment specs raise
    loudly; silently ignoring a typo'd fault plan would make a chaos test
    pass vacuously.
    """
    if spec is None:
        spec = os.environ.get(CHAOS_ENV) or None
    plan = FaultPlan.parse(spec, workers)
    if plan is None:
        return None
    return ChaosHook(plan, worker)
