"""Deterministic fault injection for the checking runtime itself.

The paper's protocols are verified *under* fault models; this package
applies the same medicine to the checker: a seeded, replayable
:class:`FaultPlan` injects worker crashes, stalls and slow replies into
the parallel worker loops so every recovery path (supervision, restart,
checkpoint/resume, honest partial verdicts) is testable on demand — and
completely absent from production runs unless explicitly opted in via the
``REPRO_CHAOS`` environment variable or the plan's ``chaos`` knob.
"""

from .faults import (
    CHAOS_ENV,
    ChaosHook,
    FaultInjection,
    FaultPlan,
    FaultPlanError,
    chaos_hook_for_worker,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosHook",
    "FaultInjection",
    "FaultPlan",
    "FaultPlanError",
    "chaos_hook_for_worker",
]
