"""Frontier-parallel breadth-first search (the coordinator side).

The search is level-synchronous: all workers expand their share of level
*d* before any state of level *d+1* is expanded.  Within a level each
worker owns one shard of the fingerprint partition and deduplicates exactly
the successors routed to it, so the set of states discovered at every level
— and therefore the visited-state count — is identical to the serial
:func:`repro.checker.search.bfs_search` closure.  What parallelism changes
is only *who* expands a state, never *whether* it is expanded.

Guarantees relative to serial BFS:

* identical visited-state counts, transition counts, revisit counts and
  depth on every run that completes a level (i.e. all verified cells);
* identical verdicts everywhere; on violating cells the counterexample has
  the same (minimal) depth, and the bound/violation checks are applied at
  level barriers, so a run stopped mid-search may count the remainder of
  the level the serial search would have abandoned mid-way through.

Fault tolerance: the coordinator supervises its pool.  A worker that dies
without replying (SIGKILL, the OOM killer, an injected :mod:`repro.chaos`
crash) is detected by the liveness poll inside
:func:`~repro.parallel.worker.collect_replies`; under supervision (the
default) the coordinator restarts it on a fresh queue, replays exactly the
states the dead worker owned (every absorb reply carries them, so the
level barrier doubles as the recovery log), re-issues the lost barrier
command, and resumes the collection with the surviving workers' replies
intact — visited and transition counts are provably identical to an
uncrashed run because re-absorbing from the pre-barrier shard is the same
deterministic computation.  With supervision off (or the restart budget
exhausted) the crash surfaces as a structured
:class:`~repro.parallel.worker.WorkerCrashError` and the search returns an
honest incomplete outcome with partial statistics, never a hang or a bare
traceback.

Checkpointing rides the same barrier: with ``config.checkpoint_dir`` set
(and parent tracking on), the coordinator serialises the visited set,
parent edges and frontier every ``config.checkpoint_every`` levels; a
killed run resumes via ``config.resume_from`` with verdict and visited
count identical to an uninterrupted run.

The workers inherit the protocol via the ``fork`` start method (transition
guards and actions are closures and never pickle); only global states and
fingerprints cross process boundaries, using the compact pickling of
:class:`repro.mp.state.GlobalState`.  On platforms without ``fork`` the
function transparently falls back to the serial search.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from typing import List, Optional

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import SearchConfig, SearchOutcome, bfs_search
from ..checker.statestore import shard_of
from ..engine.events import Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import enabled_executions
from ..mp.state import GlobalState
from .worker import (
    WorkerCrashError,
    collect_replies,
    frontier_worker,
    shutdown_processes,
)

#: Total worker restarts the supervisor attempts before giving up and
#: surfacing the crash; bounds flapping when the fault is not transient.
MAX_WORKER_RESTARTS = 3


def default_mp_context():
    """The ``fork`` multiprocessing context, or None when unavailable.

    ``fork`` is required for two reasons: workers inherit the (unpicklable)
    protocol object, and forked children share the parent's hash seed so
    fingerprints — and with them the shard partition — agree across all
    processes.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def parallel_bfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    workers: int = 2,
    mp_context=None,
    track_parents: bool = True,
    worker_timeout: Optional[float] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Breadth-first search of one cell across ``workers`` processes.

    Args:
        protocol: The protocol instance to explore.
        invariant: The invariant to check in every reachable state.
        config: Search configuration; ``state_store == "full"`` dedups
            shards by exact states, every other kind by fingerprints.  The
            ``chaos`` / ``supervise`` / ``checkpoint_dir`` /
            ``checkpoint_every`` / ``resume_from`` knobs drive the fault
            tolerance documented in the module docstring.
        workers: Worker process count (= shard count).  ``workers <= 1``
            delegates to the serial :func:`bfs_search`.
        mp_context: Multiprocessing context; defaults to ``fork``.  Without
            a fork-capable platform the search falls back to serial.
        track_parents: Keep the parent edge of every discovered state so a
            violation can be rebuilt into a counterexample.  Disabling this
            drops the coordinator-side state table — the memory profile then
            matches the sharded fingerprint store — at the price of
            ``counterexample=None`` on violations (and no checkpointing,
            which needs that table).
        worker_timeout: Optional hard cap per level barrier.  By default the
            coordinator waits for as long as every worker process is alive
            (an arbitrarily long level is progress, not a hang; crashed
            workers are detected by liveness polling), so large cells never
            abort spuriously.  Prefer ``config.max_seconds`` for budgeting
            the search as a whole.
        observer: Optional coordinator-side event observer; receives one
            ``level-completed`` event per level barrier (including the
            exchanged delta count), one ``worker-telemetry`` event per
            worker per expand barrier (cumulative expansions/transitions,
            riding the existing replies — no extra IPC),
            ``violation-found`` events, and the fault-tolerance kinds
            ``worker-crashed`` / ``worker-restarted`` /
            ``checkpoint-written``.
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`;
            receives frontier-peak and per-worker transition counters at
            the end of the run, plus crash/restart counters.

    Returns:
        A :class:`SearchOutcome`, shaped exactly like the serial one.
    """
    config = config or SearchConfig()
    if workers <= 1:
        return bfs_search(protocol, invariant, config, observer=observer,
                          telemetry=telemetry)
    context = mp_context if mp_context is not None else default_mp_context()
    if context is None:
        warnings.warn(
            "parallel_bfs_search requires a fork-capable platform; "
            "falling back to serial bfs_search",
            RuntimeWarning,
            stacklevel=2,
        )
        return bfs_search(protocol, invariant, config, observer=observer,
                          telemetry=telemetry)
    if config.checkpoint_dir is not None and not track_parents:
        raise ValueError(
            "checkpointing the frontier search requires track_parents=True: "
            "the checkpoint serialises the coordinator's state table"
        )

    statistics = SearchStatistics()
    start_time = time.perf_counter()
    supervise = config.supervise

    initial = protocol.initial_state()

    resumed = None
    if config.resume_from is not None:
        from ..checker.checkpoint import CheckpointError, load_checkpoint

        if not track_parents:
            raise ValueError(
                "resuming the frontier search requires track_parents=True"
            )
        resumed = load_checkpoint(config.resume_from)
        if not resumed.states or resumed.states[0] != initial:
            raise CheckpointError(
                f"cannot resume from {config.resume_from!r}: its initial "
                "state does not match the protocol under check (was the "
                "checkpoint written for a different model?)"
            )

    if resumed is None:
        statistics.states_visited = 1
        if not invariant.holds_in(initial, protocol):
            emit(observer, "violation-found", states_visited=1, depth=0)
            statistics.elapsed_seconds = time.perf_counter() - start_time
            counterexample = Counterexample(
                initial_state=initial, steps=(), property_name=invariant.name
            )
            return SearchOutcome(False, False, counterexample, statistics)

    exact = config.state_store == "full"
    # Workers ship accepted-state records back whenever the coordinator
    # needs them: for counterexamples (track_parents) or as the recovery
    # log supervision replays into a restarted worker.
    worker_records = track_parents or supervise
    task_queues = [context.Queue() for _ in range(workers)]
    result_queue = context.Queue()

    def spawn_worker(worker_id: int, chaos: Optional[str]):
        process = context.Process(
            target=frontier_worker,
            args=(
                worker_id,
                workers,
                protocol,
                invariant,
                exact,
                worker_records,
                task_queues[worker_id],
                result_queue,
                chaos,
            ),
            daemon=True,
        )
        process.start()
        return process

    parents = {} if track_parents else None
    states_by_fp = {} if track_parents else None
    # Per-worker recovery log: every state the worker's shard accepted, and
    # its current local frontier.  Only the references are duplicated.
    owned_states: List[List[GlobalState]] = [[] for _ in range(workers)]
    worker_frontier: List[List[GlobalState]] = [[] for _ in range(workers)]

    if resumed is not None:
        states = resumed.states
        fingerprints = [state.fingerprint() for state in states]
        for index, edge in enumerate(resumed.edges):
            if edge is None:
                parents[fingerprints[index]] = None
            else:
                parent_index, exec_index = edge
                parents[fingerprints[index]] = (fingerprints[parent_index], exec_index)
            states_by_fp[fingerprints[index]] = states[index]
        for index, state in enumerate(states):
            owned_states[shard_of(fingerprints[index], workers)].append(state)
        frontier_states = [states[index] for index in resumed.frontier]
        for state in frontier_states:
            worker_frontier[shard_of(state.fingerprint(), workers)].append(state)
        statistics = resumed.statistics
        statistics.states_visited = len(states)
        depth = resumed.depth
        frontier_total = len(frontier_states)
        start_time = time.perf_counter() - statistics.elapsed_seconds
    else:
        if track_parents:
            parents[initial.fingerprint()] = None
            states_by_fp[initial.fingerprint()] = initial
        owner = shard_of(initial.fingerprint(), workers)
        owned_states[owner].append(initial)
        worker_frontier[owner].append(initial)
        depth = 0
        frontier_total = 1

    def rebuild(violating_fp: int) -> Counterexample:
        """Walk the parent chain back to the initial state.

        Executions are not shipped across processes (transition closures do
        not pickle); they are recomputed here from the deterministic enabled
        order, which is identical in every process.
        """
        steps: List[Step] = []
        cursor = violating_fp
        while parents[cursor] is not None:
            parent_fp, exec_index = parents[cursor]
            parent_state = states_by_fp[parent_fp]
            execution = enabled_executions(parent_state, protocol)[exec_index]
            steps.append(Step(execution=execution, state=states_by_fp[cursor]))
            cursor = parent_fp
        steps.reverse()
        return Counterexample(
            initial_state=initial, steps=tuple(steps), property_name=invariant.name
        )

    checkpoint_interval = max(1, config.checkpoint_every or 1)

    def write_level_checkpoint(level_frontier: List[GlobalState]) -> None:
        from ..checker.checkpoint import Checkpoint, write_checkpoint

        fps = list(states_by_fp.keys())
        index_of = {fp: index for index, fp in enumerate(fps)}
        edges = []
        for fp in fps:
            edge = parents[fp]
            edges.append(None if edge is None else (index_of[edge[0]], edge[1]))
        statistics.elapsed_seconds = time.perf_counter() - start_time
        path = write_checkpoint(
            Checkpoint(
                depth=depth + 1,
                statistics=statistics,
                states=[states_by_fp[fp] for fp in fps],
                edges=edges,
                frontier=[index_of[state.fingerprint()] for state in level_frontier],
                meta={"property": invariant.name, "engine": "frontier-bfs",
                      "workers": workers},
            ),
            config.checkpoint_dir,
        )
        emit(observer, "checkpoint-written", depth=depth + 1,
             states_visited=statistics.states_visited, path=path)

    restarts_used = 0
    crash_counter = restart_counter = None
    if telemetry is not None:
        crash_counter = telemetry.metrics.counter(
            "worker_crashes", "worker processes that died without replying"
        )
        restart_counter = telemetry.metrics.counter(
            "worker_restarts", "crashed workers restarted by the supervisor"
        )

    processes = [spawn_worker(worker_id, config.chaos) for worker_id in range(workers)]

    def supervised_collect(phase: str, resend):
        """Collect a barrier, restarting crashed workers under supervision.

        ``resend(worker_id)`` re-enqueues the lost barrier command after the
        restore; surviving workers' replies carry over between attempts via
        the partial-reply list on the crash error.
        """
        nonlocal restarts_used
        replies = None
        while True:
            try:
                return collect_replies(
                    result_queue, workers, phase, worker_timeout, processes,
                    replies,
                )
            except WorkerCrashError as crash:
                for worker_id in crash.workers:
                    emit(observer, "worker-crashed", worker=worker_id,
                         phase=phase)
                    if crash_counter is not None:
                        crash_counter.inc()
                if (
                    not supervise
                    or restarts_used + len(crash.workers) > MAX_WORKER_RESTARTS
                ):
                    crash.attempts = restarts_used
                    raise
                replies = crash.replies
                for worker_id in crash.workers:
                    restarts_used += 1
                    processes[worker_id].join(timeout=0.1)  # reap the corpse
                    # Fresh queue: the dead worker may have consumed — or
                    # left behind — commands on the old one.
                    task_queues[worker_id] = context.Queue()
                    # The replacement runs without the fault plan: the plan
                    # describes faults of the original incarnation, and
                    # re-arming it would crash every replacement too.
                    processes[worker_id] = spawn_worker(worker_id, None)
                    task_queues[worker_id].put(
                        ("restore",
                         (owned_states[worker_id], worker_frontier[worker_id]))
                    )
                    resend(worker_id)
                    emit(observer, "worker-restarted", worker=worker_id,
                         attempt=restarts_used)
                    if restart_counter is not None:
                        restart_counter.inc()

    verified = True
    complete = True
    incomplete_reason: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    peak_frontier = max(1, frontier_total)
    worker_totals = [[0, 0] for _ in range(workers)]  # expansions, transitions
    try:
        if resumed is None:
            for queue in task_queues:
                queue.put(("seed", initial))
        else:
            for worker_id, queue in enumerate(task_queues):
                queue.put(
                    ("restore",
                     (owned_states[worker_id], worker_frontier[worker_id]))
                )

        while frontier_total:
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    complete = False
                    break
            if config.max_depth is not None and depth >= config.max_depth:
                complete = False
                break

            # Expand: every worker walks its local frontier.
            for queue in task_queues:
                queue.put(("expand", None))
            expanded = supervised_collect(
                "expanded", lambda worker_id: task_queues[worker_id].put(("expand", None))
            )
            for reply_worker, outgoing, expansions, transitions in expanded:
                statistics.enabled_set_computations += expansions
                statistics.full_expansions += expansions
                statistics.transitions_executed += transitions
                totals = worker_totals[reply_worker]
                totals[0] += expansions
                totals[1] += transitions
                if observer is not None and expansions:
                    emit(observer, "worker-telemetry", worker=reply_worker,
                         expansions=totals[0], transitions_executed=totals[1])

            # Exchange deltas: candidates routed to each owner shard, in
            # worker-id order so the absorb order is deterministic.  The
            # routed lists are retained for the level so a worker that
            # crashes mid-absorb can be re-fed its exact candidates.
            level_deltas = 0
            routed: List[list] = []
            for destination in range(workers):
                candidates = []
                for _worker_id, outgoing, _expansions, _transitions in expanded:
                    candidates.extend(outgoing[destination])
                level_deltas += len(candidates)
                routed.append(candidates)
                task_queues[destination].put(("absorb", candidates))
            absorbed = supervised_collect(
                "absorbed",
                lambda worker_id: task_queues[worker_id].put(("absorb", routed[worker_id])),
            )

            level_new = 0
            level_frontier: List[GlobalState] = []
            level_violations: List[int] = []
            for reply_worker, new_count, revisits, violations, new_records in absorbed:
                level_new += new_count
                statistics.revisits += revisits
                level_violations.extend(violations)
                if new_records:
                    accepted = [record[1] for record in new_records]
                    if worker_records:
                        owned_states[reply_worker].extend(accepted)
                        worker_frontier[reply_worker] = accepted
                        level_frontier.extend(accepted)
                    if track_parents:
                        for fingerprint, successor, parent_fp, exec_index in new_records:
                            parents[fingerprint] = (parent_fp, exec_index)
                            states_by_fp[fingerprint] = successor
                elif worker_records:
                    worker_frontier[reply_worker] = []
            statistics.states_visited += level_new

            if level_violations:
                verified = False
                if track_parents:
                    counterexample = rebuild(level_violations[0])
                emit(observer, "violation-found",
                     states_visited=statistics.states_visited, depth=depth + 1)
                if config.stop_at_first_violation:
                    complete = False
                    break
            if (
                config.max_states is not None
                and statistics.states_visited >= config.max_states
            ):
                complete = False
                depth += 1
                statistics.max_depth = max(statistics.max_depth, depth)
                break

            if level_new:
                # Mirror the serial engine's stream: only levels the search
                # carries forward are observable — a level that ends the run
                # (violation stop, truncation) or discovers nothing is
                # bookkeeping, and violation-found precedes the level event
                # when both occur.
                emit(observer, "level-completed", depth=depth + 1,
                     new_states=level_new, deltas=level_deltas,
                     states_visited=statistics.states_visited)
                if (
                    config.checkpoint_dir is not None
                    and (depth + 1) % checkpoint_interval == 0
                ):
                    write_level_checkpoint(level_frontier)
            frontier_total = level_new
            peak_frontier = max(peak_frontier, frontier_total)
            depth += 1
            # Mirror the serial engines: ``max_depth`` counts the edges to
            # the deepest *discovered* state, not the final empty level.
            if frontier_total:
                statistics.max_depth = max(statistics.max_depth, depth)
    except WorkerCrashError:
        # Unrecovered worker death: an honest partial verdict, never a hang
        # or a bare traceback.  Partial statistics (everything up to the
        # last completed barrier) stay attached.
        complete = False
        incomplete_reason = "worker crash"
    finally:
        for queue in task_queues:
            try:
                queue.put(("stop", None))
            except Exception:  # pragma: no cover - queue already broken
                pass
        shutdown_processes(processes, queues=[result_queue] + task_queues,
                           telemetry=telemetry)

    statistics.elapsed_seconds = time.perf_counter() - start_time
    if telemetry is not None:
        telemetry.metrics.gauge(
            "frontier_peak", "widest BFS level explored"
        ).set(peak_frontier)
        if parents is not None:
            telemetry.record_store(parents)
        for worker_id, (_expansions, transitions) in enumerate(worker_totals):
            telemetry.record_worker(worker_id,
                                    {"transitions_executed": transitions})
    return SearchOutcome(
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=statistics,
        incomplete_reason=incomplete_reason,
    )
