"""Frontier-parallel breadth-first search (the coordinator side).

The search is level-synchronous: all workers expand their share of level
*d* before any state of level *d+1* is expanded.  Within a level each
worker owns one shard of the fingerprint partition and deduplicates exactly
the successors routed to it, so the set of states discovered at every level
— and therefore the visited-state count — is identical to the serial
:func:`repro.checker.search.bfs_search` closure.  What parallelism changes
is only *who* expands a state, never *whether* it is expanded.

Guarantees relative to serial BFS:

* identical visited-state counts, transition counts, revisit counts and
  depth on every run that completes a level (i.e. all verified cells);
* identical verdicts everywhere; on violating cells the counterexample has
  the same (minimal) depth, and the bound/violation checks are applied at
  level barriers, so a run stopped mid-search may count the remainder of
  the level the serial search would have abandoned mid-way through.

The workers inherit the protocol via the ``fork`` start method (transition
guards and actions are closures and never pickle); only global states and
fingerprints cross process boundaries, using the compact pickling of
:class:`repro.mp.state.GlobalState`.  On platforms without ``fork`` the
function transparently falls back to the serial search.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from typing import List, Optional

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import SearchConfig, SearchOutcome, bfs_search
from ..engine.events import Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import enabled_executions
from ..mp.state import GlobalState
from .worker import collect_replies, frontier_worker


def default_mp_context():
    """The ``fork`` multiprocessing context, or None when unavailable.

    ``fork`` is required for two reasons: workers inherit the (unpicklable)
    protocol object, and forked children share the parent's hash seed so
    fingerprints — and with them the shard partition — agree across all
    processes.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def parallel_bfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    workers: int = 2,
    mp_context=None,
    track_parents: bool = True,
    worker_timeout: Optional[float] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Breadth-first search of one cell across ``workers`` processes.

    Args:
        protocol: The protocol instance to explore.
        invariant: The invariant to check in every reachable state.
        config: Search configuration; ``state_store == "full"`` dedups
            shards by exact states, every other kind by fingerprints.
        workers: Worker process count (= shard count).  ``workers <= 1``
            delegates to the serial :func:`bfs_search`.
        mp_context: Multiprocessing context; defaults to ``fork``.  Without
            a fork-capable platform the search falls back to serial.
        track_parents: Keep the parent edge of every discovered state so a
            violation can be rebuilt into a counterexample.  Disabling this
            drops the coordinator-side state table — the memory profile then
            matches the sharded fingerprint store — at the price of
            ``counterexample=None`` on violations.
        worker_timeout: Optional hard cap per level barrier.  By default the
            coordinator waits for as long as every worker process is alive
            (an arbitrarily long level is progress, not a hang; crashed
            workers are detected by liveness polling), so large cells never
            abort spuriously.  Prefer ``config.max_seconds`` for budgeting
            the search as a whole.
        observer: Optional coordinator-side event observer; receives one
            ``level-completed`` event per level barrier (including the
            exchanged delta count), one ``worker-telemetry`` event per
            worker per expand barrier (cumulative expansions/transitions,
            riding the existing replies — no extra IPC) plus
            ``violation-found`` events.
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`;
            receives frontier-peak and per-worker transition counters at
            the end of the run.

    Returns:
        A :class:`SearchOutcome`, shaped exactly like the serial one.
    """
    config = config or SearchConfig()
    if workers <= 1:
        return bfs_search(protocol, invariant, config, observer=observer,
                          telemetry=telemetry)
    context = mp_context if mp_context is not None else default_mp_context()
    if context is None:
        warnings.warn(
            "parallel_bfs_search requires a fork-capable platform; "
            "falling back to serial bfs_search",
            RuntimeWarning,
            stacklevel=2,
        )
        return bfs_search(protocol, invariant, config, observer=observer,
                          telemetry=telemetry)

    statistics = SearchStatistics()
    start_time = time.perf_counter()

    initial = protocol.initial_state()
    statistics.states_visited = 1
    if not invariant.holds_in(initial, protocol):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        counterexample = Counterexample(
            initial_state=initial, steps=(), property_name=invariant.name
        )
        return SearchOutcome(False, False, counterexample, statistics)

    exact = config.state_store == "full"
    task_queues = [context.Queue() for _ in range(workers)]
    result_queue = context.Queue()
    processes = [
        context.Process(
            target=frontier_worker,
            args=(
                worker_id,
                workers,
                protocol,
                invariant,
                exact,
                track_parents,
                task_queues[worker_id],
                result_queue,
            ),
            daemon=True,
        )
        for worker_id in range(workers)
    ]

    parents = {initial.fingerprint(): None} if track_parents else None
    states_by_fp = {initial.fingerprint(): initial} if track_parents else None

    def rebuild(violating_fp: int) -> Counterexample:
        """Walk the parent chain back to the initial state.

        Executions are not shipped across processes (transition closures do
        not pickle); they are recomputed here from the deterministic enabled
        order, which is identical in every process.
        """
        steps: List[Step] = []
        cursor = violating_fp
        while parents[cursor] is not None:
            parent_fp, exec_index = parents[cursor]
            parent_state = states_by_fp[parent_fp]
            execution = enabled_executions(parent_state, protocol)[exec_index]
            steps.append(Step(execution=execution, state=states_by_fp[cursor]))
            cursor = parent_fp
        steps.reverse()
        return Counterexample(
            initial_state=initial, steps=tuple(steps), property_name=invariant.name
        )

    verified = True
    complete = True
    counterexample: Optional[Counterexample] = None
    peak_frontier = 1
    worker_totals = [[0, 0] for _ in range(workers)]  # expansions, transitions
    try:
        for process in processes:
            process.start()
        for queue in task_queues:
            queue.put(("seed", initial))

        frontier_total = 1
        depth = 0
        while frontier_total:
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    complete = False
                    break
            if config.max_depth is not None and depth >= config.max_depth:
                complete = False
                break

            # Expand: every worker walks its local frontier.
            for queue in task_queues:
                queue.put(("expand", None))
            expanded = collect_replies(
                result_queue, workers, "expanded", worker_timeout, processes
            )
            for reply_worker, outgoing, expansions, transitions in expanded:
                statistics.enabled_set_computations += expansions
                statistics.full_expansions += expansions
                statistics.transitions_executed += transitions
                totals = worker_totals[reply_worker]
                totals[0] += expansions
                totals[1] += transitions
                if observer is not None and expansions:
                    emit(observer, "worker-telemetry", worker=reply_worker,
                         expansions=totals[0], transitions_executed=totals[1])

            # Exchange deltas: candidates routed to each owner shard, in
            # worker-id order so the absorb order is deterministic.
            level_deltas = 0
            for destination in range(workers):
                candidates = []
                for _worker_id, outgoing, _expansions, _transitions in expanded:
                    candidates.extend(outgoing[destination])
                level_deltas += len(candidates)
                task_queues[destination].put(("absorb", candidates))
            absorbed = collect_replies(
                result_queue, workers, "absorbed", worker_timeout, processes
            )

            level_new = 0
            level_violations: List[int] = []
            for _worker_id, new_count, revisits, violations, new_records in absorbed:
                level_new += new_count
                statistics.revisits += revisits
                level_violations.extend(violations)
                if track_parents and new_records:
                    for fingerprint, successor, parent_fp, exec_index in new_records:
                        parents[fingerprint] = (parent_fp, exec_index)
                        states_by_fp[fingerprint] = successor
            statistics.states_visited += level_new

            if level_violations:
                verified = False
                if track_parents:
                    counterexample = rebuild(level_violations[0])
                emit(observer, "violation-found",
                     states_visited=statistics.states_visited, depth=depth + 1)
                if config.stop_at_first_violation:
                    complete = False
                    break
            if (
                config.max_states is not None
                and statistics.states_visited >= config.max_states
            ):
                complete = False
                depth += 1
                statistics.max_depth = max(statistics.max_depth, depth)
                break

            if level_new:
                # Mirror the serial engine's stream: only levels the search
                # carries forward are observable — a level that ends the run
                # (violation stop, truncation) or discovers nothing is
                # bookkeeping, and violation-found precedes the level event
                # when both occur.
                emit(observer, "level-completed", depth=depth + 1,
                     new_states=level_new, deltas=level_deltas,
                     states_visited=statistics.states_visited)
            frontier_total = level_new
            peak_frontier = max(peak_frontier, frontier_total)
            depth += 1
            # Mirror the serial engines: ``max_depth`` counts the edges to
            # the deepest *discovered* state, not the final empty level.
            if frontier_total:
                statistics.max_depth = max(statistics.max_depth, depth)
    finally:
        for queue in task_queues:
            try:
                queue.put(("stop", None))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()

    statistics.elapsed_seconds = time.perf_counter() - start_time
    if telemetry is not None:
        telemetry.metrics.gauge(
            "frontier_peak", "widest BFS level explored"
        ).set(peak_frontier)
        if parents is not None:
            telemetry.record_store(parents)
        for worker_id, (_expansions, transitions) in enumerate(worker_totals):
            telemetry.record_worker(worker_id,
                                    {"transitions_executed": transitions})
    return SearchOutcome(
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=statistics,
    )
