"""Work-stealing parallel depth-first search.

This is the engine that parallelises the *reduced* searches — the unreduced
DFS baseline and the stubborn-set (SPOR / SPOR-NET) configurations that
reproduce Table I.  Level-synchronous frontier parallelism (PR 2's
:func:`~repro.parallel.bfs.parallel_bfs_search`) cannot drive them: the
stubborn-set cycle proviso needs a DFS stack, and a reduced search has no
meaningful levels.  Instead each worker runs an ordinary depth-first
explorer and parallelism comes from *stealing subtrees*:

* every worker owns a private DFS stack and a public deque
  (:class:`~repro.parallel.worksteal.WorkStealingDeques`); when its deque
  runs dry it donates the unexplored executions of its shallowest stack
  frame — the largest subtree it can give away — as one
  :class:`~repro.parallel.worksteal.StolenFrame`;
* idle workers steal from the tail of the busiest victim's deque and resume
  the frame as if they had expanded it themselves: the frame carries the
  enabled-order indices of its pending executions, the execution-index path
  from the initial state (PR 2's counterexample-rebuild currency) and its
  ancestor fingerprints (so the cycle proviso sees the exact serial stack);
* a lock-striped shared claim table
  (:class:`~repro.parallel.worksteal.StripedClaimTable`) arbitrates which
  worker explores a state: the first worker to claim a fingerprint expands
  it, every other reach is a revisit.  Claims are fingerprint-based (the
  standard bit-state trade-off) regardless of ``config.state_store``.

Equivalence to the serial search:

* **Unreduced DFS** explores the reachability closure, which is independent
  of exploration order, so visited-state, transition and revisit counts are
  *identical* to serial on every run that completes (the conformance matrix
  pins this for 1, 2 and 4 workers).
* **Stubborn sets** choose their reduced sets per state exactly as the
  serial DFS would have for the same access path (same seed heuristic, same
  closure, cycle proviso over the true root-to-state path).  Which access
  path claims a state first is scheduling-dependent, so visited counts may
  vary across runs while verdict soundness is preserved; stubborn sets
  carry no sleep sets or other cross-subtree state, which is what makes
  subtree stealing sound here.  (The per-path proviso is only sound when no
  cycle spans workers: a cyclic protocol whose cycles cross subtree
  boundaries would, like any distributed stubborn-set DFS, need a stronger
  ignoring-prevention condition.  Protocols that declare
  ``cyclic_state_graph=True`` in their metadata — the crash-recovery family
  — are therefore *refused* by the worksteal engines when combined with a
  stubborn-set reduction: the registry raises a structured
  ``UnsupportedPlanError`` pointing at the unreduced alternative instead of
  silently risking ignored transitions.  Acyclic protocols — transitions
  strictly consume trigger messages — are unaffected.)
* **DPOR is excluded by design.**  Its backtrack sets are mutated up the
  *serial* stack as race reversals are discovered; donating a subtree would
  detach frames from the stack their backtrack semantics refer to.  The
  checker rejects ``workers > 1`` for DPOR with a diagnostic instead of
  silently degrading.

Workers inherit the protocol (and the pre-built reducer) via the ``fork``
start method — transition guards and actions are closures and never pickle.
Platforms without ``fork`` transparently fall back to the serial search,
mirroring :func:`~repro.parallel.bfs.parallel_bfs_search`.
"""

from __future__ import annotations

import time
import traceback
import warnings
from typing import Dict, List, Optional, Set, Tuple

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import (
    ReductionContext,
    Reducer,
    SearchConfig,
    SearchOutcome,
    _maybe_span,
    dfs_search,
)
from ..checker.statestore import ShardedFingerprintStore
from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine
from ..mp.state import GlobalState
from .bfs import default_mp_context
from .worker import collect_replies, shutdown_processes
from .worksteal import (
    HEARTBEAT_EVERY,
    BatchedCounter,
    StallDetector,
    StolenFrame,
    StripedClaimTable,
    WorkerTelemetryChannel,
    WorkStealingDeques,
    pending_indices,
)

__all__ = ["parallel_dfs_search"]

#: Statistic keys shipped in every worker's final report.
_STAT_KEYS = (
    "transitions_executed",
    "revisits",
    "enabled_set_computations",
    "full_expansions",
    "reduced_expansions",
    "max_depth",
    "deadlock_states",
    "claimed",
)


class _LocalFrame:
    """One entry of a worker's private DFS stack."""

    __slots__ = ("state", "fingerprint", "enabled", "pending", "next_index", "path", "successors")

    def __init__(self, state: GlobalState, fingerprint: int, path: Tuple[int, ...]) -> None:
        self.state = state
        self.fingerprint = fingerprint
        self.enabled: Tuple = ()
        self.pending: Tuple[int, ...] = ()
        self.next_index = 0
        self.path = path
        self.successors: Dict = {}


def _worksteal_worker(
    worker_id: int,
    protocol: Protocol,
    invariant: Invariant,
    reducer: Optional[Reducer],
    config: SearchConfig,
    table: StripedClaimTable,
    deques: WorkStealingDeques,
    result_queue,
    start_time: float,
    claims_counter,
    channel: Optional[WorkerTelemetryChannel] = None,
) -> None:
    """Worker-process body: steal frames, explore subtrees depth-first.

    All heavyweight arguments arrive through ``fork`` (no pickling).  The
    worker reports ``("report", id, stats, violations, truncated)`` on exit,
    or ``("error", id, traceback)`` after setting the stop flag so its
    siblings wind down too.  Claims are additionally flushed (batched, to
    keep lock traffic negligible) into ``claims_counter`` so the
    coordinator can emit *in-flight* progress events instead of waiting for
    the end-of-run worker reports; live per-worker counters and heartbeats
    flow the same batched way through ``channel``.
    """
    try:
        engine = SuccessorEngine.for_search(protocol, stateful=True)
        # Local claim cache: fingerprints this worker has already routed
        # through the shared table (won or lost) are revisits, lock-free.
        seen = ShardedFingerprintStore(num_shards=8)
        stats = {key: 0 for key in _STAT_KEYS}
        violations: List[Tuple[int, ...]] = []
        truncated = False
        claims = BatchedCounter(claims_counter)
        beats = 0

        def publish_telemetry() -> None:
            if channel is not None:
                channel.publish(
                    worker_id,
                    stats["claimed"],
                    stats["transitions_executed"],
                    stats["revisits"],
                )

        def expand(frame: _LocalFrame, ancestor_fps: frozenset, stack_fps: Set[int]) -> None:
            """Compute a fresh frame's (possibly reduced) pending indices."""
            enabled = engine.enabled(frame.state)
            stats["enabled_set_computations"] += 1
            frame.enabled = enabled
            if config.check_deadlocks and not enabled:
                stats["deadlock_states"] += 1
            if reducer is None or len(enabled) <= 1:
                stats["full_expansions"] += 1
                frame.pending = tuple(range(len(enabled)))
                return

            def successor_of(execution) -> GlobalState:
                cached = frame.successors.get(execution)
                if cached is None:
                    cached = engine.successor(frame.state, execution)
                    frame.successors[execution] = cached
                return cached

            context = ReductionContext(
                state=frame.state,
                enabled=enabled,
                protocol=protocol,
                successor=successor_of,
                on_stack=lambda state: (
                    state.fingerprint() in stack_fps
                    or state.fingerprint() in ancestor_fps
                ),
                engine=engine,
            )
            reduced = reducer(context)
            if len(reduced) < len(enabled):
                stats["reduced_expansions"] += 1
            else:
                stats["full_expansions"] += 1
            frame.pending = pending_indices(enabled, reduced)

        def maybe_donate(
            task: StolenFrame, stack: List[_LocalFrame], floor: List[int]
        ) -> None:
            """Publish the shallowest unexplored sibling subtree when the
            public deque is empty.  The top frame only donates when it can
            keep one execution for its owner, avoiding publish/repop churn.

            ``floor[0]`` is a persistent cursor over the stack: a frame's
            pending set only ever shrinks, so once a position is exhausted
            it stays exhausted and is never rescanned — without it a deep
            chain-shaped search would walk the whole stack per transition.
            """
            if deques.size_hint(worker_id) > 0:
                return
            top = len(stack) - 1
            floor[0] = min(floor[0], top)
            for position in range(floor[0], len(stack)):
                frame = stack[position]
                cut = frame.next_index
                if position == top:
                    cut += 1
                donated = frame.pending[cut:]
                if not donated:
                    if frame.next_index >= len(frame.pending):
                        floor[0] = position + 1
                    continue
                frame.pending = frame.pending[:cut]
                ancestors = task.ancestors + tuple(
                    below.fingerprint for below in stack[:position]
                )
                deques.publish(
                    worker_id,
                    StolenFrame(
                        state=frame.state,
                        pending=donated,
                        path=frame.path,
                        ancestors=ancestors,
                    ),
                )
                return

        def run_task(task: StolenFrame) -> None:
            nonlocal truncated, beats
            ancestor_fps = frozenset(task.ancestors)
            root = _LocalFrame(task.state, task.state.fingerprint(), task.path)
            stack = [root]
            stack_fps: Set[int] = set()
            donate_floor = [0]
            if task.pending is None:
                # The seed frame of the whole search: expand like serial.
                expand(root, ancestor_fps, stack_fps)
            else:
                # A donated frame: resume exactly the victim's pending set.
                root.enabled = engine.enabled(root.state)
                stats["enabled_set_computations"] += 1
                root.pending = task.pending
            stack_fps.add(root.fingerprint)

            while stack:
                if deques.stop.is_set():
                    return
                beats += 1
                if not beats & (HEARTBEAT_EVERY - 1):
                    publish_telemetry()
                if config.max_seconds is not None:
                    if time.perf_counter() - start_time > config.max_seconds:
                        truncated = True
                        deques.stop.set()
                        return
                maybe_donate(task, stack, donate_floor)
                frame = stack[-1]
                if frame.next_index >= len(frame.pending):
                    stack.pop()
                    stack_fps.discard(frame.fingerprint)
                    continue
                index = frame.pending[frame.next_index]
                frame.next_index += 1
                execution = frame.enabled[index]
                successor = frame.successors.get(execution)
                if successor is None:
                    successor = engine.successor(frame.state, execution)
                stats["transitions_executed"] += 1

                fingerprint = successor.fingerprint()
                if seen.contains_fingerprint(fingerprint):
                    stats["revisits"] += 1
                    continue
                seen.add_fingerprint(fingerprint)
                if not table.add_fingerprint(fingerprint):
                    stats["revisits"] += 1
                    continue
                stats["claimed"] += 1
                claims.increment()

                if not invariant.holds_in(successor, protocol):
                    violations.append(frame.path + (index,))
                    if config.stop_at_first_violation:
                        deques.stop.set()
                        return
                if config.max_states is not None and len(table) >= config.max_states:
                    truncated = True
                    deques.stop.set()
                    return
                if config.max_depth is not None and len(frame.path) >= config.max_depth:
                    truncated = True
                    continue

                child = _LocalFrame(successor, fingerprint, frame.path + (index,))
                expand(child, ancestor_fps, stack_fps)
                stack.append(child)
                stack_fps.add(fingerprint)
                if len(child.path) > stats["max_depth"]:
                    stats["max_depth"] = len(child.path)

        while not (deques.stop.is_set() or deques.done.is_set()):
            task = deques.next_task(worker_id)
            if task is None:
                claims.flush()
                publish_telemetry()
                # Resigned: spin on steal attempts until work or shutdown.
                while not (deques.stop.is_set() or deques.done.is_set()):
                    task = deques.try_acquire(worker_id)
                    if task is not None:
                        break
                    if channel is not None:
                        channel.beat(worker_id)
                    time.sleep(WorkStealingDeques.IDLE_SLEEP_SECONDS)
                if task is None:
                    break
            run_task(task)
        claims.flush()
        publish_telemetry()
        result_queue.put(("report", worker_id, stats, violations, truncated))
    except BaseException:
        deques.stop.set()
        result_queue.put(("error", worker_id, traceback.format_exc()))


def _replay_counterexample(
    protocol: Protocol, invariant: Invariant, path: Tuple[int, ...]
) -> Counterexample:
    """Rebuild a counterexample from an execution-index path.

    Executions are recomputed from the deterministic enabled order in the
    coordinator process — the same rebuild currency the frontier-parallel
    BFS uses — so nothing unpicklable ever crossed a process boundary.
    """
    engine = SuccessorEngine.for_search(protocol, stateful=True)
    cursor = engine.initial_state()
    initial = cursor
    steps: List[Step] = []
    for index in path:
        execution = engine.enabled(cursor)[index]
        cursor = engine.successor(cursor, execution)
        steps.append(Step(execution=execution, state=cursor))
    return Counterexample(
        initial_state=initial, steps=tuple(steps), property_name=invariant.name
    )


def parallel_dfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    workers: int = 2,
    reducer: Optional[Reducer] = None,
    mp_context=None,
    worker_timeout: Optional[float] = None,
    claim_capacity: Optional[int] = None,
    claim_stripes: Optional[int] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Depth-first search of one cell across ``workers`` stealing processes.

    Args:
        protocol: The protocol instance to explore.
        invariant: The invariant to check in every claimed state.
        config: Search configuration.  The parallel engine is always
            stateful and deduplicates by fingerprint (``state_store`` is not
            consulted; the exact-store option has no shared-memory analogue).
        workers: Worker process count.  ``workers <= 1`` delegates to the
            serial :func:`~repro.checker.search.dfs_search` with the same
            reducer, so worker sweeps include an exact serial baseline.
        reducer: Optional partial-order reducer (e.g. a pre-built
            :class:`~repro.por.stubborn.StubbornSetProvider`'s ``reduce``),
            inherited by every worker via ``fork``.
        mp_context: Multiprocessing context; defaults to ``fork``.  Without
            a fork-capable platform the search falls back to serial.
        worker_timeout: Optional hard wall-clock cap; on expiry the run
            fails with :class:`RuntimeError` (prefer ``config.max_seconds``
            for budgeting, which truncates gracefully).
        claim_capacity: Total slot count of the shared claim table
            (default ``2**20``, or four times ``config.max_states`` when
            that is larger).
        claim_stripes: Lock stripes of the claim table (default scales with
            the worker count).
        observer: Optional coordinator-side event observer; receives one
            ``worker-report`` event per worker (claimed states, steals-side
            counters) plus ``violation-found`` events.  When attached, the
            coordinator also relays live ``worker-telemetry`` gauges (from
            the workers' shared counter rows) and ``worker-stalled``
            warnings (heartbeat silence beyond the stall threshold).
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`;
            receives per-worker counters, steal/publish totals, and claim
            table stripe occupancy at the end of the run.

    Returns:
        A :class:`SearchOutcome` shaped exactly like the serial one.  When
        several workers report violations, the counterexample is rebuilt
        from the lexicographically smallest (shortest-first) execution-index
        path, making the reported trace deterministic given the set of
        discovered violations.
    """
    config = config or SearchConfig()
    if workers <= 1:
        return dfs_search(protocol, invariant, config, reducer=reducer,
                          observer=observer, telemetry=telemetry)
    context = mp_context if mp_context is not None else default_mp_context()
    if context is None:
        warnings.warn(
            "parallel_dfs_search requires a fork-capable platform; "
            "falling back to serial dfs_search",
            RuntimeWarning,
            stacklevel=2,
        )
        return dfs_search(protocol, invariant, config, reducer=reducer,
                          observer=observer, telemetry=telemetry)

    statistics = SearchStatistics()
    start_time = time.perf_counter()

    initial = protocol.initial_state()
    statistics.states_visited = 1
    if not invariant.holds_in(initial, protocol):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        counterexample = Counterexample(
            initial_state=initial, steps=(), property_name=invariant.name
        )
        return SearchOutcome(False, False, counterexample, statistics)

    capacity = claim_capacity
    if capacity is None:
        capacity = 1 << 20
        if config.max_states is not None:
            capacity = max(capacity, 4 * config.max_states)
    stripes = claim_stripes if claim_stripes is not None else max(16, 4 * workers)
    table = StripedClaimTable(capacity=capacity, stripes=stripes, mp_context=context)
    table.add_fingerprint(initial.fingerprint())

    verified = True
    complete = True
    truncated = False
    counterexample: Optional[Counterexample] = None
    deadlock_states = 0
    manager = context.Manager()
    processes = []
    deques = None
    # Shared live-progress counter (1 = the pre-claimed initial state).
    claims_counter = context.Value("l", 1)
    # Live per-worker counters + heartbeats; workers flush them on the
    # same batched cadence as the claim counter, so the cost is amortised.
    channel = WorkerTelemetryChannel(workers, mp_context=context)
    stall_detector = StallDetector(workers)
    try:
        deques = WorkStealingDeques(workers, manager, mp_context=context)
        # Seeding the frame with its own fingerprint as "ancestor" mirrors
        # the serial search, whose stack contains the initial state while
        # the root expansion (and its proviso checks) runs.
        deques.publish(
            0,
            StolenFrame(
                state=initial,
                pending=None,
                path=(),
                ancestors=(initial.fingerprint(),),
            ),
        )
        result_queue = context.Queue()
        processes = [
            context.Process(
                target=_worksteal_worker,
                args=(
                    worker_id,
                    protocol,
                    invariant,
                    reducer,
                    config,
                    table,
                    deques,
                    result_queue,
                    start_time,
                    claims_counter,
                    channel,
                ),
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        for process in processes:
            process.start()

        deadline = None if worker_timeout is None else start_time + worker_timeout
        last_progress = 1
        last_rows = [None] * workers
        while not (deques.done.is_set() or deques.stop.is_set()):
            if deadline is not None and time.perf_counter() > deadline:
                deques.stop.set()
                raise RuntimeError(
                    "parallel_dfs_search: timed out waiting for the workers"
                )
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    truncated = True
                    deques.stop.set()
                    break
            if any(not process.is_alive() for process in processes):
                # A worker died; collect_replies below drains its last
                # words (an error reply) or raises.
                break
            if observer is not None:
                # In-flight progress: the workers' batched claim flushes
                # make this a live (slightly lagging) states-visited count.
                claimed = claims_counter.value
                if claimed - last_progress >= PROGRESS_INTERVAL:
                    last_progress = claimed
                    emit(observer, "progress", states_visited=claimed)
                # Live per-worker gauges: relay a worker's shared counter
                # row only when it changed since the last poll.
                for worker_id, row in enumerate(channel.read_all()):
                    if row != last_rows[worker_id]:
                        last_rows[worker_id] = row
                        emit(observer, "worker-telemetry", worker=worker_id,
                             claimed=row[0], transitions_executed=row[1],
                             revisits=row[2])
                for worker_id, idle in stall_detector.check(channel.heartbeats()):
                    emit(observer, "worker-stalled", worker=worker_id,
                         idle_seconds=idle)
            deques.done.wait(0.05)

        # Hand collect_replies the *remaining* budget so worker_timeout is
        # one hard cap over the whole run, not one per phase.
        remaining = None
        if deadline is not None:
            remaining = max(0.1, deadline - time.perf_counter())
        replies = collect_replies(result_queue, workers, "report", remaining, processes)
        violations: List[Tuple[int, ...]] = []
        for worker_id, stats, worker_violations, worker_truncated in replies:
            emit(observer, "worker-report", worker=worker_id,
                 claimed=stats["claimed"],
                 transitions_executed=stats["transitions_executed"],
                 revisits=stats["revisits"])
            statistics.transitions_executed += stats["transitions_executed"]
            statistics.revisits += stats["revisits"]
            statistics.enabled_set_computations += stats["enabled_set_computations"]
            statistics.full_expansions += stats["full_expansions"]
            statistics.reduced_expansions += stats["reduced_expansions"]
            statistics.max_depth = max(statistics.max_depth, stats["max_depth"])
            violations.extend(tuple(path) for path in worker_violations)
            truncated = truncated or worker_truncated
            if telemetry is not None:
                telemetry.record_worker(worker_id, stats)
        statistics.states_visited = len(table)
        deadlock_states = sum(reply[1]["deadlock_states"] for reply in replies)
        if telemetry is not None:
            telemetry.record_worksteal(
                steals=deques.steal_count(),
                publishes=deques.publish_count(),
                claim_table=table,
            )

        if violations:
            verified = False
            best = min(violations, key=lambda path: (len(path), path))
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(best))
            with _maybe_span(telemetry, "ce-replay", path_length=len(best)):
                counterexample = _replay_counterexample(protocol, invariant, best)
        if truncated or (not verified and config.stop_at_first_violation):
            complete = False
    finally:
        if deques is not None:
            deques.stop.set()
        shutdown_processes(processes, queues=[result_queue],
                           telemetry=telemetry)
        manager.shutdown()

    statistics.elapsed_seconds = time.perf_counter() - start_time
    return SearchOutcome(
        verified=verified,
        complete=complete,
        counterexample=counterexample,
        statistics=statistics,
        deadlock_states=deadlock_states,
    )
