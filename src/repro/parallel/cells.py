"""Cell-level parallel experiment runner.

The paper's Table I is a grid of independent cells — protocol instance ×
model variant × search strategy — which makes a sweep embarrassingly
parallel at cell granularity.  A cell is described by a :class:`CellSpec`
whose task form contains only strings and numbers: pool workers rebuild the
protocol from the catalog key, so the (unpicklable) transition closures
never cross a process boundary and any multiprocessing start method works.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis.aggregate import result_record
from ..checker import CheckerOptions, ModelChecker, SearchConfig, Strategy
from ..protocols.catalog import CatalogEntry, default_catalog, entry_by_key

#: Model variants a catalog entry can be checked under.
MODELS = ("quorum", "single")


@dataclass(frozen=True)
class CellSpec:
    """One Table-I cell: which protocol to check, how, and within what bounds.

    Attributes:
        key: Catalog key of the protocol instance (see
            :func:`repro.protocols.catalog.default_catalog`).
        model: ``"quorum"`` or ``"single"``.
        strategy: Strategy value string (``"spor"``, ``"bfs"``, ...).
        scale: Catalog scale the key belongs to (``"small"`` / ``"paper"``).
        stateful: Stateful search (ignored by DPOR, which is stateless).
        state_store: Visited-state store kind for stateful searches.
        max_states / max_seconds: Optional exploration budgets.
        workers: *Inner* worker count for the cell's own search: the
            frontier-parallel engine for ``"bfs"``, the work-stealing DFS
            for the DFS-shaped strategies (``"unreduced"``/``"dfs"``,
            ``"spor"``/``"stubborn"``, ``"spor-net"``).  ``"dpor"`` rejects
            ``workers > 1``.
        seed_heuristic: SPOR seed-transition heuristic.
    """

    key: str
    model: str = "quorum"
    strategy: str = "spor"
    scale: str = "small"
    stateful: bool = True
    state_store: str = "full"
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    workers: int = 1
    seed_heuristic: str = "opposite-transaction"

    def to_task(self) -> Dict:
        """The picklable task form handed to pool workers."""
        return asdict(self)


def _resolve_entry(key: str, scale: str) -> CatalogEntry:
    entry = entry_by_key(key, scale)
    if entry is None:
        known = ", ".join(e.key for e in default_catalog(scale))
        raise KeyError(f"unknown catalog cell {key!r} (scale {scale!r}; known: {known})")
    return entry


def run_cell_task(task: Dict) -> Dict:
    """Run one cell from its task form and return its JSON-able record.

    This is the pool-worker entry point; it is also what the serial path
    calls, so a cell behaves identically whether or not it was farmed out.
    """
    spec = CellSpec(**task)
    entry = _resolve_entry(spec.key, spec.scale)
    if spec.model not in MODELS:
        raise ValueError(f"unknown model variant {spec.model!r} (expected one of {MODELS})")
    protocol = entry.quorum_model() if spec.model == "quorum" else entry.single_model()
    options = CheckerOptions(
        search=SearchConfig(
            stateful=spec.stateful,
            state_store=spec.state_store,
            max_states=spec.max_states,
            max_seconds=spec.max_seconds,
        ),
        seed_heuristic=spec.seed_heuristic,
        workers=spec.workers,
    )
    started = time.perf_counter()
    result = ModelChecker(protocol, entry.invariant, options).run(Strategy(spec.strategy))
    wall_seconds = time.perf_counter() - started
    # A truncated search that found no counterexample proves nothing, so it
    # must not count as agreeing with the paper's expected outcome; a found
    # counterexample is conclusive evidence even when the search stopped at
    # it (stop-at-first-violation always reports complete=False).
    conclusive = result.complete or result.found_counterexample
    return result_record(
        result,
        cell=spec.key,
        model=spec.model,
        scale=spec.scale,
        workers=spec.workers,
        store=spec.state_store,
        expect_violation=entry.expect_violation,
        ok=conclusive and result.found_counterexample == entry.expect_violation,
        wall_seconds=wall_seconds,
    )


def run_cells(
    specs: Sequence[CellSpec],
    workers: Optional[int] = None,
    mp_context=None,
) -> List[Dict]:
    """Run a batch of cells, optionally across a process pool.

    Args:
        specs: The cells to run.
        workers: Pool size; ``None``, 0 or 1 runs the cells serially in
            this process.  Results always come back in ``specs`` order.
        mp_context: Multiprocessing context override (tests use this).

    Returns:
        One record per spec (see :func:`run_cell_task`).
    """
    tasks = [spec.to_task() for spec in specs]
    if not workers or workers <= 1 or len(tasks) <= 1:
        return [run_cell_task(task) for task in tasks]
    if any(spec.workers > 1 for spec in specs):
        # Pool workers are daemonic and cannot spawn the in-cell search
        # processes, so inner-parallel cells run in this process, one at a
        # time — the two axes compose as inner × outer, not inner ∧ outer.
        return [run_cell_task(task) for task in tasks]
    context = mp_context if mp_context is not None else multiprocessing.get_context()
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(run_cell_task, tasks)


def specs_for_sweep(
    keys: Optional[Iterable[str]] = None,
    scale: str = "small",
    models: Sequence[str] = ("quorum",),
    strategy: str = "spor",
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    state_store: str = "full",
    cell_workers: int = 1,
) -> List[CellSpec]:
    """Build the cell grid of a sweep: every requested key × model variant.

    ``keys=None`` sweeps the whole catalog at the given scale.
    ``cell_workers`` sets the *inner* worker count of every cell (the
    strategy×workers axis); the pool size of :func:`run_cells` remains the
    outer, cell-level axis.
    """
    if keys is None:
        resolved = [entry.key for entry in default_catalog(scale)]
    else:
        resolved = [key for key in keys]
        for key in resolved:
            _resolve_entry(key, scale)
    specs = []
    for key in resolved:
        for model in models:
            specs.append(
                CellSpec(
                    key=key,
                    model=model,
                    strategy=strategy,
                    scale=scale,
                    state_store=state_store,
                    max_states=max_states,
                    max_seconds=max_seconds,
                    workers=cell_workers,
                )
            )
    return specs
