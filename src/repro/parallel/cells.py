"""Cell-level parallel experiment runner.

The paper's Table I is a grid of independent cells — protocol instance ×
model variant × check plan — which makes a sweep embarrassingly parallel at
cell granularity.  A cell is described by a :class:`CellSpec` whose task
form contains only strings and numbers: pool workers rebuild the protocol
from the catalog key, so the (unpicklable) transition closures never cross
a process boundary and any multiprocessing start method works.

Cells run on the composable engine layer (:mod:`repro.engine`): each spec
either names a legacy ``strategy`` string (translated by the compatibility
shim) or spells the plan axes out explicitly (``shape`` / ``reduction`` /
``backend``); both forms funnel through
:func:`repro.engine.registry.run_plan`, so the records a sweep emits carry
the resolved axes and engine name.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import asdict, dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis.aggregate import result_record
from ..checker import CheckerOptions, SearchConfig, Strategy
from ..checker.checker import plan_for_strategy
from ..engine.events import Observer
from ..engine.plan import CheckPlan
from ..engine.registry import run_plan
from ..protocols.catalog import CatalogEntry, default_catalog, entry_by_key

#: Model variants a catalog entry can be checked under.
MODELS = ("quorum", "single")


@dataclass(frozen=True)
class CellSpec:
    """One Table-I cell: which protocol to check, how, and within what bounds.

    Attributes:
        key: Catalog key of the protocol instance (see
            :func:`repro.protocols.catalog.default_catalog`).
        model: ``"quorum"`` or ``"single"``.
        strategy: Legacy strategy value string (``"spor"``, ``"bfs"``, ...),
            used when ``shape``/``reduction`` are not given.
        scale: Catalog scale the key belongs to (``"small"`` / ``"paper"``).
        stateful: Stateful search (ignored by DPOR, which is stateless).
        state_store: Visited-state store kind for stateful searches.
        max_states / max_seconds: Optional exploration budgets.
        workers: *Inner* worker count for the cell's own search; plan
            resolution picks the backend (frontier-parallel for BFS shapes,
            work-stealing for DFS shapes; DPOR rejects ``workers > 1``).
        seed_heuristic: SPOR seed-transition heuristic.
        shape / reduction: Explicit plan axes; when either is set, they take
            precedence over ``strategy``.
        backend: Explicit execution backend (default ``"auto"`` lets the
            registry pick serial / frontier / worksteal).
        successors: Successor-engine family: ``"object"`` (default) or
            ``"fast"`` for the packed table-compiled fast path.
        goal: ``"invariant"`` (default) checks the entry's invariant;
            ``"liveness"`` checks its :class:`Eventually` property with a
            nested-DFS plan (entries without one raise).
        walks / walk_seed: Walk budget and root seed for
            ``backend="swarm"`` cells (``None`` elsewhere; the plan layer
            rejects walk parameters on exhaustive backends).
        max_depth: Per-walk step bound for swarm cells; also honoured as a
            depth budget by the exhaustive engines.
        chaos: Optional fault-plan spec injected into the cell's search
            workers (see :mod:`repro.chaos`); ``None`` injects nothing.
        supervise: Restart crashed search workers and re-execute their
            lost work (the default); ``False`` fails fast with an honest
            ``Inconclusive (worker crash)`` verdict.
        checkpoint_dir / checkpoint_every: Level-barrier checkpointing for
            BFS-shaped cells (see :mod:`repro.checker.checkpoint`).
        resume_from: Checkpoint file (or directory holding checkpoints) to
            resume the cell's search from.
    """

    key: str
    model: str = "quorum"
    strategy: str = "spor"
    scale: str = "small"
    stateful: bool = True
    state_store: str = "full"
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    workers: int = 1
    seed_heuristic: str = "opposite-transaction"
    shape: Optional[str] = None
    reduction: Optional[str] = None
    backend: str = "auto"
    successors: str = "object"
    goal: str = "invariant"
    walks: Optional[int] = None
    walk_seed: Optional[int] = None
    max_depth: Optional[int] = None
    chaos: Optional[str] = None
    supervise: bool = True
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    resume_from: Optional[str] = None

    def to_task(self) -> Dict:
        """The picklable task form handed to pool workers."""
        return asdict(self)

    def to_plan(self) -> CheckPlan:
        """The :class:`CheckPlan` this cell runs.

        Explicit ``shape``/``reduction`` axes win; otherwise the legacy
        ``strategy`` string goes through the compatibility shim so both
        forms resolve to the same engines.
        """
        if self.shape is None and self.reduction is None:
            options = CheckerOptions(
                search=SearchConfig(
                    stateful=self.stateful,
                    state_store=self.state_store,
                    max_states=self.max_states,
                    max_seconds=self.max_seconds,
                ),
                seed_heuristic=self.seed_heuristic,
                workers=self.workers,
            )
            plan = plan_for_strategy(Strategy(self.strategy), options)
            if self.backend != "auto":
                plan = replace(plan, backend=self.backend)
            if self.successors != "object":
                plan = replace(plan, successors=self.successors)
            if self.goal != "invariant":
                plan = replace(plan, goal=self.goal)
            if self.backend == "swarm":
                # replace() re-runs __post_init__, which normalises the
                # swarm axes (stateless, store="none", defaulted budget).
                plan = replace(plan, stateful=False, store="none",
                               walks=self.walks, walk_seed=self.walk_seed)
            if self.max_depth is not None:
                plan = replace(plan, max_depth=self.max_depth)
            return self._apply_fault_knobs(plan)
        # CheckPlan.__post_init__ owns the cross-axis normalisation (dpor is
        # stateless, stateless plans store nothing); pass the axes through.
        swarm = self.backend == "swarm"
        return self._apply_fault_knobs(CheckPlan(
            shape=self.shape or "dfs",
            reduction=self.reduction or "none",
            store="none" if swarm or not self.stateful else self.state_store,
            backend=self.backend,
            # Same workers<=1-means-serial spelling as the legacy branch
            # (which gets the clamp through plan_for_strategy).
            workers=max(1, self.workers),
            stateful=False if swarm else self.stateful,
            successors=self.successors,
            seed_heuristic=self.seed_heuristic,
            max_depth=self.max_depth,
            max_states=self.max_states,
            max_seconds=self.max_seconds,
            goal=self.goal,
            walks=self.walks,
            walk_seed=self.walk_seed,
        ))

    def _apply_fault_knobs(self, plan: CheckPlan) -> CheckPlan:
        """Layer the fault-tolerance knobs onto ``plan``.

        Applied identically to both plan-construction branches so a legacy
        ``strategy`` cell and an explicit-axes cell get the same chaos /
        supervision / checkpoint behaviour.
        """
        changes = {}
        if self.chaos is not None:
            changes["chaos"] = self.chaos
        if not self.supervise:
            changes["supervise"] = False
        if self.checkpoint_dir is not None:
            changes["checkpoint_dir"] = self.checkpoint_dir
        if self.checkpoint_every is not None:
            changes["checkpoint_every"] = self.checkpoint_every
        if self.resume_from is not None:
            changes["resume_from"] = self.resume_from
        return replace(plan, **changes) if changes else plan


def _resolve_entry(key: str, scale: str) -> CatalogEntry:
    entry = entry_by_key(key, scale)
    if entry is None:
        known = ", ".join(e.key for e in default_catalog(scale))
        raise KeyError(f"unknown catalog cell {key!r} (scale {scale!r}; known: {known})")
    return entry


def run_cell_task(task: Dict, observer: Optional[Observer] = None) -> Dict:
    """Run one cell from its task form and return its JSON-able record.

    This is the pool-worker entry point; it is also what the serial path
    calls, so a cell behaves identically whether or not it was farmed out.
    The optional ``observer`` (serial path only — observers do not cross
    process boundaries) receives the engine-event stream of the cell's run.
    """
    spec = CellSpec(**task)
    entry = _resolve_entry(spec.key, spec.scale)
    if spec.model not in MODELS:
        raise ValueError(f"unknown model variant {spec.model!r} (expected one of {MODELS})")
    protocol = entry.quorum_model() if spec.model == "quorum" else entry.single_model()
    if spec.goal == "liveness":
        if entry.liveness is None:
            raise ValueError(
                f"catalog entry {spec.key!r} carries no liveness property; "
                "only the crash-recovery family does"
            )
        prop = entry.liveness
        expect_violation = entry.expect_liveness_violation
    else:
        prop = entry.invariant
        expect_violation = entry.expect_violation
    started = time.perf_counter()
    result = run_plan(protocol, prop, spec.to_plan(), observer=observer)
    wall_seconds = time.perf_counter() - started
    # A truncated search that found no counterexample proves nothing, so it
    # must not count as agreeing with the paper's expected outcome; a found
    # counterexample is conclusive evidence even when the search stopped at
    # it (stop-at-first-violation always reports complete=False).
    conclusive = result.complete or result.found_counterexample
    extras: Dict = {}
    if spec.backend == "swarm":
        plan = result.plan
        extras["walks"] = plan.walks if plan is not None else spec.walks
        extras["walk_seed"] = (
            plan.walk_seed if plan is not None else spec.walk_seed
        )
    return result_record(
        result,
        cell=spec.key,
        model=spec.model,
        scale=spec.scale,
        workers=spec.workers,
        store=spec.state_store,
        expect_violation=expect_violation,
        ok=conclusive and result.found_counterexample == expect_violation,
        wall_seconds=wall_seconds,
        **extras,
    )


def run_cells(
    specs: Sequence[CellSpec],
    workers: Optional[int] = None,
    mp_context=None,
    observer: Optional[Observer] = None,
) -> List[Dict]:
    """Run a batch of cells, optionally across a process pool.

    Args:
        specs: The cells to run.
        workers: Pool size; ``None``, 0 or 1 runs the cells serially in
            this process.  Results always come back in ``specs`` order.
        mp_context: Multiprocessing context override (tests use this).
        observer: Optional engine-event observer.  Observers are plain
            objects and cannot cross a process boundary, so attaching one
            forces the serial loop (every cell's events then arrive in
            ``specs`` order on one stream).

    Returns:
        One record per spec (see :func:`run_cell_task`).
    """
    tasks = [spec.to_task() for spec in specs]
    if observer is not None or not workers or workers <= 1 or len(tasks) <= 1:
        return [run_cell_task(task, observer=observer) for task in tasks]
    if any(spec.workers > 1 for spec in specs):
        # Pool workers are daemonic and cannot spawn the in-cell search
        # processes, so inner-parallel cells run in this process, one at a
        # time — the two axes compose as inner × outer, not inner ∧ outer.
        return [run_cell_task(task) for task in tasks]
    context = mp_context if mp_context is not None else multiprocessing.get_context()
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(run_cell_task, tasks)


def specs_for_sweep(
    keys: Optional[Iterable[str]] = None,
    scale: str = "small",
    models: Sequence[str] = ("quorum",),
    strategy: str = "spor",
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    state_store: str = "full",
    cell_workers: int = 1,
    backend: str = "auto",
    successors: str = "object",
    goal: str = "invariant",
    walks: Optional[int] = None,
    walk_seed: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> List[CellSpec]:
    """Build the cell grid of a sweep: every requested key × model variant.

    ``keys=None`` sweeps the whole catalog at the given scale — restricted
    to the entries that carry a liveness property when ``goal="liveness"``.
    ``cell_workers`` sets the *inner* worker count of every cell (the
    strategy×workers axis); the pool size of :func:`run_cells` remains the
    outer, cell-level axis.  ``backend`` pins every cell's execution
    backend (default ``"auto"`` lets plan resolution choose);
    ``successors`` pins the successor-engine family the same way.
    Liveness cells always run the serial nested-DFS plan (``shape="dfs"``,
    ``reduction="none"``, one worker), which is the only supported liveness
    configuration.  ``backend="swarm"`` cells run the random-walk sampler
    with the given ``walks``/``walk_seed``/``max_depth`` budget (unreduced
    and stateless by construction — the ``strategy`` axis does not apply).
    """
    if keys is None:
        resolved = [
            entry.key
            for entry in default_catalog(scale)
            if goal != "liveness" or entry.liveness is not None
        ]
    else:
        resolved = [key for key in keys]
        for key in resolved:
            _resolve_entry(key, scale)
    specs = []
    for key in resolved:
        for model in models:
            if goal == "liveness":
                spec = CellSpec(
                    key=key,
                    model=model,
                    scale=scale,
                    state_store=state_store,
                    max_states=max_states,
                    max_seconds=max_seconds,
                    shape="dfs",
                    reduction="none",
                    backend=backend,
                    successors=successors,
                    goal="liveness",
                )
            elif backend == "swarm":
                # Sampling cells: unreduced by construction (the strategy
                # axis does not apply), walk budget instead of state budget.
                spec = CellSpec(
                    key=key,
                    model=model,
                    scale=scale,
                    stateful=False,
                    state_store="none",
                    max_states=max_states,
                    max_seconds=max_seconds,
                    workers=cell_workers,
                    shape="dfs",
                    reduction="none",
                    backend="swarm",
                    successors=successors,
                    walks=walks,
                    walk_seed=walk_seed,
                    max_depth=max_depth,
                )
            else:
                spec = CellSpec(
                    key=key,
                    model=model,
                    strategy=strategy,
                    scale=scale,
                    state_store=state_store,
                    max_states=max_states,
                    max_seconds=max_seconds,
                    workers=cell_workers,
                    backend=backend,
                    successors=successors,
                    max_depth=max_depth,
                )
            specs.append(spec)
    return specs
