"""Worker-process side of the frontier-parallel breadth-first search.

One worker owns exactly one shard of the search's fingerprint partition
(:func:`repro.checker.statestore.shard_of`): every global state whose
fingerprint routes to shard *i* is deduplicated, stored and expanded by
worker *i* and by nobody else.  Because ownership is a pure function of the
fingerprint, no locks are needed — the only synchronisation is the level
barrier at which candidate successors are exchanged.

The coordinator drives workers through a tiny command protocol (one command
queue per worker, one shared result queue):

``("seed", state)``
    Start of the search.  The worker claims the initial state if it owns
    its shard, making it the worker's level-0 frontier.
``("expand", None)``
    Expand the local frontier with a local
    :class:`~repro.mp.semantics.SuccessorEngine`: compute every enabled
    execution and successor, evaluate the invariant, and reply with the
    successors routed per destination shard (the *delta* of this level).
``("absorb", candidates)``
    Deduplicate the candidates routed to this worker's shard against the
    owned fingerprint set; the newly added states become the next local
    frontier.  Replies with the new/revisit counts and any violations.
``("restore", (owned_states, frontier_states))``
    Recovery/resume seeding: rebuild the shard set from ``owned_states``
    and adopt ``frontier_states`` as the local frontier.  Sent to a
    freshly restarted worker by the supervisor (replaying exactly the
    states the dead worker had accepted) and to every worker when a run
    resumes from a checkpoint.  No reply — commands are processed in
    queue order, so the next barrier command acknowledges it.
``("stop", None)``
    Terminate the worker loop.

All replies carry the worker id so the coordinator can collect one reply
per worker per phase.  Any exception is reported as an ``("error", ...)``
reply instead of silently killing the process.  A *hard* death — SIGKILL,
the OOM killer, or an injected ``os._exit`` from :mod:`repro.chaos` —
never reaches the error path; the coordinator detects it via liveness
polling and gets a structured :class:`WorkerCrashError`.
"""

from __future__ import annotations

import time
import traceback
from typing import List, Optional, Sequence, Tuple

from ..checker.property import Invariant
from ..checker.statestore import shard_of
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine
from ..mp.state import GlobalState

#: A candidate successor crossing the level barrier:
#: ``(successor state, invariant holds, parent fingerprint, execution index)``.
Candidate = Tuple[GlobalState, bool, int, int]


class WorkerCrashError(RuntimeError):
    """A worker process died without sending its barrier reply.

    Subclasses :class:`RuntimeError` so pre-supervision call sites keep
    working, but carries structure the supervisor needs to recover instead
    of aborting:

    Attributes:
        phase: The reply phase the collector was waiting for.
        workers: Ids of the dead workers whose replies are outstanding.
        replies: The partial reply list (one slot per worker, ``None``
            where outstanding) so surviving workers' barrier replies are
            not lost across a restart.
        attempts: Restart attempts already spent when a supervisor
            re-raises after giving up (0 when unsupervised).
    """

    def __init__(
        self,
        phase: str,
        workers: Sequence[int] = (),
        replies: Optional[list] = None,
        attempts: int = 0,
    ) -> None:
        names = ", ".join(str(worker) for worker in workers) or "?"
        super().__init__(
            f"parallel search: worker(s) {names} died without sending "
            f"{phase!r} reply"
        )
        self.phase = phase
        self.workers = tuple(workers)
        self.replies = replies
        self.attempts = attempts


def frontier_worker(
    worker_id: int,
    num_workers: int,
    protocol: Protocol,
    invariant: Invariant,
    exact: bool,
    track_parents: bool,
    task_queue,
    result_queue,
    chaos: Optional[str] = None,
) -> None:
    """Run the worker command loop (the ``multiprocessing.Process`` target).

    Args:
        worker_id: Index of this worker; also the shard it owns.
        num_workers: Total worker count (= shard count of the partition).
        protocol: The protocol under verification (inherited via ``fork``,
            so transition closures never need to pickle).
        invariant: The invariant checked in every discovered state.
        exact: Own the shard as a set of *states* (exact, mirrors the serial
            full store) instead of a set of fingerprints.
        track_parents: Include the successor state and its parent edge in
            the absorb reply so the coordinator can rebuild counterexamples.
        task_queue: This worker's command queue.
        result_queue: The shared reply queue.
        chaos: Optional :class:`repro.chaos.FaultPlan` spec; falls back to
            the ``REPRO_CHAOS`` environment variable.  ``None`` (the
            production default) injects nothing and costs nothing.
    """
    try:
        from ..chaos import chaos_hook_for_worker

        hook = chaos_hook_for_worker(chaos, worker_id, num_workers)
        engine = SuccessorEngine.for_search(protocol, stateful=True)
        shard = set()
        local_frontier: List[GlobalState] = []
        while True:
            command, payload = task_queue.get()
            if hook is not None:
                hook.on_command(command)
            if command == "stop":
                return
            if command == "seed":
                state: GlobalState = payload
                if shard_of(state.fingerprint(), num_workers) == worker_id:
                    shard.add(state if exact else state.fingerprint())
                    local_frontier = [state]
                else:
                    local_frontier = []
            elif command == "restore":
                owned_states, frontier_states = payload
                shard = set(
                    state if exact else state.fingerprint()
                    for state in owned_states
                )
                local_frontier = list(frontier_states)
            elif command == "expand":
                outgoing: List[List[Candidate]] = [[] for _ in range(num_workers)]
                expansions = 0
                transitions = 0
                for state in local_frontier:
                    enabled = engine.enabled(state)
                    expansions += 1
                    parent_fp = state.fingerprint()
                    for index, execution in enumerate(enabled):
                        successor = engine.successor(state, execution)
                        transitions += 1
                        holds = invariant.holds_in(successor, protocol)
                        destination = shard_of(successor.fingerprint(), num_workers)
                        outgoing[destination].append((successor, holds, parent_fp, index))
                result_queue.put(("expanded", worker_id, outgoing, expansions, transitions))
            elif command == "absorb":
                candidates: List[Candidate] = payload
                new_states: List[GlobalState] = []
                new_records = [] if track_parents else None
                violations: List[int] = []
                revisits = 0
                for successor, holds, parent_fp, exec_index in candidates:
                    key = successor if exact else successor.fingerprint()
                    if key in shard:
                        revisits += 1
                        continue
                    shard.add(key)
                    new_states.append(successor)
                    fingerprint = successor.fingerprint()
                    if not holds:
                        violations.append(fingerprint)
                    if new_records is not None:
                        new_records.append((fingerprint, successor, parent_fp, exec_index))
                local_frontier = new_states
                result_queue.put(
                    ("absorbed", worker_id, len(new_states), revisits, violations, new_records)
                )
            else:  # pragma: no cover - protocol error, not reachable from bfs.py
                raise ValueError(f"unknown worker command: {command!r}")
    except BaseException:
        result_queue.put(("error", worker_id, traceback.format_exc()))


#: How often the collector wakes up to check worker liveness, in seconds.
_LIVENESS_POLL_SECONDS = 2.0


def collect_replies(
    result_queue,
    num_workers: int,
    phase: str,
    timeout: Optional[float],
    processes: Sequence = (),
    replies: Optional[list] = None,
):
    """Collect exactly one ``phase`` reply per worker, in worker-id order.

    Waits as long as every *outstanding* worker process is alive (a long
    level is progress, not a hang); ``timeout`` is an optional hard cap on
    top.  Liveness is polled every few seconds so a crashed worker (e.g.
    killed by the OOM killer, which never reaches the error-reply path)
    fails the search promptly instead of blocking forever.  Workers that
    already replied may exit freely — the work-stealing search winds its
    workers down as each finishes its final report, so only a death
    *before* replying is a crash.

    Args:
        processes: Worker processes, indexed by worker id (so liveness can
            be checked only for workers whose reply is still outstanding).
        replies: Optional partially-filled reply list from a previous,
            crash-interrupted collection (the supervisor passes the
            ``replies`` attribute of the :class:`WorkerCrashError` back in
            after restarting the dead workers, so surviving workers'
            replies are never re-awaited).

    Raises:
        WorkerCrashError: A worker died without replying; carries the dead
            worker ids and the partial replies so a supervisor can restart
            and resume the collection.
        RuntimeError: A worker reported an error, an unexpected phase
            arrived, or the hard timeout elapsed.
    """
    import queue as queue_module

    deadline = None if timeout is None else time.monotonic() + timeout
    if replies is None:
        replies = [None] * num_workers
    collected = sum(1 for reply in replies if reply is not None)

    def dead_outstanding() -> List[int]:
        return [
            index
            for index, process in enumerate(processes)
            if index < num_workers
            and replies[index] is None
            and not process.is_alive()
        ]

    while collected < num_workers:
        try:
            reply = result_queue.get(timeout=_LIVENESS_POLL_SECONDS)
        except queue_module.Empty:
            if dead_outstanding():
                # One last drain: the dying worker's reply may still be in
                # the queue's feeder pipe.
                try:
                    reply = result_queue.get(timeout=_LIVENESS_POLL_SECONDS)
                except queue_module.Empty:
                    raise WorkerCrashError(
                        phase, dead_outstanding(), replies
                    ) from None
            elif deadline is not None and time.monotonic() > deadline:
                raise RuntimeError(
                    f"parallel search: timed out waiting for {phase!r} replies"
                ) from None
            else:
                continue
        if reply[0] == "error":
            raise RuntimeError(
                f"parallel search worker {reply[1]} failed:\n{reply[2]}"
            )
        if reply[0] != phase:
            raise RuntimeError(
                f"parallel search: expected {phase!r} reply, got {reply[0]!r}"
            )
        if replies[reply[1]] is None:
            collected += 1
        replies[reply[1]] = reply[1:]
    return replies


#: Grace given to a worker at each escalation rung of the shutdown ladder.
_SHUTDOWN_GRACE_SECONDS = 5.0


def shutdown_processes(processes: Sequence, queues: Sequence = (),
                       telemetry=None) -> int:
    """Tear a worker pool down without ever leaking a process.

    The ladder: ``join`` with a grace period, then ``terminate`` (SIGTERM)
    the stragglers and join again, then ``kill`` (SIGKILL) whatever
    survived — a worker wedged in uninterruptible state must not outlive
    the search and hold its queues' feeder threads (and their memory)
    forever.  Queues are closed afterwards so their feeder threads exit.

    Returns the number of processes that needed escalation past the plain
    join; when ``telemetry`` is given the count also lands on the
    ``worker_shutdown_escalations`` counter so leaked-process pressure is
    visible in run reports.
    """
    for process in processes:
        process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
    escalated = 0
    for process in processes:
        if process.is_alive():
            escalated += 1
            process.terminate()
    if escalated:
        for process in processes:
            if process.is_alive():
                process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
        for process in processes:
            if process.is_alive():  # pragma: no cover - SIGTERM-proof worker
                kill = getattr(process, "kill", process.terminate)
                kill()
                process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
    for queue in queues:
        try:
            queue.close()
            queue.join_thread()
        except Exception:  # pragma: no cover - queue already broken
            pass
    if telemetry is not None and escalated:
        telemetry.metrics.counter(
            "worker_shutdown_escalations",
            "worker processes that survived join() and had to be signalled",
        ).inc(escalated)
    return escalated
