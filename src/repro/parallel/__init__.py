"""Parallel exploration subsystem.

Two orthogonal axes of parallelism for the paper's sweep-shaped evaluation:

* :func:`parallel_bfs_search` — one Table-I cell explored by several
  ``multiprocessing`` workers.  Each worker owns one shard of a sharded
  fingerprint store (:mod:`repro.checker.statestore`), runs a local
  :class:`~repro.mp.semantics.SuccessorEngine` over its share of the
  frontier, and exchanges ``(fingerprint, serialized state)`` deltas at
  level barriers, so the visited set — and therefore the visited-state
  count — is exactly the serial breadth-first one.

* :func:`run_cells` — many independent Table-I cells farmed across a
  process pool.  Cells are described by picklable :class:`CellSpec` records
  (catalog key + strategy + bounds); each pool worker rebuilds its protocol
  from the catalog, so this axis works under any multiprocessing start
  method.

When shard-parallel BFS helps vs. cell-parallel sweeps: shard-parallel BFS
attacks a *single* large cell whose frontier dwarfs the per-level barrier
cost; cell-parallel sweeps attack *many* small-to-medium cells and scale
embarrassingly.  A full table sweep should default to cell-parallelism and
reserve shard-parallel BFS for the one cell that dominates the wall clock.
"""

from .bfs import default_mp_context, parallel_bfs_search
from .cells import CellSpec, run_cell_task, run_cells, specs_for_sweep

__all__ = [
    "CellSpec",
    "default_mp_context",
    "parallel_bfs_search",
    "run_cell_task",
    "run_cells",
    "specs_for_sweep",
]
