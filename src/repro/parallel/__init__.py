"""Parallel exploration subsystem.

Three orthogonal axes of parallelism for the paper's sweep-shaped
evaluation:

* :func:`parallel_bfs_search` — one Table-I cell explored breadth-first by
  several ``multiprocessing`` workers.  Each worker owns one shard of a
  sharded fingerprint store (:mod:`repro.checker.statestore`), runs a local
  :class:`~repro.mp.semantics.SuccessorEngine` over its share of the
  frontier, and exchanges ``(fingerprint, serialized state)`` deltas at
  level barriers, so the visited set — and therefore the visited-state
  count — is exactly the serial breadth-first one.

* :func:`parallel_dfs_search` — one cell explored depth-first by a
  work-stealing pool: each worker runs its own DFS, donates unexplored
  sibling subtrees to a public deque, and idle workers steal from the tail
  of the busiest victim; a lock-striped shared claim table arbitrates which
  worker expands a state.  This is the engine that parallelises the
  *reduced* (stubborn-set) searches, which have no levels to barrier on.

* :func:`run_cells` — many independent Table-I cells farmed across a
  process pool.  Cells are described by picklable :class:`CellSpec` records
  (catalog key + strategy + bounds); each pool worker rebuilds its protocol
  from the catalog, so this axis works under any multiprocessing start
  method.

Choosing an axis: cell-parallel sweeps scale embarrassingly over *many*
cells; frontier-parallel BFS attacks a single large *unreduced* cell whose
wide levels dwarf the barrier cost; work-stealing DFS attacks a single
large cell under a *reduction* (or any cell whose levels are too narrow to
feed a frontier), at the price of scheduling-dependent visited counts for
reduced runs.  A full table sweep should default to cell-parallelism and
reserve the in-cell engines for the cells dominating the wall clock.
"""

from .bfs import default_mp_context, parallel_bfs_search
from .cells import CellSpec, run_cell_task, run_cells, specs_for_sweep
from .dfs import parallel_dfs_search
from .worksteal import StolenFrame, StripedClaimTable, WorkStealingDeques

__all__ = [
    "CellSpec",
    "StolenFrame",
    "StripedClaimTable",
    "WorkStealingDeques",
    "default_mp_context",
    "parallel_bfs_search",
    "parallel_dfs_search",
    "run_cell_task",
    "run_cells",
    "specs_for_sweep",
]
