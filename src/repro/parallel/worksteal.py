"""Work-stealing primitives for the depth-first parallel search.

Three pieces, shared by :mod:`repro.parallel.dfs`:

* :class:`StolenFrame` — the unit of stealable work: a partially expanded
  DFS frame (state + the enabled-order indices of its still-unexplored
  executions) plus the provenance needed to resume it anywhere (the
  execution-index path from the initial state, for counterexample
  rebuilds, and the ancestor fingerprints, for the cycle proviso).
  Executions themselves never cross a process boundary — transition
  guards and actions are closures and do not pickle — so frames carry
  *indices into the deterministic enabled order* and the thief recomputes
  the executions locally, exactly like the PR-2 counterexample rebuild.

* :class:`StripedClaimTable` — the cross-worker visited set: a fixed-size
  open-addressing hash table over shared memory, striped into independently
  locked regions routed by :func:`repro.checker.statestore.shard_of` (the
  same splitmix64 partition the sharded fingerprint store uses).  A state
  is explored by whichever worker *claims* its fingerprint first; a claim
  is one lock acquisition on one stripe, so workers only contend when two
  fingerprints route to the same stripe at the same moment.

* :class:`WorkStealingDeques` — one public deque per worker plus the
  bookkeeping that makes distributed termination sound.  Owners push and
  pop at the head (LIFO, preserving depth-first locality); idle workers
  steal from the *tail* of the busiest victim, which holds the shallowest
  published frame and therefore the largest expected subtree.  All deque
  mutations and the busy-worker count share one coordination lock, so the
  invariant "work exists => some deque is non-empty or some busy worker
  holds it locally" is checked atomically and the last worker to go idle
  can declare termination without a barrier.

Workers additionally keep a process-local
:class:`~repro.checker.statestore.ShardedFingerprintStore` as a claim
cache: a fingerprint this worker has already routed through the shared
table — won or lost — is a guaranteed revisit and needs no lock at all.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..checker.statestore import mix_fingerprint, shard_of
from ..mp.state import GlobalState

__all__ = [
    "BatchedCounter",
    "CLAIM_FLUSH_BATCH",
    "HEARTBEAT_EVERY",
    "StallDetector",
    "StolenFrame",
    "StripedClaimTable",
    "WORKER_STALL_SECONDS",
    "WORKER_TELEMETRY_FIELDS",
    "WorkerTelemetryChannel",
    "WorkStealingDeques",
]

#: Workers flush their shared progress counter every this many increments.
CLAIM_FLUSH_BATCH = 32

#: Workers refresh their telemetry row/heartbeat every this many inner-loop
#: iterations (a power of two so the check is one bitwise AND).
HEARTBEAT_EVERY = 64

#: Seconds of heartbeat silence before a worker counts as stalled.
WORKER_STALL_SECONDS = 5.0

#: Counters each worker publishes through the telemetry channel, in order.
WORKER_TELEMETRY_FIELDS = ("claimed", "transitions_executed", "revisits")


class BatchedCounter:
    """Batches increments to a shared ``multiprocessing.Value`` counter.

    The work-stealing coordinators (object-graph and fast-path) poll the
    counter for in-flight ``progress`` events; batching keeps the per-claim
    cost to one local integer add, with one lock acquisition per ``batch``
    claims.  Callers flush explicitly at idle transitions and before the
    final report so the coordinator's last reading is exact.
    """

    __slots__ = ("_counter", "_pending", "batch")

    def __init__(self, counter, batch: int = CLAIM_FLUSH_BATCH) -> None:
        self._counter = counter
        self._pending = 0
        self.batch = batch

    def increment(self) -> None:
        """Count one claim, flushing when the batch fills."""
        self._pending += 1
        if self._pending >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Publish any pending claims to the shared counter."""
        if self._pending:
            with self._counter.get_lock():
                self._counter.value += self._pending
            self._pending = 0


@dataclass(frozen=True)
class StolenFrame:
    """A stealable unit of depth-first work.

    Attributes:
        state: The already-claimed state whose subtree this frame explores.
        pending: Indices (into the deterministic enabled order of ``state``)
            of the executions still to explore, or ``None`` for a frame that
            has not been expanded yet (the seed frame of the whole search):
            the explorer computes the enabled set and applies the reducer
            itself.
        path: Execution indices (again into enabled orders) leading from the
            initial state to ``state``; replaying them rebuilds the access
            path, which is how violations become counterexamples without
            ever pickling an execution.
        ancestors: Fingerprints of the strict ancestors of ``state`` on the
            DFS path, in root-to-parent order.  Together with the thief's
            local stack these reconstruct exactly the serial DFS stack, so
            the stubborn-set cycle (stack) proviso sees the same path a
            serial search would.
    """

    state: GlobalState
    pending: Optional[Tuple[int, ...]]
    path: Tuple[int, ...] = ()
    ancestors: Tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        """Edges from the initial state to ``state``."""
        return len(self.path)


#: Mixed key stored for a fingerprint whose splitmix64 image is 0 (slot 0 is
#: the empty marker).  The mixer is a bijection, so exactly one fingerprint
#: aliases this value; the effect is one extra (harmless) revisit report.
_ZERO_SURROGATE = 0x9E3779B97F4A7C15


class StripedClaimTable:
    """Lock-striped shared-memory fingerprint set for cross-worker claims.

    Presents the claim half of the
    :class:`~repro.checker.statestore.ShardedFingerprintStore` interface
    (``add_fingerprint`` / ``contains_fingerprint`` / ``len``) over
    ``multiprocessing`` shared memory: stripes are routed by the same
    :func:`~repro.checker.statestore.shard_of` partition, each stripe is an
    open-addressing region of 64-bit slots guarded by its own lock, and the
    table is created before forking so every worker addresses the same
    memory.

    The table stores the splitmix64 image of each fingerprint (a bijection,
    so nothing is lost) and uses slot value 0 as the empty marker.  Capacity
    is fixed at construction; :meth:`add_fingerprint` raises once a stripe
    is full rather than silently dropping claims.
    """

    def __init__(
        self,
        capacity: int = 1 << 20,
        stripes: int = 16,
        mp_context=None,
    ) -> None:
        if capacity < stripes:
            raise ValueError("capacity must be at least the stripe count")
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        context = mp_context if mp_context is not None else multiprocessing
        self.num_stripes = stripes
        self.stripe_capacity = max(2, (capacity + stripes - 1) // stripes)
        self._slots = context.Array(
            "Q", self.num_stripes * self.stripe_capacity, lock=False
        )
        self._counts = context.Array("L", self.num_stripes, lock=False)
        self._locks = [context.Lock() for _ in range(self.num_stripes)]

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(fingerprint: int) -> int:
        key = mix_fingerprint(fingerprint)
        return key if key != 0 else _ZERO_SURROGATE

    def stripe_of(self, fingerprint: int) -> int:
        """Stripe owning ``fingerprint`` (the shared splitmix64 partition)."""
        return shard_of(fingerprint, self.num_stripes)

    def _probe(self, stripe: int, key: int) -> Tuple[int, bool]:
        """Slot index for ``key`` in ``stripe`` and whether it is occupied.

        Must be called with the stripe lock held.  The within-stripe start
        index uses bits independent of the stripe routing (the key divided
        by the stripe count) so stripes stay uniformly filled.
        """
        base = stripe * self.stripe_capacity
        index = (key // self.num_stripes) % self.stripe_capacity
        slots = self._slots
        for _ in range(self.stripe_capacity):
            slot = base + index
            value = slots[slot]
            if value == key:
                return slot, True
            if value == 0:
                return slot, False
            index += 1
            if index == self.stripe_capacity:
                index = 0
        raise RuntimeError(
            f"claim table stripe {stripe} is full "
            f"({self.stripe_capacity} slots); raise the claim table capacity"
        )

    # ------------------------------------------------------------------ #
    # Claims
    # ------------------------------------------------------------------ #
    def add_fingerprint(self, fingerprint: int) -> bool:
        """Claim ``fingerprint``; True if this caller claimed it first.

        Probes before checking capacity: re-claiming an already-present
        fingerprint is a revisit (False) even when the stripe is full —
        only inserting a *new* claim into a full stripe raises.
        """
        key = self._key(fingerprint)
        stripe = self.stripe_of(fingerprint)
        with self._locks[stripe]:
            slot, occupied = self._probe(stripe, key)
            if occupied:
                return False
            if self._counts[stripe] >= self.stripe_capacity - 1:
                raise RuntimeError(
                    f"claim table stripe {stripe} is full "
                    f"({self.stripe_capacity} slots); raise the claim table capacity"
                )
            self._slots[slot] = key
            self._counts[stripe] += 1
            return True

    def contains_fingerprint(self, fingerprint: int) -> bool:
        """True if ``fingerprint`` has been claimed (by any worker)."""
        key = self._key(fingerprint)
        stripe = self.stripe_of(fingerprint)
        with self._locks[stripe]:
            _, occupied = self._probe(stripe, key)
            return occupied

    def add(self, state: GlobalState) -> bool:
        """State-level convenience mirroring the serial stores."""
        return self.add_fingerprint(state.fingerprint())

    def __contains__(self, state: GlobalState) -> bool:
        return self.contains_fingerprint(state.fingerprint())

    def __len__(self) -> int:
        """Total claims.  Exact at quiescence; a momentary lower bound while
        other workers are actively claiming (used only for budget checks)."""
        return sum(self._counts)

    def stripe_sizes(self) -> Tuple[int, ...]:
        """Claims per stripe, for balance diagnostics (mirrors shard_sizes)."""
        return tuple(self._counts)


class WorkStealingDeques:
    """Per-worker public deques plus sound distributed termination.

    All mutations — publish, local pop, steal, and the busy-worker count —
    run under one coordination lock, giving the invariant every idle check
    relies on: *if any frame exists that is not on a busy worker's private
    stack, it is in some public deque*.  The last worker to resign while
    every deque is empty therefore proves global exhaustion and sets the
    ``done`` event; no barrier or retry protocol is needed.

    A lock-free ``sizes`` array mirrors the deque lengths as a publish hint:
    workers read their own entry without the lock to decide when to donate
    work, so the common case (deque already stocked) costs one shared-memory
    read per expansion.
    """

    #: Idle workers sleep this long between steal attempts.
    IDLE_SLEEP_SECONDS = 0.002

    def __init__(self, workers: int, manager, mp_context=None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        context = mp_context if mp_context is not None else multiprocessing
        self.workers = workers
        self._deques = [manager.list() for _ in range(workers)]
        self._lock = context.Lock()
        self._sizes = context.Array("l", workers, lock=False)
        self._busy = context.Value("i", workers, lock=False)
        self._steals = context.Value("l", 0, lock=False)
        self._publishes = context.Value("l", 0, lock=False)
        self.done = context.Event()
        self.stop = context.Event()

    # ------------------------------------------------------------------ #
    # Hints (lock-free reads)
    # ------------------------------------------------------------------ #
    def size_hint(self, worker_id: int) -> int:
        """This worker's public deque length; advisory, read without the lock."""
        return self._sizes[worker_id]

    def steal_count(self) -> int:
        """Frames taken from a victim's deque by another worker."""
        return self._steals.value

    def publish_count(self) -> int:
        """Frames ever published to any deque."""
        return self._publishes.value

    # ------------------------------------------------------------------ #
    # Deque operations
    # ------------------------------------------------------------------ #
    def publish(self, worker_id: int, frame: StolenFrame) -> None:
        """Push ``frame`` onto this worker's public deque (head)."""
        with self._lock:
            self._deques[worker_id].append(frame)
            self._sizes[worker_id] += 1
            self._publishes.value += 1

    def _take(self, worker_id: int) -> Optional[StolenFrame]:
        """Pop own head, else steal the busiest victim's tail.  Lock held."""
        if self._sizes[worker_id] > 0:
            frame = self._deques[worker_id].pop()
            self._sizes[worker_id] -= 1
            return frame
        victim = -1
        victim_size = 0
        for candidate in range(self.workers):
            size = self._sizes[candidate]
            if size > victim_size:
                victim, victim_size = candidate, size
        if victim < 0:
            return None
        frame = self._deques[victim].pop(0)
        self._sizes[victim] -= 1
        self._steals.value += 1
        return frame

    def next_task(self, worker_id: int) -> Optional[StolenFrame]:
        """Next frame for a *busy* worker whose private stack just emptied.

        Returns a frame (the worker stays busy) or ``None`` — in which case
        the worker has atomically resigned and must go through
        :meth:`try_acquire` to become busy again.  The resignation and the
        emptiness check happen under the same lock, so the last resigner's
        termination verdict cannot race a concurrent publish (publishers
        are busy by definition).
        """
        with self._lock:
            frame = self._take(worker_id)
            if frame is not None:
                return frame
            self._busy.value -= 1
            if self._busy.value == 0 and not any(self._sizes):
                self.done.set()
            return None

    def try_acquire(self, worker_id: int) -> Optional[StolenFrame]:
        """Attempt to re-enter the busy set by stealing a frame.

        The steal and the busy increment are atomic, so a frame in flight
        between deque and thief is always accounted as busy work.
        """
        with self._lock:
            frame = self._take(worker_id)
            if frame is None:
                return None
            self._busy.value += 1
            return frame

    def busy_workers(self) -> int:
        """Number of workers currently holding private work."""
        return self._busy.value


class WorkerTelemetryChannel:
    """Live per-worker telemetry over shared memory, without locks.

    One row of absolute counters (:data:`WORKER_TELEMETRY_FIELDS`) and one
    heartbeat timestamp per worker.  Each row is written *only* by its
    owning worker and read by the coordinator's poll loop, so plain
    (lock-free) shared arrays are race-free by ownership; the coordinator
    may read a row mid-update and see counters one beat apart, which is
    fine for gauges.  Heartbeats use ``time.monotonic()`` — under the
    ``fork`` start method all workers share the clock's epoch, so the
    coordinator can subtract.

    This rides the same batched-flush cadence as the claim counter: the
    worker loops call :meth:`publish` every :data:`HEARTBEAT_EVERY`
    iterations (one AND + a few array stores), not per state.
    """

    def __init__(self, workers: int, mp_context=None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        context = mp_context if mp_context is not None else multiprocessing
        self.workers = workers
        self._fields = len(WORKER_TELEMETRY_FIELDS)
        self._values = context.Array("l", workers * self._fields, lock=False)
        self._heartbeats = context.Array("d", workers, lock=False)

    # Worker side (owner-only writes) ---------------------------------- #
    def publish(
        self, worker_id: int, claimed: int, transitions: int, revisits: int
    ) -> None:
        """Refresh this worker's counter row and heartbeat."""
        base = worker_id * self._fields
        values = self._values
        values[base] = claimed
        values[base + 1] = transitions
        values[base + 2] = revisits
        self._heartbeats[worker_id] = time.monotonic()

    def beat(self, worker_id: int) -> None:
        """Heartbeat only (idle spins: alive, but no new counters)."""
        self._heartbeats[worker_id] = time.monotonic()

    # Coordinator side (reads) ----------------------------------------- #
    def read(self, worker_id: int) -> Tuple[int, ...]:
        """This worker's current counter row, ordered like
        :data:`WORKER_TELEMETRY_FIELDS`."""
        base = worker_id * self._fields
        return tuple(self._values[base:base + self._fields])

    def read_all(self) -> List[Tuple[int, ...]]:
        """All counter rows (index = worker id)."""
        return [self.read(worker) for worker in range(self.workers)]

    def heartbeats(self) -> Tuple[float, ...]:
        """Last heartbeat per worker; 0.0 means never beaten (not started)."""
        return tuple(self._heartbeats)


class StallDetector:
    """Flags workers whose heartbeat went silent past a threshold.

    Pure bookkeeping (no shared state of its own) so it unit-tests with
    injected clocks.  Each stall episode is reported once: a worker that
    resumes beating re-arms its flag, a worker that stays silent does not
    repeat-fire every poll.  Workers that never beat (0.0 heartbeat) are
    skipped — they have not started, which at coordinator startup is
    scheduling latency, not a stall.
    """

    def __init__(
        self,
        workers: int,
        threshold_seconds: float = WORKER_STALL_SECONDS,
        clock=time.monotonic,
    ) -> None:
        if threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be positive")
        self.threshold_seconds = threshold_seconds
        self._clock = clock
        self._flagged = [False] * workers

    def check(
        self, heartbeats: Sequence[float], now: Optional[float] = None
    ) -> List[Tuple[int, float]]:
        """Newly stalled workers as ``(worker, idle_seconds)`` pairs."""
        current = self._clock() if now is None else now
        stalled: List[Tuple[int, float]] = []
        for worker, beat in enumerate(heartbeats):
            if beat <= 0.0:
                continue
            idle = current - beat
            if idle >= self.threshold_seconds:
                if not self._flagged[worker]:
                    self._flagged[worker] = True
                    stalled.append((worker, idle))
            else:
                self._flagged[worker] = False
        return stalled


def pending_indices(
    enabled: Sequence, chosen: Sequence
) -> Tuple[int, ...]:
    """Map the chosen executions back to their indices in ``enabled``.

    The enabled order is deterministic across processes (same protocol,
    same hash seed under ``fork``), so indices are the portable spelling of
    an execution subset.  Raises if a chosen execution is not enabled —
    that would mean the reducer invented work, which must never happen.
    """
    index_of = {execution: index for index, execution in enumerate(enabled)}
    return tuple(index_of[execution] for execution in chosen)
