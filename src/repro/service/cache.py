"""Verdict cache of the checking service.

A verdict is reusable only when three things are pinned down exactly: the
protocol instance (its transitions, fault model and parameters), the
property, and the plan that produced it — including its exploration
budgets, since a truncated run answers a different question than an
exhaustive one.  The cache key is therefore
``(protocol fingerprint, property name, CheckPlan)`` with the full frozen
plan (budgets included), not just its capability axes.

Honesty rule: only ``complete=True`` results are admitted.  An
``inconclusive`` verdict means "the budget ran out", which a later, larger
budget may overturn — memoizing it would serve stale uncertainty forever.
(A budget-truncated run that *found* a counterexample is ``complete=False``
too and is likewise re-run; counterexamples are cheap to reconfirm and the
rule stays one line.)  Invalidation is explicit: nothing here watches
protocol definitions for drift.

Swarm exception: ``backend="swarm"`` runs are *never* complete, but a swarm
run that found a counterexample is a conclusive ``violated`` verdict — the
trace replays deterministically from ``(walk_seed, walk_index)`` — so it is
admitted.  The key's frozen plan carries ``walks`` and ``walk_seed``, so a
cached swarm violation only ever answers the identical sampling
configuration; a swarm run that merely exhausted its walk budget stays
uncacheable like any other inconclusive result.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..checker.result import CheckResult
from ..engine.plan import CheckPlan
from ..mp.protocol import Protocol

#: Cache key: (protocol fingerprint, property name, frozen plan).
CacheKey = Tuple[str, str, CheckPlan]


def protocol_fingerprint(protocol: Protocol) -> str:
    """Content hash of a protocol instance, stable across processes.

    Hashes the protocol's deterministic :meth:`~repro.mp.protocol.Protocol.describe`
    summary (name, processes, transitions, fault budget) plus its sorted
    metadata, so two independently constructed instances of the same
    parameterisation share a fingerprint while any change to the
    configuration produces a new one.
    """
    digest = hashlib.sha256()
    digest.update(protocol.describe().encode("utf-8"))
    metadata = getattr(protocol, "metadata", None) or {}
    for key in sorted(metadata, key=str):
        digest.update(f"\x00{key}={metadata[key]!r}".encode("utf-8"))
    return digest.hexdigest()[:16]


class ResultCache:
    """LRU verdict cache keyed on (fingerprint, property, plan).

    Thread-safe: service worker threads look up and admit results while
    the event loop reads statistics and handles invalidation requests.
    """

    def __init__(self, capacity: Optional[int] = 256) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"cache capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CheckResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.rejected_incomplete = 0

    @staticmethod
    def key_for(
        protocol: Protocol, property_name: str, plan: CheckPlan
    ) -> CacheKey:
        """The cache key of one (protocol, property, plan) combination."""
        return (protocol_fingerprint(protocol), property_name, plan)

    def get(self, key: CacheKey) -> Optional[CheckResult]:
        """The memoized result for ``key``, or None (counts hit/miss)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    @staticmethod
    def _admissible(key: CacheKey, result: CheckResult) -> bool:
        if result.complete:
            return True
        # Swarm runs never complete; a *violated* swarm verdict is still
        # conclusive and replayable, and the key's plan pins the exact
        # sampling configuration (walks + walk_seed) it answers for.
        plan = key[2]
        return (
            getattr(plan, "backend", None) == "swarm"
            and result.outcome() == "violated"
        )

    def put(self, key: CacheKey, result: CheckResult) -> bool:
        """Admit ``result`` under ``key``; refuse inconclusive results.

        Returns:
            True when the result was cached, False when it was refused:
            ``result.complete`` is False (partial verdicts are never
            memoized) — except for a swarm run that found a violation,
            which is conclusive despite never being complete.
        """
        if not self._admissible(key, result):
            with self._lock:
                self.rejected_incomplete += 1
            return False
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            return True

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; True when something was removed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_protocol(self, fingerprint: str) -> int:
        """Drop every entry of one protocol fingerprint; returns the count.

        This is the hook a caller uses after changing a protocol definition:
        the new instance fingerprints differently anyway, but stale entries
        of the old fingerprint stop occupying capacity.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == fingerprint]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """JSON-able counters (for health probes and the ``stats`` op)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else None,
                "rejected_incomplete": self.rejected_incomplete,
            }
