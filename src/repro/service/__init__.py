"""Checking as a service: job queue, verdict cache, server and client.

The service layer turns the plan-layer entry point
(:func:`repro.engine.registry.run_plan`) into a long-lived job server:

- :class:`JobRequest` / :class:`JobBudgets` / :class:`Job` — the job
  model; budgets map onto the plan's search knobs and truncated runs come
  back as honest ``inconclusive`` verdicts.
- :class:`ResultCache` — verdict memoization keyed on (protocol
  fingerprint, property, plan); only ``complete=True`` results are
  admitted, invalidation is explicit.
- :class:`CheckService` — the in-process asyncio service: bounded queue,
  worker pool, per-job event streams, heartbeat-driven health probe.
- :class:`CheckServer` / :func:`serve` and :class:`ServiceClient` — the
  JSON-lines TCP wire around it (``repro serve`` / ``repro submit``).
- :func:`run_jobs` — synchronous batch convenience for scripts.
"""

from .cache import CacheKey, ResultCache, protocol_fingerprint
from .client import ServiceClient, ServiceClientError
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_EVENT_KINDS,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobBudgets,
    JobEventLog,
    JobRequest,
    plan_from_dict,
)
from .server import WIRE_VERSION, CheckServer, serve
from .service import (
    CheckService,
    JobCancelled,
    ServiceError,
    ServiceOverloadedError,
    UnknownJobError,
    run_jobs,
)

__all__ = [
    "CANCELLED",
    "CacheKey",
    "CheckServer",
    "CheckService",
    "DONE",
    "FAILED",
    "JOB_EVENT_KINDS",
    "JOB_STATES",
    "Job",
    "JobBudgets",
    "JobCancelled",
    "JobEventLog",
    "JobRequest",
    "QUEUED",
    "RUNNING",
    "ResultCache",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceOverloadedError",
    "UnknownJobError",
    "WIRE_VERSION",
    "plan_from_dict",
    "protocol_fingerprint",
    "run_jobs",
    "serve",
]
