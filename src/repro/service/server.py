"""JSON-lines TCP front door of the checking service.

One request per line, one response per line; a connection may issue any
number of requests.  Every request is ``{"op": ..., ...}`` and every
response ``{"ok": true, ...}`` or ``{"ok": false, "error": ...,
"kind": ...}`` — errors are answers, never dropped connections, so a thin
synchronous client (:mod:`repro.service.client`) stays a loop of
``sendline`` / ``readline``.

Operations:

``ping``
    Liveness check; echoes the service banner.
``submit``
    Enqueue a job from a wire-format :class:`JobRequest` dict.  With
    ``"wait": true`` the response carries the finished job record
    (including the three-valued outcome); otherwise the queued record.
``status`` / ``result``
    Job record by id; ``result`` waits for the verdict first.
``events``
    The job's private event stream (kind + payload per event).
``health``
    The service health snapshot (queue depth, stalled slots, cache).
``cancel``
    Cancel a job by id: queued jobs never run, running jobs are preempted
    into ``Inconclusive (cancelled)`` and their slot is reused.
``invalidate``
    Explicit cache invalidation: everything, or one protocol fingerprint.
``shutdown``
    Stop accepting connections and let ``serve`` return.  The same path
    runs on SIGTERM/SIGINT of ``repro serve``: active jobs are cancelled
    (so they finish as honest ``Inconclusive (cancelled)`` records, not
    killed mid-write) before the service stops.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from ..engine.plan import UnsupportedPlanError
from .jobs import JobRequest
from .service import CheckService, ServiceError

#: Protocol banner echoed by ``ping`` (bump on wire-format changes).
WIRE_VERSION = "repro-service/1"


def _json_default(value: object) -> str:
    # Event payloads may carry non-JSON values (plans, tuples, protocol
    # objects); the wire renders them as their repr rather than failing.
    return repr(value)


def encode_response(response: Dict) -> bytes:
    return (json.dumps(response, default=_json_default) + "\n").encode("utf-8")


class CheckServer:
    """Asyncio TCP server wrapping one :class:`CheckService`."""

    def __init__(
        self,
        service: CheckService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` becomes the bound port."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop; safe to call from a signal handler.

        Only sets an :class:`asyncio.Event`, so it is valid from
        ``loop.add_signal_handler`` callbacks; the actual drain/stop runs
        on the event loop in :meth:`serve_until_shutdown`.
        """
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or signal) arrives, then stop.

        The stop is graceful: the listening socket closes first (no new
        work), active jobs are cancelled so running searches preempt at
        their next engine event, and the service's ``stop`` then drains
        the slots — every touched job ends with an honest record instead
        of vanishing mid-run.
        """
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        self.service.cancel_active()
        await self.stop()

    # ------------------------------------------------------------------ #
    # Wire handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    response = await self._dispatch(request)
                except Exception as exc:
                    response = {
                        "ok": False,
                        "error": str(exc),
                        "kind": type(exc).__name__,
                    }
                    if isinstance(exc, UnsupportedPlanError):
                        response["axis"] = exc.axis
                        response["requested"] = repr(exc.value)
                        if exc.alternative is not None:
                            alternative = exc.alternative
                            response["alternative"] = (
                                alternative.axes()
                                if hasattr(alternative, "axes")
                                else repr(alternative)
                            )
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": WIRE_VERSION}
        if op == "submit":
            job_request = JobRequest.from_dict(request)
            self.service.validate(job_request)
            job = await self.service.submit(job_request)
            if request.get("wait"):
                job = await self.service.wait(job.id)
            return {"ok": True, **job.record()}
        if op == "status":
            job = self.service.job(request["job"])
            return {"ok": True, **job.record()}
        if op == "result":
            job = await self.service.wait(
                request["job"], timeout=request.get("timeout")
            )
            return {"ok": True, **job.record()}
        if op == "events":
            job = self.service.job(request["job"])
            return {
                "ok": True,
                "job": job.id,
                "events": [
                    {"kind": event.kind, "payload": dict(event.payload)}
                    for event in job.events.events
                ],
            }
        if op == "health":
            return {"ok": True, **self.service.health()}
        if op == "cancel":
            job = self.service.cancel(request["job"])
            if request.get("wait"):
                job = await self.service.wait(
                    job.id, timeout=request.get("timeout")
                )
            return {"ok": True, **job.record()}
        if op == "invalidate":
            fingerprint = request.get("fingerprint")
            if fingerprint:
                removed = self.service.cache.invalidate_protocol(fingerprint)
            else:
                removed = self.service.cache.clear()
            return {"ok": True, "removed": removed}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        raise ServiceError(
            f"unknown op {op!r} (expected ping/submit/status/result/"
            "events/health/cancel/invalidate/shutdown)"
        )


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[CheckService] = None,
    ready: Optional[asyncio.Event] = None,
    announce=None,
    handle_signals: bool = False,
    **service_kwargs,
) -> None:
    """Run a checking server until shutdown (the ``repro serve`` command).

    Args:
        host / port: Bind address; port 0 picks a free port.
        service: An existing service to expose; a fresh one otherwise.
        ready: Optional event set once the socket is bound (tests).
        announce: Optional callable receiving the bound ``(host, port)``.
        handle_signals: Install SIGTERM/SIGINT handlers that trigger the
            same graceful shutdown as the ``shutdown`` op (active jobs
            cancelled, slots drained) instead of dying mid-run.  The CLI
            sets this; embedded/test servers keep the default and stay
            out of the host process's signal disposition.
        service_kwargs: Forwarded to :class:`CheckService` when building one.
    """
    server = CheckServer(
        service or CheckService(**service_kwargs), host=host, port=port
    )
    handled: list = []
    if handle_signals:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Platform without loop signal support (or a non-main
                # thread): fall back to dying on the signal as before.
                break
            handled.append((loop, signum))
    try:
        await server.start()
        if announce is not None:
            announce(server.host, server.port)
        if ready is not None:
            ready.set()
        await server.serve_until_shutdown()
    finally:
        for loop, signum in handled:
            loop.remove_signal_handler(signum)
