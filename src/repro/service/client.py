"""Thin synchronous client of the checking server.

The wire protocol is JSON lines over TCP (see
:mod:`repro.service.server`), so the client is deliberately small: open a
socket, write one line, read one line.  ``repro submit`` and the CI smoke
test drive the server through this class; anything asyncio stays on the
server side.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional


class ServiceClientError(RuntimeError):
    """The server answered ``ok: false``; carries the server's error."""

    def __init__(self, response: Dict) -> None:
        super().__init__(response.get("error", "service request failed"))
        self.response = response
        self.kind = response.get("kind")
        self.axis = response.get("axis")
        self.alternative = response.get("alternative")


class ServiceClient:
    """One connection to a running checking server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Wire
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields) -> Dict:
        """Send one op, return the decoded response; raise on ``ok: false``."""
        payload = {"op": op, **fields}
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceClientError(
                {"error": "server closed the connection", "kind": "ConnectionError"}
            )
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceClientError(response)
        return response

    # ------------------------------------------------------------------ #
    # Convenience ops
    # ------------------------------------------------------------------ #
    def ping(self) -> str:
        return self.request("ping")["pong"]

    def submit(
        self,
        cell: str,
        model: str = "quorum",
        scale: str = "small",
        plan: Optional[Dict] = None,
        budgets: Optional[Dict] = None,
        wait: bool = True,
    ) -> Dict:
        """Submit one job; with ``wait`` (default) returns the verdict record."""
        return self.request(
            "submit",
            cell=cell,
            model=model,
            scale=scale,
            plan=plan or {},
            budgets=budgets or {},
            wait=wait,
        )

    def status(self, job: str) -> Dict:
        return self.request("status", job=job)

    def result(self, job: str, timeout: Optional[float] = None) -> Dict:
        return self.request("result", job=job, timeout=timeout)

    def events(self, job: str) -> List[Dict]:
        return self.request("events", job=job)["events"]

    def health(self) -> Dict:
        return self.request("health")

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        return self.request("invalidate", fingerprint=fingerprint)["removed"]

    def shutdown(self) -> None:
        self.request("shutdown")
