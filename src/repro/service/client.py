"""Thin synchronous client of the checking server.

The wire protocol is JSON lines over TCP (see
:mod:`repro.service.server`), so the client is deliberately small: open a
socket, write one line, read one line.  ``repro submit`` and the CI smoke
test drive the server through this class; anything asyncio stays on the
server side.

Connection establishment retries with exponential backoff plus
deterministic jitter (a freshly forked ``repro serve`` needs a beat to
bind), and *idempotent* requests are retried once over a fresh connection
when the server drops mid-exchange.  ``submit`` is never replayed — a
retried submission would double-run (and double-count) the job.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Dict, List, Optional

#: Ops that are safe to replay over a fresh connection after a drop.
#: ``submit`` is deliberately absent (replay = duplicate job); ``cancel``
#: and ``invalidate`` are idempotent by construction (cancelling a
#: finished job / invalidating an absent entry are no-ops).
IDEMPOTENT_OPS = frozenset(
    {"ping", "status", "result", "events", "health", "cancel", "invalidate"}
)

#: Connection-retry defaults: ~0.1s, 0.2s, 0.4s ... before giving up.
CONNECT_ATTEMPTS = 5
CONNECT_BACKOFF_SECONDS = 0.1


class ServiceClientError(RuntimeError):
    """The server answered ``ok: false``; carries the server's error."""

    def __init__(self, response: Dict) -> None:
        super().__init__(response.get("error", "service request failed"))
        self.response = response
        self.kind = response.get("kind")
        self.axis = response.get("axis")
        self.alternative = response.get("alternative")


class ServiceClient:
    """One connection to a running checking server.

    Args:
        host / port: Server address.
        timeout: Per-request socket timeout — how long to wait for a
            *response* (a ``result`` wait may legitimately take a while).
        connect_timeout: Timeout of one connection *attempt*; defaults to
            5 seconds, deliberately much shorter than ``timeout`` — an
            unreachable server should fail fast, not after a full request
            timeout.
        connect_attempts / connect_backoff: Retry schedule for the initial
            connection: each failed attempt sleeps
            ``backoff * 2**attempt`` plus up to 25% jitter (so a herd of
            clients restarted together does not reconnect in lockstep).
        sleep / rng: Injectable for tests — the retry schedule unit-tests
            without real waiting, and the jitter deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = 5.0,
        connect_attempts: int = CONNECT_ATTEMPTS,
        connect_backoff: float = CONNECT_BACKOFF_SECONDS,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        if connect_attempts < 1:
            raise ValueError(
                f"connect_attempts must be >= 1, got {connect_attempts}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout else timeout
        self.connect_attempts = connect_attempts
        self.connect_backoff = connect_backoff
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        """(Re)establish the connection, retrying with backoff + jitter."""
        self._teardown()
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                delay = self.connect_backoff * (2 ** (attempt - 1))
                self._sleep(delay * (1.0 + 0.25 * self._rng.random()))
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            self._sock.settimeout(self.timeout)
            self._file = self._sock.makefile("rwb")
            return
        raise ServiceClientError(
            {
                "error": (
                    f"could not connect to {self.host}:{self.port} "
                    f"after {self.connect_attempts} attempt(s): {last_error}"
                ),
                "kind": "ConnectionError",
            }
        )

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Wire
    # ------------------------------------------------------------------ #
    def _exchange(self, payload: Dict) -> Dict:
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    def request(self, op: str, **fields) -> Dict:
        """Send one op, return the decoded response; raise on ``ok: false``.

        A dropped connection is retried once over a fresh socket for
        idempotent ops (see :data:`IDEMPOTENT_OPS`); everything else
        surfaces the drop as a :class:`ServiceClientError`.
        """
        payload = {"op": op, **fields}
        try:
            response = self._exchange(payload)
        except (ConnectionError, BrokenPipeError, socket.timeout, OSError) as exc:
            if op not in IDEMPOTENT_OPS:
                raise ServiceClientError(
                    {"error": str(exc), "kind": "ConnectionError"}
                ) from exc
            self._connect()
            try:
                response = self._exchange(payload)
            except (ConnectionError, BrokenPipeError, socket.timeout, OSError) as retry_exc:
                raise ServiceClientError(
                    {"error": str(retry_exc), "kind": "ConnectionError"}
                ) from retry_exc
        if not response.get("ok"):
            raise ServiceClientError(response)
        return response

    # ------------------------------------------------------------------ #
    # Convenience ops
    # ------------------------------------------------------------------ #
    def ping(self) -> str:
        return self.request("ping")["pong"]

    def submit(
        self,
        cell: str,
        model: str = "quorum",
        scale: str = "small",
        plan: Optional[Dict] = None,
        budgets: Optional[Dict] = None,
        wait: bool = True,
    ) -> Dict:
        """Submit one job; with ``wait`` (default) returns the verdict record."""
        return self.request(
            "submit",
            cell=cell,
            model=model,
            scale=scale,
            plan=plan or {},
            budgets=budgets or {},
            wait=wait,
        )

    def status(self, job: str) -> Dict:
        return self.request("status", job=job)

    def result(self, job: str, timeout: Optional[float] = None) -> Dict:
        return self.request("result", job=job, timeout=timeout)

    def events(self, job: str) -> List[Dict]:
        return self.request("events", job=job)["events"]

    def health(self) -> Dict:
        return self.request("health")

    def cancel(
        self, job: str, wait: bool = False, timeout: Optional[float] = None
    ) -> Dict:
        """Cancel a job; with ``wait``, block until it has fully stopped."""
        return self.request("cancel", job=job, wait=wait, timeout=timeout)

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        return self.request("invalidate", fingerprint=fingerprint)["removed"]

    def shutdown(self) -> None:
        self.request("shutdown")
