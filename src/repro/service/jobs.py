"""Job model of the checking service: requests, budgets, per-job streams.

A job names a workload the way the cells runner does — a catalog key, a
model variant and a :class:`~repro.engine.plan.CheckPlan` — plus the
per-job exploration budgets the service maps onto the plan's
``max_states`` / ``max_seconds`` / ``max_depth`` knobs.  Budgets never
abort a job: a truncated search comes back as an honest ``inconclusive``
verdict with its statistics and telemetry attached.

Every job owns its own :class:`JobEventLog`: the engine's uniform event
stream (PR 4) plus the job-lifecycle events below land there and nowhere
else, so concurrent jobs never interleave their streams.

Job-lifecycle event kinds (registered with the engine event vocabulary):

``job-submitted``
    The job entered the bounded queue; payload carries the job id and the
    requested workload.
``job-started``
    A service worker slot picked the job up.
``job-cache-hit``
    The verdict was served from the result cache; no engine ran.
``job-finished``
    The job reached a verdict; payload carries the three-valued outcome.
``job-failed``
    The job raised (unknown cell, unsupported plan, engine error).
``job-cancelled``
    The job was cancelled — by an explicit ``cancel`` request or by its
    wall-clock limit — before reaching a verdict; payload carries the
    cancellation reason.  A cancelled job that was already running ends
    with an honest ``Inconclusive (cancelled)`` result, never a hang.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..checker.property import Invariant
from ..checker.result import CheckResult
from ..engine.events import EngineEvent, Observer, register_event_kind
from ..engine.plan import CheckPlan
from ..mp.protocol import Protocol
from ..protocols.catalog import default_catalog, entry_by_key

#: Lifecycle kinds the service adds to the engine event vocabulary.
JOB_EVENT_KINDS = (
    "job-submitted",
    "job-started",
    "job-cache-hit",
    "job-finished",
    "job-failed",
    "job-cancelled",
)

for _kind in JOB_EVENT_KINDS:
    register_event_kind(_kind)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobBudgets:
    """Per-job exploration budgets, mapped onto the plan's search knobs.

    ``None`` leaves the corresponding plan knob untouched, so a budgetless
    job runs whatever bounds the plan itself carries.

    ``max_wall_seconds`` is different in kind: it is *not* a search budget
    but a service-side preemption deadline.  A search budget
    (``max_seconds``) is checked by the engine at its own cadence and
    yields ``Inconclusive (budget hit)``; the wall-clock limit is enforced
    by the service's cancellation gate and preempts the job into
    ``Inconclusive (cancelled)`` — the knob of last resort for a plan whose
    engine does not honour time budgets tightly enough.
    """

    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    max_depth: Optional[int] = None
    max_wall_seconds: Optional[float] = None

    def apply(self, plan: CheckPlan) -> CheckPlan:
        """``plan`` with every set budget written into its search knobs."""
        changes = {
            knob: value
            for knob, value in (
                ("max_states", self.max_states),
                ("max_seconds", self.max_seconds),
                ("max_depth", self.max_depth),
            )
            if value is not None
        }
        return replace(plan, **changes) if changes else plan

    def to_dict(self) -> Dict:
        return {
            "max_states": self.max_states,
            "max_seconds": self.max_seconds,
            "max_depth": self.max_depth,
            "max_wall_seconds": self.max_wall_seconds,
        }

    @classmethod
    def from_dict(cls, raw: Optional[Dict]) -> "JobBudgets":
        raw = raw or {}
        return cls(
            max_states=raw.get("max_states"),
            max_seconds=raw.get("max_seconds"),
            max_depth=raw.get("max_depth"),
            max_wall_seconds=raw.get("max_wall_seconds"),
        )


#: CheckPlan fields a wire-format plan dict may set.
PLAN_FIELDS = (
    "shape",
    "reduction",
    "store",
    "backend",
    "workers",
    "stateful",
    "successors",
    "goal",
    "seed_heuristic",
    "walks",
    "walk_seed",
)


def plan_from_dict(raw: Optional[Dict]) -> CheckPlan:
    """Build a :class:`CheckPlan` from a wire-format axes dict.

    Unknown keys raise (a typo must not silently check a default plan);
    axis-vocabulary errors surface as the plan layer's structured
    :class:`~repro.engine.plan.UnsupportedPlanError`.
    """
    raw = dict(raw or {})
    unknown = set(raw) - set(PLAN_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown plan field(s) {sorted(unknown)}; "
            f"settable fields: {', '.join(PLAN_FIELDS)}"
        )
    return CheckPlan(**raw)


@dataclass(frozen=True)
class JobRequest:
    """One unit of service work: which workload to check, how, within what.

    Attributes:
        cell: Catalog key of the protocol instance (the picklable,
            wire-friendly protocol reference, as in the cells runner).
        model: ``"quorum"`` or ``"single"``.
        scale: Catalog scale the key belongs to.
        plan: The :class:`CheckPlan` to run; its ``goal`` axis selects the
            entry's invariant or liveness property.
        budgets: Per-job exploration budgets layered onto the plan.
    """

    cell: str
    model: str = "quorum"
    scale: str = "small"
    plan: CheckPlan = field(default_factory=CheckPlan)
    budgets: JobBudgets = field(default_factory=JobBudgets)

    def effective_plan(self) -> CheckPlan:
        """The plan actually executed: request plan + budgets."""
        return self.budgets.apply(self.plan)

    def resolve_workload(self) -> Tuple[Protocol, Invariant]:
        """Build the protocol instance and property this job checks.

        Raises:
            KeyError: Unknown catalog cell.
            ValueError: Unknown model variant, or a liveness-goal plan on
                an entry without a liveness property.
        """
        entry = entry_by_key(self.cell, self.scale)
        if entry is None:
            known = ", ".join(e.key for e in default_catalog(self.scale))
            raise KeyError(
                f"unknown catalog cell {self.cell!r} "
                f"(scale {self.scale!r}; known: {known})"
            )
        if self.model == "quorum":
            protocol = entry.quorum_model()
        elif self.model == "single":
            protocol = entry.single_model()
        else:
            raise ValueError(
                f"unknown model variant {self.model!r} "
                "(expected 'quorum' or 'single')"
            )
        if self.plan.goal == "liveness":
            if entry.liveness is None:
                raise ValueError(
                    f"catalog entry {self.cell!r} carries no liveness property"
                )
            prop: Invariant = entry.liveness
        else:
            prop = entry.invariant
        return protocol, prop

    def to_dict(self) -> Dict:
        return {
            "cell": self.cell,
            "model": self.model,
            "scale": self.scale,
            "plan": self.plan.axes(),
            "budgets": self.budgets.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "JobRequest":
        return cls(
            cell=raw["cell"],
            model=raw.get("model", "quorum"),
            scale=raw.get("scale", "small"),
            plan=plan_from_dict(raw.get("plan")),
            budgets=JobBudgets.from_dict(raw.get("budgets")),
        )


class JobEventLog(Observer):
    """Thread-safe per-job event stream with a heartbeat timestamp.

    The engine runs in a service worker thread while readers (the health
    probe, the server's ``events`` op) live on the event loop, so every
    access goes through one lock.  The log doubles as the job's liveness
    signal: ``last_event_ts`` is the heartbeat the service's stall
    detector reads, and engine-emitted ``worker-stalled`` events are
    counted as they pass through.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._events: List[EngineEvent] = []
        self._clock = clock
        self.last_event_ts: float = 0.0
        self.stall_events: int = 0

    def on_event(self, event: EngineEvent) -> None:
        with self._lock:
            self._events.append(event)
            self.last_event_ts = self._clock()
            if event.kind == "worker-stalled":
                self.stall_events += 1

    @property
    def events(self) -> List[EngineEvent]:
        """Snapshot of the events received so far (arrival order)."""
        with self._lock:
            return list(self._events)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def last(self, kind: str) -> Optional[EngineEvent]:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


@dataclass
class Job:
    """One submitted job and everything the service knows about it."""

    id: str
    request: JobRequest
    status: str = QUEUED
    result: Optional[CheckResult] = None
    error: Optional[str] = None
    cache_hit: bool = False
    worker: Optional[int] = None
    events: JobEventLog = field(default_factory=JobEventLog)
    submitted_ts: float = 0.0
    started_ts: float = 0.0
    finished_ts: float = 0.0

    def outcome(self) -> Optional[str]:
        """Three-valued verdict of a finished job, else None."""
        return self.result.outcome() if self.result is not None else None

    def record(self) -> Dict:
        """JSON-able summary of the job (wire format of the server)."""
        from ..analysis.aggregate import result_record

        record: Dict = {
            "job": self.id,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "request": self.request.to_dict(),
        }
        if self.error is not None:
            record["error"] = self.error
        if self.result is not None:
            record.update(
                result_record(
                    self.result,
                    cell=self.request.cell,
                    model=self.request.model,
                    scale=self.request.scale,
                    workers=self.request.plan.workers,
                )
            )
        return record
