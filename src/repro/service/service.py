"""The in-process checking service: bounded queue, worker pool, health.

:class:`CheckService` is checking-as-a-service without the socket: an
asyncio front door over the plan layer.  ``submit`` places a
:class:`~repro.service.jobs.JobRequest` on a bounded queue (overload is an
explicit :class:`ServiceOverloadedError`, not unbounded memory growth); a
pool of worker slots drains it, each running the engine through
:func:`~repro.engine.registry.run_plan` on an executor thread so the event
loop stays responsive while a search runs.

Verdicts flow through the :class:`~repro.service.cache.ResultCache`:
identical (protocol, property, plan) submissions are served from memory
with a ``job-cache-hit`` event and no engine run.  Budgets truncate
searches instead of killing jobs, so a budget-hit job finishes ``done``
with an honest ``inconclusive`` outcome carrying full statistics and
telemetry.

Jobs are preemptible: :meth:`CheckService.cancel` cancels a queued job
immediately and preempts a running one cooperatively through a
:class:`_CancelGate` observer that raises from the engine's own event
stream, so the search unwinds through its normal teardown and the slot is
reused.  A per-job wall-clock limit (``JobBudgets.max_wall_seconds``)
rides the same gate.  Either way the job ends with an honest
``Inconclusive (cancelled)`` verdict, which the cache refuses to memoize.

Health is derived from the same heartbeat discipline the work-stealing
coordinator uses (PR 7): every event a job emits refreshes its slot's
heartbeat, and :meth:`CheckService.health` runs a
:class:`~repro.parallel.worksteal.StallDetector` over the slots — with an
injectable clock, so stall handling unit-tests without real waiting.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from ..checker.result import CheckResult
from ..engine.events import EngineEvent, MultiObserver, Observer, emit
from ..engine.plan import UnsupportedPlanError, strategy_label
from ..engine.registry import EngineRegistry, resolve, run_plan
from ..obs.telemetry import MetricsRegistry
from ..parallel.worksteal import WORKER_STALL_SECONDS, StallDetector
from .cache import ResultCache
from .jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING, Job, JobRequest


class ServiceError(RuntimeError):
    """Base class of service-layer failures."""


class ServiceOverloadedError(ServiceError):
    """The bounded job queue is full; resubmit later.

    Carrying the limit keeps the refusal actionable: callers distinguish
    "the service is sized too small" from "I am submitting too fast".
    """

    def __init__(self, queue_limit: int) -> None:
        super().__init__(
            f"job queue is full ({queue_limit} queued jobs); "
            "wait for capacity or raise queue_limit"
        )
        self.queue_limit = queue_limit


class UnknownJobError(ServiceError, KeyError):
    """No job with the requested id."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class _SlotHeartbeat(Observer):
    """Refreshes one worker slot's heartbeat on every event it relays."""

    def __init__(self, service: "CheckService", slot: int) -> None:
        self._service = service
        self._slot = slot

    def on_event(self, event: EngineEvent) -> None:
        self._service._beat(self._slot)


class JobCancelled(ServiceError):
    """Raised inside the search thread to preempt a cancelled job.

    Carries the cancellation reason so the job record can distinguish an
    explicit ``cancel`` request from a tripped wall-clock limit; both end
    as ``Inconclusive (cancelled)``.
    """

    def __init__(self, job_id: str, reason: str) -> None:
        super().__init__(f"job {job_id} cancelled ({reason})")
        self.job_id = job_id
        self.reason = reason


class _CancelGate(Observer):
    """Preempts a running engine from inside its own event stream.

    Engines emit events synchronously on the search thread, so raising
    from :meth:`on_event` unwinds the search cooperatively — no signals,
    no thread killing, and the engine's ``finally`` blocks (worker
    teardown, queue closing) still run.  The gate trips on an explicit
    cancellation flag or on the job's wall-clock deadline, whichever
    comes first.  Cancellation latency is therefore one event interval;
    every engine emits at least per level / per walk batch, which keeps
    it well under a second in practice.
    """

    def __init__(
        self,
        job_id: str,
        flag: threading.Event,
        deadline: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self._job_id = job_id
        self._flag = flag
        self._deadline = deadline
        self._clock = clock

    def on_event(self, event: EngineEvent) -> None:
        if self._flag.is_set():
            raise JobCancelled(self._job_id, "cancel requested")
        if self._deadline is not None and self._clock() >= self._deadline:
            raise JobCancelled(self._job_id, "wall-clock limit")


class CheckService:
    """Async job service over the engine registry.

    Args:
        workers: Concurrent job slots (each runs one engine at a time on
            an executor thread).
        queue_limit: Bound of the submission queue; full means
            :class:`ServiceOverloadedError`.
        cache: Verdict cache; a fresh default-capacity one when omitted.
        registry: Engine registry; the process default when omitted.
        stall_seconds: Heartbeat silence threshold of the health probe.
        clock: Monotonic time source — injectable for tests.
    """

    def __init__(
        self,
        workers: int = 2,
        queue_limit: int = 16,
        cache: Optional[ResultCache] = None,
        registry: Optional[EngineRegistry] = None,
        stall_seconds: float = WORKER_STALL_SECONDS,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        self.cache = cache if cache is not None else ResultCache()
        self.registry = registry
        self.stall_seconds = stall_seconds
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._queue: "asyncio.Queue[Optional[Job]]" = asyncio.Queue(
            maxsize=queue_limit
        )
        self._jobs: Dict[str, Job] = {}
        self._done_events: Dict[str, asyncio.Event] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._running: List[Optional[Job]] = [None] * workers
        self._heartbeats: List[float] = [0.0] * workers
        self._detector = StallDetector(workers, stall_seconds, clock)
        self._stall_episodes = 0
        self._engine_runs = 0
        self._job_counter = 0
        self._worker_tasks: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn the worker slots; idempotent."""
        if self._started:
            return
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(slot), name=f"service-slot-{slot}")
            for slot in range(self.workers)
        ]

    async def stop(self) -> None:
        """Drain the queue, finish running jobs, release the executor."""
        if not self._started:
            return
        for _ in self._worker_tasks:
            await self._queue.put(None)
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self._executor.shutdown(wait=True)
        self._started = False

    async def __aenter__(self) -> "CheckService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission and retrieval
    # ------------------------------------------------------------------ #
    def validate(self, request: JobRequest) -> None:
        """Fail fast on a request that could never run.

        Resolves the workload and the effective plan without executing
        anything, raising the same structured errors the job would die
        with (``KeyError`` for an unknown cell, ``UnsupportedPlanError``
        with a runnable alternative for an unsupported axis combination).
        The TCP front door calls this so wire clients get an immediate
        ``ok: false`` instead of a queued-then-failed job; in-process
        submission stays lenient and records the failure on the job.
        """
        request.resolve_workload()
        resolve(request.effective_plan(), self.registry)

    async def submit(self, request: JobRequest) -> Job:
        """Enqueue one job; returns immediately with the queued job.

        Raises:
            ServiceOverloadedError: The bounded queue is full.
        """
        if not self._started:
            raise ServiceError("service is not started (use 'async with' or start())")
        self._job_counter += 1
        job = Job(id=f"job-{self._job_counter}", request=request)
        job.submitted_ts = self._clock()
        emit(
            job.events,
            "job-submitted",
            job=job.id,
            cell=request.cell,
            model=request.model,
            plan=request.effective_plan().axes(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServiceOverloadedError(self.queue_limit) from None
        self._jobs[job.id] = job
        self._done_events[job.id] = asyncio.Event()
        self._cancel_flags[job.id] = threading.Event()
        self.metrics.counter("service.jobs_submitted").inc()
        return job

    def job(self, job_id: str) -> Job:
        """Look a job up by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return list(self._jobs.values())

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job finishes (done or failed); returns it."""
        job = self.job(job_id)
        event = self._done_events[job_id]
        if timeout is None:
            await event.wait()
        else:
            await asyncio.wait_for(event.wait(), timeout)
        return job

    async def check(self, request: JobRequest) -> Job:
        """Submit-and-wait convenience: one request to a finished job."""
        job = await self.submit(request)
        return await self.wait(job.id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; returns it immediately (without waiting).

        A *queued* job is cancelled on the spot: its status flips to
        ``cancelled``, waiters are released, and the worker loop discards
        it when it eventually drains off the queue — the slot is never
        occupied.  A *running* job is preempted cooperatively: the cancel
        flag trips the job's :class:`_CancelGate` at its next engine
        event, the search unwinds through its normal teardown, and the
        job finishes as ``Inconclusive (cancelled)`` with the slot freed
        for the next job.  Finished jobs (done / failed / already
        cancelled) are left untouched.

        Raises:
            UnknownJobError: No job with this id.
        """
        job = self.job(job_id)
        if job.status == QUEUED:
            job.status = CANCELLED
            job.error = "cancelled while queued"
            job.finished_ts = self._clock()
            emit(job.events, "job-cancelled", job=job.id, reason="cancel requested")
            self.metrics.counter("service.jobs_cancelled").inc()
            self._done_events[job.id].set()
        elif job.status == RUNNING:
            self._cancel_flags[job.id].set()
        return job

    def cancel_active(self) -> int:
        """Cancel every queued and running job; returns how many.

        The graceful-shutdown path: after this, :meth:`stop` returns as
        soon as the running searches hit their next engine event and
        unwind, instead of waiting out arbitrarily long explorations.
        """
        cancelled = 0
        for job in list(self._jobs.values()):
            if job.status in (QUEUED, RUNNING):
                self.cancel(job.id)
                cancelled += 1
        return cancelled

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _worker_loop(self, slot: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is None:
                break
            if job.status == CANCELLED:
                # Cancelled while queued: already finalised by cancel();
                # discard without occupying the slot.
                continue
            self._running[slot] = job
            self._beat(slot)
            try:
                await loop.run_in_executor(
                    self._executor, self._execute, slot, job
                )
            except Exception:
                # _execute fails the job for every expected error; anything
                # escaping it is a service bug — record it on the job rather
                # than letting the slot die with the queue still full.
                if job.status not in (DONE, FAILED, CANCELLED):
                    job.status = FAILED
                    job.error = traceback.format_exc().strip()
                    self.metrics.counter("service.jobs_failed").inc()
            finally:
                self._running[slot] = None
                self._heartbeats[slot] = 0.0
                self._done_events[job.id].set()

    def _execute(self, slot: int, job: Job) -> None:
        """Run one job to completion; runs on an executor thread."""
        job.status = RUNNING
        job.worker = slot
        job.started_ts = self._clock()
        wall_limit = job.request.budgets.max_wall_seconds
        deadline = None if wall_limit is None else job.started_ts + wall_limit
        gate = _CancelGate(
            job.id, self._cancel_flags[job.id], deadline, self._clock
        )
        # The gate sits *after* the job log in the chain so the event that
        # trips it is still recorded before the search unwinds.
        observer = MultiObserver([job.events, _SlotHeartbeat(self, slot), gate])
        try:
            emit(observer, "job-started", job=job.id, worker=slot)
            protocol, prop = job.request.resolve_workload()
            plan = job.request.effective_plan()
            key = self.cache.key_for(protocol, prop.name, plan)
            result = self.cache.get(key)
            if result is not None:
                job.cache_hit = True
                self.metrics.counter("service.cache_hits").inc()
                emit(
                    observer,
                    "job-cache-hit",
                    job=job.id,
                    fingerprint=key[0],
                    property=prop.name,
                )
            else:
                self._engine_runs += 1
                self.metrics.counter("service.engine_runs").inc()
                result = run_plan(
                    protocol, prop, plan, observer=observer, registry=self.registry
                )
                self.cache.put(key, result)
            job.result = result
            job.status = DONE
            job.finished_ts = self._clock()
            self.metrics.counter("service.jobs_done").inc()
            self.metrics.counter(
                f"service.outcome.{result.outcome()}"
            ).inc()
            emit(
                observer,
                "job-finished",
                job=job.id,
                outcome=result.outcome(),
                complete=result.complete,
                cache_hit=job.cache_hit,
                states_visited=result.statistics.states_visited,
            )
        except JobCancelled as exc:
            self._cancelled(job, exc)
        except (UnsupportedPlanError, KeyError, ValueError) as exc:
            self._fail(observer, job, exc)
        except Exception as exc:  # engine crash: fail the job, keep the slot
            self._fail(observer, job, exc, include_traceback=True)

    def _cancelled(self, job: Job, exc: JobCancelled) -> None:
        """Finalise a preempted job with an honest partial verdict.

        The search unwound mid-flight, so no statistics survive; the job
        gets an explicitly incomplete, unverified :class:`CheckResult`
        whose ``incomplete_reason`` renders as ``Inconclusive
        (cancelled)``.  Never cached (the cache refuses incomplete
        results), so a resubmission runs the check for real.
        """
        plan = job.request.effective_plan()
        job.result = CheckResult(
            protocol_name=job.request.cell,
            property_name=plan.goal,
            strategy=strategy_label(plan),
            verified=True,
            complete=False,
            plan=plan,
            incomplete_reason="cancelled",
        )
        job.status = CANCELLED
        job.error = str(exc)
        job.finished_ts = self._clock()
        self.metrics.counter("service.jobs_cancelled").inc()
        # Straight to the job log: the gate would re-raise from inside
        # this very emit if it stayed in the chain.
        emit(job.events, "job-cancelled", job=job.id, reason=exc.reason)

    def _fail(
        self,
        observer: Observer,
        job: Job,
        exc: Exception,
        include_traceback: bool = False,
    ) -> None:
        job.status = FAILED
        job.error = str(exc)
        if include_traceback:
            job.error = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ).strip()
        job.finished_ts = self._clock()
        self.metrics.counter("service.jobs_failed").inc()
        emit(
            observer,
            "job-failed",
            job=job.id,
            error=str(exc),
            error_kind=type(exc).__name__,
        )

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    def _beat(self, slot: int) -> None:
        self._heartbeats[slot] = self._clock()

    def health(self) -> Dict[str, object]:
        """Liveness snapshot of the service (the ``health`` server op).

        A worker slot is *stalled* when it holds a running job whose event
        stream has been silent past ``stall_seconds`` — the same heartbeat
        rule the parallel coordinator applies to its worker processes, run
        here over service slots.  Stall episodes are also counted through a
        :class:`StallDetector` so repeated probes of one silent slot count
        a single episode, and engine-level ``worker-stalled`` events seen
        by running jobs are surfaced alongside.
        """
        now = self._clock()
        for _slot, _idle in self._detector.check(tuple(self._heartbeats), now=now):
            self._stall_episodes += 1
        stalled = []
        engine_stalls = 0
        for slot, job in enumerate(self._running):
            if job is None:
                continue
            engine_stalls += job.events.stall_events
            beat = self._heartbeats[slot]
            if beat > 0.0 and now - beat >= self.stall_seconds:
                stalled.append(
                    {
                        "worker": slot,
                        "job": job.id,
                        "idle_seconds": now - beat,
                    }
                )
        states = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for job in self._jobs.values():
            states[job.status] += 1
        return {
            "status": "degraded" if stalled else "ok",
            "workers": self.workers,
            "queued": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "running": [job.id for job in self._running if job is not None],
            "stalled": stalled,
            "stall_episodes": self._stall_episodes,
            "engine_stall_events": engine_stalls,
            "jobs": states,
            "engine_runs": self._engine_runs,
            "cache": self.cache.stats(),
        }

    @property
    def engine_runs(self) -> int:
        """Number of jobs that actually ran an engine (cache misses)."""
        return self._engine_runs


def run_jobs(
    requests: List[JobRequest],
    **service_kwargs,
) -> List[Job]:
    """Synchronous convenience: run requests through a throwaway service.

    Submits everything up front (so the cache and the worker pool see the
    batch concurrently), waits for all verdicts, returns the finished jobs
    in request order.  This is the in-process "thin client" used by the
    examples and the CLI's non-server fallback.
    """

    async def _run() -> List[Job]:
        async with CheckService(**service_kwargs) as service:
            jobs = []
            for request in requests:
                jobs.append(await service.submit(request))
            return [await service.wait(job.id) for job in jobs]

    return asyncio.run(_run())
