"""MP-Kit: efficient model checking of fault-tolerant distributed protocols.

A from-scratch Python reproduction of *"Efficient Model Checking of
Fault-Tolerant Distributed Protocols"* (Bokor, Kinder, Serafini, Suri —
DSN 2011).  The library provides:

* :mod:`repro.mp` — the MP modelling layer: message-passing protocols with
  guarded single-message and quorum transitions;
* :mod:`repro.checker` — an explicit-state model checker (stateful and
  stateless search, invariants, counterexamples);
* :mod:`repro.engine` — the composable engine layer: :class:`CheckPlan`
  (search shape × reduction × store × backend × workers), a capability-
  declaring engine registry with structured unsupported-plan diagnostics,
  and the progress/event observer API all engines feed;
* :mod:`repro.por` — partial-order reduction: a stubborn-set static POR with
  a pre-computed dependence relation (the MP-LPOR analogue) and a stateless
  dynamic POR baseline;
* :mod:`repro.refine` — transition refinement: quorum-split, reply-split and
  combined-split;
* :mod:`repro.protocols` — Paxos, regular storage, Echo Multicast and
  crash-recovery storage models in quorum and single-message variants, with
  fault-injected versions (the crash-recovery family is cyclic and carries
  liveness properties);
* :mod:`repro.analysis` — blow-up formulas, reduction metrics and table
  rendering for the benchmark harness.

Quickstart::

    from repro import (
        ModelChecker, Strategy,
        PaxosConfig, build_paxos_quorum, consensus_invariant,
    )

    protocol = build_paxos_quorum(PaxosConfig(proposers=1, acceptors=3, learners=1))
    result = ModelChecker(protocol, consensus_invariant()).run(Strategy.SPOR)
    print(result.summary())
"""

from .checker import (
    CheckResult,
    CheckerOptions,
    Counterexample,
    Eventually,
    Invariant,
    ModelChecker,
    SearchConfig,
    SearchStatistics,
    Strategy,
    check_plan,
    check_protocol,
    goal_of,
    plan_for_strategy,
)
from .engine import (
    CheckPlan,
    CollectingObserver,
    EngineRegistry,
    Observer,
    ProgressPrinter,
    UnsupportedPlanError,
    default_registry,
    run_plan,
)
from .mp import (
    ActionContext,
    Execution,
    GlobalState,
    LporAnnotation,
    Message,
    Network,
    Protocol,
    ProtocolBuilder,
    QuorumSpec,
    SendSpec,
    TransitionSpec,
    exact_quorum,
    majority_of,
    single_message,
)
from .parallel import CellSpec, parallel_bfs_search, run_cells
from .por import DependenceRelation, DporSearch, StubbornSetProvider
from .protocols import (
    CrashRecoveryConfig,
    MulticastConfig,
    PaxosConfig,
    StorageConfig,
    agreement_invariant,
    build_crash_recovery_quorum,
    build_crash_recovery_single,
    build_faulty_paxos_quorum,
    build_faulty_paxos_single,
    build_multicast_quorum,
    build_multicast_single,
    build_paxos_quorum,
    build_paxos_single,
    build_storage_quorum,
    build_storage_single,
    consensus_invariant,
    default_catalog,
    durability_invariant,
    eventually_done,
    eventually_progress,
    regularity_invariant,
    wrong_regularity_invariant,
)
from .refine import (
    combined_split,
    compare_state_graphs,
    is_transition_refinement,
    quorum_split,
    reply_split,
)

__version__ = "1.0.0"

__all__ = [
    "ActionContext",
    "CellSpec",
    "CheckPlan",
    "CheckResult",
    "CheckerOptions",
    "CollectingObserver",
    "Counterexample",
    "CrashRecoveryConfig",
    "EngineRegistry",
    "Eventually",
    "Observer",
    "ProgressPrinter",
    "UnsupportedPlanError",
    "check_plan",
    "default_registry",
    "plan_for_strategy",
    "run_plan",
    "DependenceRelation",
    "DporSearch",
    "Execution",
    "GlobalState",
    "Invariant",
    "LporAnnotation",
    "Message",
    "ModelChecker",
    "MulticastConfig",
    "Network",
    "PaxosConfig",
    "Protocol",
    "ProtocolBuilder",
    "QuorumSpec",
    "SearchConfig",
    "SearchStatistics",
    "SendSpec",
    "StorageConfig",
    "StubbornSetProvider",
    "Strategy",
    "TransitionSpec",
    "agreement_invariant",
    "build_crash_recovery_quorum",
    "build_crash_recovery_single",
    "build_faulty_paxos_quorum",
    "build_faulty_paxos_single",
    "build_multicast_quorum",
    "build_multicast_single",
    "build_paxos_quorum",
    "build_paxos_single",
    "build_storage_quorum",
    "build_storage_single",
    "check_protocol",
    "combined_split",
    "compare_state_graphs",
    "consensus_invariant",
    "default_catalog",
    "durability_invariant",
    "eventually_done",
    "eventually_progress",
    "exact_quorum",
    "goal_of",
    "is_transition_refinement",
    "majority_of",
    "parallel_bfs_search",
    "quorum_split",
    "regularity_invariant",
    "reply_split",
    "run_cells",
    "single_message",
    "wrong_regularity_invariant",
    "__version__",
]
