"""``python -m repro`` — reproduce the paper's experiments from the shell.

Subcommands:

``cells``
    List the catalog cells (Table-I rows) available at a scale.
``engines``
    List the registered engines with the plan-axis combinations each one
    supports (shape × reduction × backend × workers × store × successors).
    With ``--plan`` plus axis options it becomes a *dry run*: it prints the
    resolution decision — the chosen engine and the concretised backend, or
    the structured ``UnsupportedPlanError`` diagnostic with the nearest
    supported alternative — without running anything.
``check``
    Check one cell.  Either name a legacy ``--strategy`` or spell the plan
    axes out (``--shape`` / ``--reduction`` / ``--backend``); plan
    resolution picks the backend for ``--workers N`` automatically
    (frontier-parallel BFS for bfs shapes, work-stealing DFS otherwise).
    ``--goal liveness`` checks the cell's liveness property with the
    nested-DFS engines instead of its invariant.
    ``--progress`` streams the engine's event feed while it runs.
``sweep``
    Run a grid of cells, optionally farming independent cells across a
    process pool (``--workers N``) and/or giving every cell an inner
    worker count (``--cell-workers N``), and write a ``BENCH_*.json``
    payload.
``bench``
    Serial-vs-parallel comparison: times the sweep loop against the
    cell-parallel pool and (optionally) per-cell serial vs parallel runs
    of the in-cell engines — frontier-parallel BFS and, for DFS-shaped
    strategies, work-stealing DFS; writes a ``BENCH_*.json`` payload.
``serve``
    Run the checking service: a JSON-lines-over-TCP job server with a
    bounded queue, a concurrent worker pool, per-job event streams, a
    verdict cache (complete results only) and a heartbeat health probe.
``submit``
    Thin client of ``serve``: submit one cell/plan/budget job, wait for
    the verdict, exit 0 (verified) / 1 (violated) / 2 (error) /
    3 (inconclusive — the budget ran out before the verdict).  With
    ``--cancel JOB`` it cancels a job instead: the job ends as
    ``Inconclusive (cancelled)`` (exit 3) and its worker slot is reused.
``trace``
    Convert a ``--trace-out`` JSONL event capture into Chrome trace-event
    JSON, loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: phase spans as slices, progress/frontier/worker
    counters as counter tracks, violations and stalls as instants.
``report``
    Aggregate any number of ``BENCH_*.json`` files/directories into one
    table with per-cell speedups; ``--telemetry`` adds the companion
    table over the records' telemetry blocks (throughput, memo hit
    rates, peak RSS, search-span seconds).

All machine-readable output follows the ``repro-bench/1`` schema of
:mod:`repro.analysis.aggregate`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.aggregate import (
    aggregate_records,
    bench_payload,
    load_bench_files,
    record_outcome,
    render_aggregate,
    safe_ratio,
    render_telemetry,
    write_bench_file,
)
from .checker.statestore import STORE_KINDS
from .engine.events import MultiObserver, ProgressPrinter
from .obs import JsonlSink, convert_file
from .engine.plan import (
    BACKENDS,
    GOALS,
    REDUCTIONS,
    SHAPES,
    SUCCESSOR_MODES,
    CheckPlan,
    UnsupportedPlanError,
)
from .engine.registry import default_registry
from .parallel.cells import MODELS, CellSpec, run_cell_task, run_cells, specs_for_sweep
from .protocols.catalog import default_catalog

#: Strategy strings accepted by --strategy (``dfs`` and ``stubborn`` are
#: aliases of ``unreduced`` and ``spor``, named after the search shape).
STRATEGIES = ("unreduced", "dfs", "spor", "stubborn", "spor-net", "dpor", "bfs")

#: Strategies the work-stealing parallel DFS can drive.
DFS_SHAPED = ("unreduced", "dfs", "spor", "stubborn", "spor-net")


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-states", type=int, default=None,
                        help="abort a cell after this many stored states "
                             "(swarm: total walk steps)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="abort a cell after this wall-clock budget")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="depth budget; for --backend swarm the "
                             "per-walk step bound (default 256)")
    parser.add_argument("--store", choices=[k for k in STORE_KINDS if k != "none"],
                        default="full", help="visited-state store kind")
    parser.add_argument("--scale", choices=("small", "paper"), default="small",
                        help="catalog scale the cell keys belong to")


def _parse_cells(value: Optional[str], scale: str) -> Optional[List[str]]:
    if value is None or value == "all":
        return None
    return [key.strip() for key in value.split(",") if key.strip()]


def _print_records(records: Sequence[dict], stream) -> None:
    for record in records:
        # One shared derivation (checker.result outcome -> label) for
        # check/sweep/bench lines, reports and bench records alike.
        outcome = record_outcome(record)
        flag = "" if record.get("ok", True) else "  [UNEXPECTED]"
        stream.write(
            f"{record.get('cell', record['protocol'])} | {record.get('model', '-')} | "
            f"{record['strategy']}"
            + (f" x{record['workers']}" if record.get("workers", 1) > 1 else "")
            + f": {outcome} — {record['states_visited']:,} states, "
            f"{record['elapsed_seconds']:.2f}s{flag}\n"
        )


def _command_cells(args, stream) -> int:
    for entry in default_catalog(args.scale):
        expected = "CE" if entry.expect_violation else "Verified"
        line = f"{entry.key:<24} {entry.description:<32} expected: {expected}"
        if entry.liveness is not None:
            liveness_expected = "CE" if entry.expect_liveness_violation else "Verified"
            line += f"  liveness[{entry.liveness.name}]: {liveness_expected}"
        stream.write(line + "\n")
    return 0


def _command_engines(args, stream) -> int:
    """List the registered engines, or dry-run one plan's resolution."""
    if args.plan:
        return _command_engines_plan(args, stream)
    for engine in default_registry().engines():
        caps = engine.capabilities
        stream.write(
            f"{engine.name:<18} "
            f"shape={'|'.join(caps.shapes)} "
            f"reduction={'|'.join(caps.reductions)} "
            f"backend={'|'.join(caps.backends)} "
            f"{caps.supported_description('workers')} "
            f"store={'|'.join(caps.stores)} "
            f"successors={'|'.join(caps.successor_modes)} "
            f"goal={'|'.join(caps.goals)}\n"
        )
        stream.write(f"{'':<18} {engine.description}\n")
    return 0


def _command_engines_plan(args, stream) -> int:
    """Dry-run plan resolution: print the decision without running.

    Exit code 0 when the plan resolves; 2 with the structured diagnostic
    (offending axis, engine note, runnable nearest alternative) when no
    registered engine supports the combination.
    """
    stateful = args.reduction != "dpor"
    plan = CheckPlan(
        shape=args.shape,
        reduction=args.reduction,
        store=args.store if stateful else "none",
        backend=args.backend,
        workers=max(1, args.workers),
        stateful=stateful,
        successors=args.successors,
        goal=args.goal,
    )
    registry = default_registry()
    try:
        engine, resolved = registry.resolve(plan)
    except UnsupportedPlanError as error:
        stream.write(f"plan {plan.describe()}: unsupported\n")
        stream.write(f"  axis: {error.axis} = {error.value!r}\n")
        stream.write(f"  {error}\n")
        if isinstance(error.alternative, CheckPlan):
            alt_engine, alt_resolved = registry.resolve(error.alternative)
            stream.write(
                f"  alternative {error.alternative.describe()} resolves to "
                f"{alt_engine.name} (backend {alt_resolved.backend})\n"
            )
        return 2
    stream.write(
        f"plan {plan.describe()} -> engine {engine.name} "
        f"(backend {resolved.backend}, workers {resolved.workers})\n"
    )
    return 0


def _command_check(args, stream) -> int:
    # A strategy names a full (shape, reduction) point; partial axis
    # overrides on top of it would have to silently drop one or the other,
    # so mixing the two forms is an explicit error, not a guess.
    if args.strategy is not None and (args.shape or args.reduction):
        stream.write(
            "error: --strategy and --shape/--reduction are alternative ways "
            "to name the same axes; use one form (e.g. --strategy spor  ==  "
            "--shape dfs --reduction spor)\n"
        )
        return 2
    shape, reduction = args.shape, args.reduction
    if args.goal == "liveness" and args.strategy is None and shape is None and reduction is None:
        # Liveness defaults to the one supported configuration — serial
        # nested DFS without reduction — instead of the invariant default
        # (spor), which no liveness engine could run.
        shape, reduction = "dfs", "none"
    if args.backend == "swarm" and args.strategy is None and shape is None and reduction is None:
        # Swarm walks are unreduced by construction (POR assumes the
        # surviving interleavings are explored exhaustively), so the
        # sampling backend defaults to dfs/none rather than the invariant
        # default (spor), which it could never run.
        shape, reduction = "dfs", "none"
    spec = CellSpec(
        key=args.cell,
        model=args.model,
        strategy=args.strategy or "spor",
        scale=args.scale,
        state_store=args.store,
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        workers=args.workers,
        shape=shape,
        reduction=reduction,
        backend=args.backend,
        successors=args.successors,
        goal=args.goal,
        walks=args.walks,
        walk_seed=args.seed,
        max_depth=args.max_depth,
        chaos=args.chaos,
        supervise=args.supervise,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
    )
    observers = []
    if args.progress:
        observers.append(ProgressPrinter(stream))
    sink = None
    if args.trace_out:
        sink = JsonlSink(args.trace_out)
        observers.append(sink)
    observer = None
    if len(observers) == 1:
        observer = observers[0]
    elif observers:
        observer = MultiObserver(observers)
    try:
        record = run_cell_task(spec.to_task(), observer=observer)
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        stream.write(
            f"wrote {sink.events_written} events to {args.trace_out} "
            f"(render with: python -m repro trace {args.trace_out})\n"
        )
    _print_records([record], stream)
    if args.json:
        payload = bench_payload("check", [record], workers=args.workers)
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        stream.write(f"wrote {args.json}\n")
    if args.backend == "swarm":
        # Sampling runs exit by verdict, like `submit`: a violation is the
        # sought-for positive signal (1), an exhausted budget is honest
        # inconclusiveness (3) — the catalog's expectation flag cannot make
        # a non-exhaustive run "agree" with anything.
        return SUBMIT_EXIT_CODES[record["outcome"]]
    return 0 if record["ok"] else 1


def _command_sweep(args, stream) -> int:
    keys = _parse_cells(args.cells, args.scale)
    specs = specs_for_sweep(
        keys=keys,
        scale=args.scale,
        models=tuple(args.models.split(",")),
        strategy=args.strategy,
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        state_store=args.store,
        cell_workers=args.cell_workers,
        backend=args.backend,
        successors=args.successors,
        goal=args.goal,
        walks=args.walks,
        walk_seed=args.seed,
        max_depth=args.max_depth,
    )
    workers = 1 if args.serial else args.workers
    started = time.perf_counter()
    records = run_cells(specs, workers=workers)
    wall = time.perf_counter() - started
    _print_records(records, stream)
    # Inner-parallel cells bypass the (daemonic) pool inside run_cells.
    pooled = workers > 1 and len(specs) > 1 and args.cell_workers <= 1
    stream.write(
        f"swept {len(records)} cells in {wall:.2f}s "
        f"({f'{workers}-process pool' if pooled else 'serial loop'})\n"
    )
    payload = bench_payload(
        "sweep", records, workers=workers, sweep_seconds=wall, strategy=args.strategy
    )
    path = write_bench_file(Path(args.output), "sweep", payload, label=args.label)
    stream.write(f"wrote {path}\n")
    return 0 if all(record["ok"] for record in records) else 1


def _command_bench(args, stream) -> int:
    keys = _parse_cells(args.cells, args.scale)
    specs = specs_for_sweep(
        keys=keys,
        scale=args.scale,
        models=("quorum",),
        strategy=args.strategy,
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        state_store=args.store,
    )
    results: List[dict] = []
    meta = {"workers": args.workers}

    # Axis 1: the same cell grid as a serial loop vs. a cell-parallel pool.
    started = time.perf_counter()
    serial_records = run_cells(specs, workers=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    parallel_records = run_cells(specs, workers=args.workers)
    parallel_wall = time.perf_counter() - started
    for record in serial_records:
        record["batch_mode"] = "serial-loop"
    for record in parallel_records:
        record["batch_mode"] = "cell-parallel"
    results.extend(serial_records)
    results.extend(parallel_records)
    meta["sweep_serial_seconds"] = serial_wall
    meta["sweep_parallel_seconds"] = parallel_wall
    # safe_ratio, not a bare division: a sub-resolution parallel wall (tiny
    # grids on coarse clocks) yields an honest None/n-a, never NaN/inf in
    # the payload.
    speedup = safe_ratio(serial_wall, parallel_wall)
    meta["sweep_speedup"] = speedup
    rendered = f"{speedup:.2f}x" if speedup is not None else "n/a"
    stream.write(
        f"cell-parallel sweep: serial loop {serial_wall:.2f}s vs "
        f"{args.workers}-process pool {parallel_wall:.2f}s ({rendered})\n"
    )

    # Axis 2: serial BFS vs. frontier-parallel BFS on each cell.
    if not args.skip_frontier:
        for spec in specs:
            for workers in dict.fromkeys((1, args.workers)):
                record = run_cell_task(
                    CellSpec(
                        key=spec.key,
                        model=spec.model,
                        strategy="bfs",
                        scale=spec.scale,
                        state_store=spec.state_store,
                        max_states=spec.max_states,
                        max_seconds=spec.max_seconds,
                        workers=workers,
                    ).to_task()
                )
                record["batch_mode"] = "frontier"
                results.append(record)
        _print_records([r for r in results if r.get("batch_mode") == "frontier"], stream)

    # Axis 3: serial DFS vs. work-stealing DFS on each cell (only DFS-shaped
    # strategies have a work-stealing mode; bfs/dpor cells skip this axis).
    if not args.skip_worksteal and args.strategy in DFS_SHAPED:
        for spec in specs:
            for workers in dict.fromkeys((1, args.workers)):
                record = run_cell_task(replace(spec, workers=workers).to_task())
                record["batch_mode"] = "worksteal"
                results.append(record)
        _print_records([r for r in results if r.get("batch_mode") == "worksteal"], stream)

    payload = bench_payload("bench", results, **meta)
    path = write_bench_file(Path(args.output), "bench", payload, label=args.label)
    stream.write(f"wrote {path}\n")
    return 0 if all(record["ok"] for record in results) else 1


def _command_serve(args, stream) -> int:
    """Run the checking service until a ``shutdown`` op (or Ctrl-C)."""
    import asyncio

    from .service import CheckService, ResultCache, serve

    def announce(host, port):
        # Written (and flushed) before the first job so scripted callers
        # can scrape the bound port when --port 0 picked a free one.
        stream.write(f"repro service {host}:{port} "
                     f"({args.workers} workers, queue {args.queue_limit})\n")
        getattr(stream, "flush", lambda: None)()

    service = CheckService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache=ResultCache(capacity=args.cache_capacity),
    )
    try:
        # handle_signals: SIGTERM/SIGINT run the same graceful path as the
        # 'shutdown' op — active jobs are cancelled (finishing as honest
        # 'Inconclusive (cancelled)' records), slots drained, sinks closed.
        asyncio.run(
            serve(host=args.host, port=args.port, service=service,
                  announce=announce, handle_signals=True)
        )
        stream.write("service stopped\n")
    except KeyboardInterrupt:
        # Platforms where loop signal handlers are unavailable fall back
        # to the interrupt propagating here.
        stream.write("service interrupted\n")
    return 0


#: ``repro submit`` exit codes, one per verdict: 0 verified, 1 violated,
#: 2 error/unsupported plan (matching the top-level handler), 3 honest
#: "the budget ran out" — scripts can branch on partiality explicitly.
SUBMIT_EXIT_CODES = {"verified": 0, "violated": 1, "inconclusive": 3}


def _command_submit(args, stream) -> int:
    """Submit one job to a running service and render its verdict."""
    from .service.client import ServiceClient, ServiceClientError

    if args.cancel is not None:
        return _cancel_job(args, stream)
    if args.cell is None:
        stream.write("error: a catalog cell is required unless --cancel JOB is given\n")
        return 2
    plan = {
        "shape": args.shape,
        "reduction": args.reduction,
        "backend": args.backend,
        "successors": args.successors,
        "workers": args.workers,
        "goal": args.goal,
    }
    budgets = {
        knob: value
        for knob, value in (
            ("max_states", args.max_states),
            ("max_seconds", args.max_seconds),
            ("max_depth", args.max_depth),
            ("max_wall_seconds", args.max_wall_seconds),
        )
        if value is not None
    }
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            record = client.submit(
                args.cell,
                model=args.model,
                scale=args.scale,
                plan=plan,
                budgets=budgets,
                wait=True,
            )
            if args.shutdown:
                client.shutdown()
    except ServiceClientError as error:
        stream.write(f"error: {error}\n")
        if error.alternative:
            stream.write(f"nearest supported alternative: {error.alternative}\n")
        return 2
    except OSError as error:
        stream.write(
            f"error: cannot reach service at {args.host}:{args.port} ({error}); "
            "start one with 'python -m repro serve'\n"
        )
        return 2
    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
    if record["status"] == "failed":
        stream.write(f"error: job {record['job']} failed: {record.get('error')}\n")
        return 2
    cached = " [cached]" if record.get("cache_hit") else ""
    _print_records([record], stream)
    stream.write(f"job {record['job']}: {record['outcome']}{cached}\n")
    return SUBMIT_EXIT_CODES[record["outcome"]]


def _cancel_job(args, stream) -> int:
    """``repro submit --cancel JOB``: cancel a job on a running service.

    Exit code follows the verdict discipline: a job that was actually
    cancelled (queued or preempted mid-run) is inconclusive by
    construction, so the command exits 3; cancelling an already-finished
    job reports that job's real verdict instead.
    """
    from .service.client import ServiceClient, ServiceClientError

    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            record = client.cancel(args.cancel, wait=True)
            if args.shutdown:
                client.shutdown()
    except ServiceClientError as error:
        stream.write(f"error: {error}\n")
        return 2
    except OSError as error:
        stream.write(
            f"error: cannot reach service at {args.host}:{args.port} ({error}); "
            "start one with 'python -m repro serve'\n"
        )
        return 2
    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
    status = record["status"]
    if status == "failed":
        stream.write(f"job {record['job']}: failed: {record.get('error')}\n")
        return 2
    outcome = record.get("outcome", "inconclusive")
    stream.write(f"job {record['job']}: {status} ({outcome})\n")
    return SUBMIT_EXIT_CODES[outcome]


def _command_trace(args, stream) -> int:
    """Convert a JSONL event capture into Chrome trace-event JSON."""
    source = Path(args.events)
    destination = Path(args.output) if args.output else source.with_suffix(".trace.json")
    count = convert_file(source, destination)
    stream.write(
        f"wrote {destination} ({count} trace events; open in "
        "https://ui.perfetto.dev or chrome://tracing)\n"
    )
    return 0


def _command_report(args, stream) -> int:
    payloads = load_bench_files(args.paths)
    summary = aggregate_records(payloads)
    stream.write(render_aggregate(summary) + "\n")
    if args.telemetry:
        stream.write("\n" + render_telemetry(payloads) + "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Model-check the paper's protocol cells, serially or in parallel.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cells = subparsers.add_parser("cells", help="list the catalog cells")
    cells.add_argument("--scale", choices=("small", "paper"), default="small")
    cells.set_defaults(handler=_command_cells)

    engines = subparsers.add_parser(
        "engines", help="list the registered engines and their capabilities"
    )
    engines.add_argument("--plan", action="store_true",
                         help="dry-run: print the resolution decision for "
                              "the axes below without running anything")
    engines.add_argument("--shape", choices=SHAPES, default="dfs")
    engines.add_argument("--reduction", choices=REDUCTIONS, default="none")
    engines.add_argument("--backend", choices=BACKENDS, default="auto")
    engines.add_argument("--workers", type=int, default=1)
    engines.add_argument("--store", choices=STORE_KINDS, default="full")
    engines.add_argument("--successors", choices=SUCCESSOR_MODES,
                         default="object")
    engines.add_argument("--goal", choices=GOALS, default="invariant")
    engines.set_defaults(handler=_command_engines)

    check = subparsers.add_parser("check", help="check one cell")
    check.add_argument("cell", help="catalog key, e.g. paxos-2-2-1")
    check.add_argument("--model", choices=MODELS, default="quorum")
    check.add_argument("--strategy", choices=STRATEGIES, default=None,
                       help="legacy strategy name (default spor); mutually "
                            "exclusive with --shape/--reduction")
    check.add_argument("--shape", choices=SHAPES, default=None,
                       help="explicit plan axis: search shape "
                            "(mutually exclusive with --strategy)")
    check.add_argument("--reduction", choices=REDUCTIONS, default=None,
                       help="explicit plan axis: partial-order reduction "
                            "(mutually exclusive with --strategy)")
    check.add_argument("--backend", choices=BACKENDS, default="auto",
                       help="execution backend; 'auto' picks serial/"
                            "frontier/worksteal from shape and workers")
    check.add_argument("--successors", choices=SUCCESSOR_MODES,
                       default="object",
                       help="successor-engine family: 'fast' opts into the "
                            "packed table-compiled fast path")
    check.add_argument("--workers", type=int, default=1,
                       help="in-cell workers: frontier-parallel for bfs, "
                            "work-stealing DFS for dfs/stubborn/spor-net")
    check.add_argument("--goal", choices=GOALS, default="invariant",
                       help="check the cell's invariant (default) or its "
                            "liveness property (nested DFS; defaults to "
                            "--shape dfs --reduction none)")
    check.add_argument("--walks", type=int, default=None,
                       help="walk budget for --backend swarm (default 1000)")
    check.add_argument("--seed", type=int, default=None, dest="seed",
                       help="root seed for --backend swarm; every walk and "
                            "the whole run replay bit-identically from it "
                            "(default 0)")
    check.add_argument("--chaos", default=None, metavar="PLAN",
                       help="fault-injection plan for the search workers, "
                            "e.g. 'crash:1@3' or 'seed:42:crash=1' "
                            "(see repro.chaos; testing only)")
    check.add_argument("--supervise", action="store_true", default=True,
                       help="restart crashed search workers and re-execute "
                            "their lost work (default)")
    check.add_argument("--no-supervise", action="store_false", dest="supervise",
                       help="fail fast on a crashed worker with an honest "
                            "'Inconclusive (worker crash)' verdict")
    check.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write a resumable checkpoint at level barriers "
                            "of BFS-shaped searches")
    check.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N", help="checkpoint every N levels "
                                         "(default: every level)")
    check.add_argument("--resume", default=None, metavar="PATH",
                       help="resume from a checkpoint file, or from the "
                            "latest checkpoint in a directory")
    check.add_argument("--progress", action="store_true",
                       help="stream the engine's event feed while it runs")
    check.add_argument("--trace-out", default=None, metavar="PATH",
                       help="capture the engine event stream as JSONL "
                            "(render with 'python -m repro trace PATH')")
    check.add_argument("--json", default=None, help="write the result payload here")
    _add_budget_arguments(check)
    check.set_defaults(handler=_command_check)

    sweep = subparsers.add_parser("sweep", help="run a grid of cells")
    sweep.add_argument("--cells", default="all",
                       help="comma-separated catalog keys, or 'all'")
    sweep.add_argument("--models", default="quorum",
                       help="comma-separated model variants (quorum,single)")
    sweep.add_argument("--strategy", choices=STRATEGIES, default="spor")
    sweep.add_argument("--backend", choices=BACKENDS, default="auto",
                       help="execution backend for every cell's own search")
    sweep.add_argument("--successors", choices=SUCCESSOR_MODES,
                       default="object",
                       help="successor-engine family for every cell "
                            "('fast' = packed fast path)")
    sweep.add_argument("--goal", choices=GOALS, default="invariant",
                       help="sweep the invariants (default) or the liveness "
                            "properties of the cells that carry one")
    sweep.add_argument("--workers", type=int, default=2,
                       help="cell-parallel pool size")
    sweep.add_argument("--cell-workers", type=int, default=1,
                       help="inner worker count of every cell's own search "
                            "(cells run one at a time when > 1)")
    sweep.add_argument("--walks", type=int, default=None,
                       help="walk budget per cell for --backend swarm")
    sweep.add_argument("--seed", type=int, default=None, dest="seed",
                       help="root seed for --backend swarm cells")
    sweep.add_argument("--serial", action="store_true",
                       help="force the serial loop regardless of --workers")
    sweep.add_argument("--output", default=".", help="directory for BENCH_*.json")
    sweep.add_argument("--label", default=None, help="label in the BENCH filename")
    _add_budget_arguments(sweep)
    sweep.set_defaults(handler=_command_sweep)

    bench = subparsers.add_parser(
        "bench", help="compare serial vs parallel on both axes"
    )
    bench.add_argument("--cells", default="all",
                       help="comma-separated catalog keys, or 'all'")
    bench.add_argument("--strategy", choices=STRATEGIES, default="spor",
                       help="strategy for the cell-parallel axis")
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--skip-frontier", action="store_true",
                       help="skip the per-cell frontier-parallel BFS axis")
    bench.add_argument("--skip-worksteal", action="store_true",
                       help="skip the per-cell work-stealing DFS axis")
    bench.add_argument("--output", default=".", help="directory for BENCH_*.json")
    bench.add_argument("--label", default=None, help="label in the BENCH filename")
    _add_budget_arguments(bench)
    bench.set_defaults(handler=_command_bench)

    serve_parser = subparsers.add_parser(
        "serve", help="run the checking service (JSON-lines over TCP)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7463,
                              help="bind port; 0 picks a free one (printed "
                                   "on the announcement line)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="concurrent job slots")
    serve_parser.add_argument("--queue-limit", type=int, default=16,
                              help="bounded submission queue; full means "
                                   "submissions are refused, not buffered")
    serve_parser.add_argument("--cache-capacity", type=int, default=256,
                              help="LRU bound of the verdict cache")
    serve_parser.set_defaults(handler=_command_serve)

    submit = subparsers.add_parser(
        "submit", help="submit one job to a running service"
    )
    submit.add_argument("cell", nargs="?", default=None,
                        help="catalog key, e.g. paxos-2-2-1 "
                             "(not needed with --cancel)")
    submit.add_argument("--cancel", default=None, metavar="JOB",
                        help="cancel a job instead of submitting one: a "
                             "queued job never runs, a running one is "
                             "preempted into 'Inconclusive (cancelled)' "
                             "(exit code 3) and its slot is reused")
    submit.add_argument("--model", choices=MODELS, default="quorum")
    submit.add_argument("--scale", choices=("small", "paper"), default="small")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7463)
    submit.add_argument("--shape", choices=SHAPES, default="dfs")
    submit.add_argument("--reduction", choices=REDUCTIONS, default="none")
    submit.add_argument("--backend", choices=BACKENDS, default="auto")
    submit.add_argument("--successors", choices=SUCCESSOR_MODES, default="object")
    submit.add_argument("--goal", choices=GOALS, default="invariant")
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--max-states", type=int, default=None,
                        help="per-job budget: truncated runs come back "
                             "'inconclusive' (exit code 3), never 'Verified'")
    submit.add_argument("--max-seconds", type=float, default=None)
    submit.add_argument("--max-depth", type=int, default=None)
    submit.add_argument("--max-wall-seconds", type=float, default=None,
                        help="service-side preemption deadline: past it the "
                             "job is cancelled into 'Inconclusive "
                             "(cancelled)' even if the engine ignores "
                             "--max-seconds")
    submit.add_argument("--json", default=None,
                        help="write the job record payload here")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to stop after this job "
                             "(scripted smoke tests)")
    submit.set_defaults(handler=_command_submit)

    trace = subparsers.add_parser(
        "trace", help="convert a --trace-out JSONL capture to Chrome trace JSON"
    )
    trace.add_argument("events", help="JSONL event capture written by --trace-out")
    trace.add_argument("-o", "--output", default=None,
                       help="destination .trace.json (default: alongside input)")
    trace.set_defaults(handler=_command_trace)

    report = subparsers.add_parser("report", help="aggregate BENCH_*.json payloads")
    report.add_argument("paths", nargs="+",
                        help="BENCH_*.json files and/or directories holding them")
    report.add_argument("--telemetry", action="store_true",
                        help="also render the telemetry table (throughput, "
                             "memo hit rates, peak RSS, span seconds)")
    report.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, stream)
    except UnsupportedPlanError as error:
        # The structured diagnostic (offending axis + nearest supported
        # alternative) is the user-facing message; no traceback.
        stream.write(f"error: {error}\n")
        return 2
