"""General transition refinement (Section III-B).

A transition refinement replaces the transition set of a protocol by another
one that generates *exactly the same state graph* (Definition 1).  The
functions here provide the shared plumbing of the concrete strategies
(quorum-split, reply-split) and a validator that checks Definition 1 by
enumeration on small instances — the executable counterpart of Theorem 2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..mp.message import DRIVER
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine, state_graph_edges
from ..mp.transition import TransitionSpec


class RefinementError(Exception):
    """A refinement strategy was applied to an unsuitable transition."""


#: How many protocols keep a cached successor engine at once.  Validation
#: workflows compare one original against a handful of refinements, so a
#: small LRU covers the repeated-enumeration pattern without pinning every
#: protocol ever validated in memory.
_MAX_SHARED_ENGINES = 4

#: ``id(protocol) -> engine`` LRU.  Keyed by identity (protocols contain
#: unhashable metadata mappings); the engine's own strong reference to the
#: protocol keeps the id stable for as long as the entry lives.
_SHARED_ENGINES: "OrderedDict[int, SuccessorEngine]" = OrderedDict()


def shared_successor_engine(protocol: Protocol) -> SuccessorEngine:
    """Return the cached successor engine for ``protocol`` (building one if needed).

    The refinement validator enumerates the same protocol's state graph once
    per comparison — the original of a quorum-split, reply-split and
    combined-split validation is walked three times.  Sharing one caching
    :class:`SuccessorEngine` across those enumerations turns every walk
    after the first into cache lookups instead of re-derived successors.
    """
    key = id(protocol)
    engine = _SHARED_ENGINES.get(key)
    if engine is not None and engine.protocol is protocol:
        _SHARED_ENGINES.move_to_end(key)
        return engine
    engine = SuccessorEngine(protocol)
    _SHARED_ENGINES[key] = engine
    if len(_SHARED_ENGINES) > _MAX_SHARED_ENGINES:
        _SHARED_ENGINES.popitem(last=False)
    return engine


def candidate_senders(protocol: Protocol, transition: TransitionSpec) -> Tuple[str, ...]:
    """Processes that may send messages consumed by ``transition``.

    Uses the transition's static annotation when available and otherwise
    falls back to every process except the executing one, mirroring the
    conservative automatic detection described in Section III-C
    ("otherwise we conservatively assume that i can be in such a set").
    The driver pseudo-process is never a quorum member.
    """
    declared = transition.effective_senders()
    if declared is not None:
        senders = tuple(sorted(pid for pid in declared if pid != DRIVER))
    else:
        senders = tuple(
            pid for pid in protocol.process_ids if pid != transition.process_id
        )
    return senders


def split_name(base: str, peers: FrozenSet[str]) -> str:
    """Canonical name of a split transition: ``BASE__peer1_peer2``.

    Mirrors MP-Basset's double-underscore naming convention for quorum-split
    transitions (Appendix I).
    """
    return base + "__" + "_".join(sorted(peers))


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of validating a refinement by state-graph enumeration.

    Attributes:
        equivalent: True if both protocols generate the same state graph.
        original_states: Number of states of the original protocol.
        refined_states: Number of states of the refined protocol.
        original_edges: Number of edges (state pairs) of the original.
        refined_edges: Number of edges of the refined protocol.
        missing_edges: Edges present in the original but not the refinement.
        extra_edges: Edges present in the refinement but not the original.
    """

    equivalent: bool
    original_states: int
    refined_states: int
    original_edges: int
    refined_edges: int
    missing_edges: int
    extra_edges: int


def compare_state_graphs(
    original: Protocol,
    refined: Protocol,
    max_states: Optional[int] = 200_000,
) -> RefinementReport:
    """Enumerate and compare the state graphs of two protocols.

    This is the executable form of Definition 1: the refinement is valid iff
    both protocols generate identical sets of states and edges.  Only
    intended for instances small enough to enumerate exhaustively.

    Each protocol is enumerated through a shared successor engine
    (:func:`shared_successor_engine`), so validating one original against
    several refinement strategies re-derives its successors only once.
    """
    original_states, original_edges = state_graph_edges(
        original, max_states=max_states, engine=shared_successor_engine(original)
    )
    refined_states, refined_edges = state_graph_edges(
        refined, max_states=max_states, engine=shared_successor_engine(refined)
    )
    missing = original_edges - refined_edges
    extra = refined_edges - original_edges
    equivalent = original_states == refined_states and not missing and not extra
    return RefinementReport(
        equivalent=equivalent,
        original_states=len(original_states),
        refined_states=len(refined_states),
        original_edges=len(original_edges),
        refined_edges=len(refined_edges),
        missing_edges=len(missing),
        extra_edges=len(extra),
    )


def is_transition_refinement(
    original: Protocol,
    refined: Protocol,
    max_states: Optional[int] = 200_000,
) -> bool:
    """True if ``refined`` is a transition refinement of ``original`` (Definition 1)."""
    return compare_state_graphs(original, refined, max_states=max_states).equivalent
