"""Quorum-split: refine exact quorum transitions per sender set (Section III-C).

For an exact quorum transition ``t`` with threshold ``q`` the strategy adds
one transition ``t__Q`` per size-``q`` subset ``Q`` of the processes that may
send messages to ``t``, restricted (via ``quorum_peers``) to consume messages
from exactly that subset.  Theorem 2 guarantees the resulting protocol
generates the same state graph; the validator in
:mod:`repro.refine.refinement` checks this on small instances.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Iterable, List, Optional

from ..mp.protocol import Protocol
from ..mp.transition import TransitionSpec
from .refinement import RefinementError, candidate_senders, split_name


def splittable_quorum_transitions(protocol: Protocol) -> tuple:
    """Return the transitions eligible for quorum-split.

    Eligible transitions are exact quorum transitions (threshold > 1) that
    have not already been restricted to a fixed peer set.
    """
    return tuple(
        transition
        for transition in protocol.transitions
        if transition.is_quorum_transition and transition.quorum_peers is None
    )


def split_quorum_transition(
    protocol: Protocol, transition: TransitionSpec
) -> List[TransitionSpec]:
    """Return the quorum-split replacements of a single transition."""
    if not transition.is_quorum_transition:
        raise RefinementError(
            f"{transition.name} is not a quorum transition; nothing to split"
        )
    if transition.quorum_peers is not None:
        raise RefinementError(f"{transition.name} is already restricted to fixed peers")
    senders = candidate_senders(protocol, transition)
    size = transition.quorum.size
    if len(senders) < size:
        raise RefinementError(
            f"{transition.name}: only {len(senders)} candidate senders for a "
            f"quorum of {size}; the transition can never fire"
        )
    replacements = []
    for combo in itertools.combinations(senders, size):
        peers = frozenset(combo)
        replacements.append(
            replace(
                transition,
                name=split_name(transition.name, peers),
                quorum_peers=peers,
                refined_from=transition.base_name,
                annotation=replace(transition.annotation, possible_senders=peers),
            )
        )
    return replacements


def quorum_split(
    protocol: Protocol,
    transition_names: Optional[Iterable[str]] = None,
    suffix: str = " [quorum-split]",
) -> Protocol:
    """Apply quorum-split to a protocol.

    Args:
        protocol: The protocol to refine.
        transition_names: Base names of the transitions to split; by default
            every eligible exact quorum transition is split.
        suffix: Appended to the protocol name of the refined model.

    Returns:
        A new protocol whose selected quorum transitions are replaced by one
        transition per sender combination.
    """
    if transition_names is None:
        selected = {transition.name for transition in splittable_quorum_transitions(protocol)}
    else:
        selected = set(transition_names)
        known = set(protocol.transition_names())
        unknown = selected - known
        if unknown:
            raise RefinementError(f"unknown transitions to split: {sorted(unknown)}")

    new_transitions: List[TransitionSpec] = []
    split_count = 0
    for transition in protocol.transitions:
        if transition.name in selected:
            new_transitions.extend(split_quorum_transition(protocol, transition))
            split_count += 1
        else:
            new_transitions.append(transition)

    return protocol.with_transitions(
        new_transitions,
        name=protocol.name + suffix,
        metadata_updates={
            "refinement": "quorum-split",
            "split_transitions": split_count,
        },
    )
