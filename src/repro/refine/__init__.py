"""Transition refinement strategies (Section III of the paper).

Quorum-split, reply-split and combined-split transform a protocol into an
equivalent one (same state graph, Definition 1) whose finer-grained
transitions let the static partial-order reduction compute smaller stubborn
sets.  The :mod:`refinement` module also provides an enumeration-based
validator for the equivalence claim (Theorem 2).
"""

from .combined import combined_split, describe_split_opportunities
from .quorum_split import (
    quorum_split,
    split_quorum_transition,
    splittable_quorum_transitions,
)
from .refinement import (
    RefinementError,
    RefinementReport,
    candidate_senders,
    compare_state_graphs,
    is_transition_refinement,
    shared_successor_engine,
    split_name,
)
from .reply_split import reply_split, split_reply_transition, splittable_reply_transitions

__all__ = [
    "RefinementError",
    "RefinementReport",
    "candidate_senders",
    "combined_split",
    "compare_state_graphs",
    "describe_split_opportunities",
    "is_transition_refinement",
    "quorum_split",
    "reply_split",
    "shared_successor_engine",
    "split_name",
    "split_quorum_transition",
    "split_reply_transition",
    "splittable_quorum_transitions",
    "splittable_reply_transitions",
]
