"""Reply-split: refine reply transitions per communicating peer (Section III-D).

A reply transition consumes messages and replies only to their senders
(Definition 4).  Splitting it per peer tells the static POR two things at
once: the split transition can only be *enabled by* that peer, and it can
only *enable* transitions of that peer — which is why reply-split yields
more reduction than plain quorum-split on protocols with request/reply
structure (e.g. the Paxos READ / READ_REPL exchange).

Following the paper's implementation note, only single-message reply
transitions are split (the common case: acknowledgements and replies to a
single request).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional

from ..mp.message import DRIVER
from ..mp.protocol import Protocol
from ..mp.transition import SendSpec, TransitionSpec
from .refinement import RefinementError, candidate_senders


def splittable_reply_transitions(protocol: Protocol) -> tuple:
    """Return the transitions eligible for reply-split.

    Eligible transitions are single-message transitions annotated as reply
    transitions, not already restricted to a fixed peer, and not triggered
    by the driver.
    """
    eligible = []
    for transition in protocol.transitions:
        if not transition.annotation.is_reply:
            continue
        if transition.is_quorum_transition:
            continue
        if transition.quorum_peers is not None:
            continue
        senders = candidate_senders(protocol, transition)
        if not senders or senders == (DRIVER,):
            continue
        eligible.append(transition)
    return tuple(eligible)


def _narrow_sends(transition: TransitionSpec, peer: str) -> tuple:
    """Pin reply sends of the split transition to the single peer."""
    narrowed = []
    for send in transition.annotation.sends:
        if send.to_senders_only and send.recipients is None:
            narrowed.append(SendSpec(mtype=send.mtype, recipients=frozenset({peer}),
                                     to_senders_only=True))
        else:
            narrowed.append(send)
    return tuple(narrowed)


def split_reply_transition(
    protocol: Protocol, transition: TransitionSpec
) -> List[TransitionSpec]:
    """Return the reply-split replacements of a single transition."""
    if not transition.annotation.is_reply:
        raise RefinementError(f"{transition.name} is not annotated as a reply transition")
    if transition.is_quorum_transition:
        raise RefinementError(
            f"{transition.name} is a quorum transition; reply-split supports "
            "single-message reply transitions only"
        )
    if transition.quorum_peers is not None:
        raise RefinementError(f"{transition.name} is already restricted to a fixed peer")
    senders = candidate_senders(protocol, transition)
    if not senders:
        raise RefinementError(f"{transition.name}: no candidate senders to split over")
    replacements = []
    for peer in senders:
        peers = frozenset({peer})
        replacements.append(
            replace(
                transition,
                name=f"{transition.name}_{peer}",
                quorum_peers=peers,
                refined_from=transition.base_name,
                annotation=replace(
                    transition.annotation,
                    possible_senders=peers,
                    sends=_narrow_sends(transition, peer),
                ),
            )
        )
    return replacements


def reply_split(
    protocol: Protocol,
    transition_names: Optional[Iterable[str]] = None,
    suffix: str = " [reply-split]",
) -> Protocol:
    """Apply reply-split to a protocol.

    Args:
        protocol: The protocol to refine.
        transition_names: Base names of the reply transitions to split; by
            default every eligible reply transition is split.
        suffix: Appended to the protocol name of the refined model.
    """
    if transition_names is None:
        selected = {transition.name for transition in splittable_reply_transitions(protocol)}
    else:
        selected = set(transition_names)
        known = set(protocol.transition_names())
        unknown = selected - known
        if unknown:
            raise RefinementError(f"unknown transitions to split: {sorted(unknown)}")

    new_transitions: List[TransitionSpec] = []
    split_count = 0
    for transition in protocol.transitions:
        if transition.name in selected:
            new_transitions.extend(split_reply_transition(protocol, transition))
            split_count += 1
        else:
            new_transitions.append(transition)

    return protocol.with_transitions(
        new_transitions,
        name=protocol.name + suffix,
        metadata_updates={
            "refinement": "reply-split",
            "split_transitions": split_count,
        },
    )
