"""Combined-split: reply-split plus quorum-split (Table II's last column)."""

from __future__ import annotations

from typing import Iterable, Optional

from ..mp.protocol import Protocol
from .quorum_split import quorum_split, splittable_quorum_transitions
from .reply_split import reply_split, splittable_reply_transitions


def combined_split(
    protocol: Protocol,
    quorum_transition_names: Optional[Iterable[str]] = None,
    reply_transition_names: Optional[Iterable[str]] = None,
    suffix: str = " [combined-split]",
) -> Protocol:
    """Apply reply-split to reply transitions and quorum-split to the rest.

    The paper's combined-split refines *all* of a protocol's reply
    transitions and non-reply quorum transitions; this function does the
    same by default and allows narrowing either side explicitly.
    """
    refined = reply_split(protocol, transition_names=reply_transition_names, suffix="")
    refined = quorum_split(refined, transition_names=quorum_transition_names, suffix="")
    return refined.with_transitions(
        refined.transitions,
        name=protocol.name + suffix,
        metadata_updates={"refinement": "combined-split"},
    )


def describe_split_opportunities(protocol: Protocol) -> str:
    """Summarise which transitions each strategy would refine.

    Useful when modelling a new protocol: it lists the reply transitions and
    exact quorum transitions the strategies would split, so missing
    annotations (``is_reply``, ``possible_senders``) are easy to spot.
    """
    reply_candidates = splittable_reply_transitions(protocol)
    quorum_candidates = splittable_quorum_transitions(protocol)
    lines = [f"split opportunities for {protocol.name}:"]
    lines.append("  reply-split candidates:")
    if reply_candidates:
        for transition in reply_candidates:
            lines.append(f"    {transition.name} @ {transition.process_id}")
    else:
        lines.append("    (none)")
    lines.append("  quorum-split candidates:")
    if quorum_candidates:
        for transition in quorum_candidates:
            lines.append(
                f"    {transition.name} @ {transition.process_id} "
                f"(quorum size {transition.quorum.size})"
            )
    else:
        lines.append("    (none)")
    return "\n".join(lines)
