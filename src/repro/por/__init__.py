"""Partial-order reduction algorithms.

Static reduction (stubborn sets over a pre-computed, state-unconditional
dependence relation — the MP-LPOR analogue), the seed-transition heuristics
it is parameterised by, and a stateless dynamic POR used as the baseline of
Table I.
"""

from .dependence import DependenceRelation, are_dependent, can_enable
from .dpor import DporSearch
from .seed import (
    SeedHeuristic,
    first_enabled_seed,
    make_fewest_dependents_seed,
    make_seed_heuristic,
    opposite_transaction_seed,
    transaction_seed,
)
from .stubborn import StubbornSetProvider

__all__ = [
    "DependenceRelation",
    "DporSearch",
    "SeedHeuristic",
    "StubbornSetProvider",
    "are_dependent",
    "can_enable",
    "first_enabled_seed",
    "make_fewest_dependents_seed",
    "make_seed_heuristic",
    "opposite_transaction_seed",
    "transaction_seed",
]
