"""Seed-transition heuristics for the stubborn-set construction.

The performance of a stubborn-set POR strongly depends on the *seed* (or
start) transition — the first transition put into the set (Section III-A).
The paper uses a hand-tuned "opposite transaction" heuristic: prefer
transitions that start a new protocol instance, or at least do not finish an
ongoing one, because executing such a transition "delays" the decision of
which instance a process pursues.  We implement that heuristic plus the
alternatives it is compared against in the discussion of Section V-B.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from ..mp.transition import Execution

#: A heuristic orders the candidate executions; the first one seeds the set.
SeedHeuristic = Callable[[Sequence[Execution]], Execution]


def _stable_key(execution: Execution) -> Tuple[str, str]:
    """Deterministic tie-breaking key."""
    return (execution.transition.name, execution.transition.process_id)


def opposite_transaction_seed(enabled: Sequence[Execution]) -> Execution:
    """The paper's heuristic: prefer instance-starting transitions.

    Ranking (best first): transitions annotated ``starts_instance``, then
    transitions that neither start nor finish an instance, then
    instance-finishing transitions; higher ``priority`` wins within a rank.
    """

    def rank(execution: Execution) -> Tuple[int, int, Tuple[str, str]]:
        annotation = execution.transition.annotation
        if annotation.starts_instance:
            tier = 0
        elif not annotation.finishes_instance:
            tier = 1
        else:
            tier = 2
        return (tier, -annotation.priority, _stable_key(execution))

    return min(enabled, key=rank)


def transaction_seed(enabled: Sequence[Execution]) -> Execution:
    """The opposite policy (the transaction heuristic of [5]): prefer
    transitions that finish an ongoing instance."""

    def rank(execution: Execution) -> Tuple[int, int, Tuple[str, str]]:
        annotation = execution.transition.annotation
        if annotation.finishes_instance:
            tier = 0
        elif not annotation.starts_instance:
            tier = 1
        else:
            tier = 2
        return (tier, -annotation.priority, _stable_key(execution))

    return min(enabled, key=rank)


def first_enabled_seed(enabled: Sequence[Execution]) -> Execution:
    """Baseline: pick the first enabled execution in deterministic order."""
    return min(enabled, key=_stable_key)


def make_fewest_dependents_seed(dependence) -> SeedHeuristic:
    """Prefer the transition with the fewest statically dependent transitions.

    Args:
        dependence: A :class:`repro.por.dependence.DependenceRelation`.
    """

    def heuristic(enabled: Sequence[Execution]) -> Execution:
        return min(
            enabled,
            key=lambda execution: (
                dependence.dependence_degree(execution.transition.name),
                _stable_key(execution),
            ),
        )

    return heuristic


_NAMED_HEURISTICS = {
    "opposite-transaction": opposite_transaction_seed,
    "transaction": transaction_seed,
    "first": first_enabled_seed,
}


def make_seed_heuristic(name: str, dependence=None) -> SeedHeuristic:
    """Return a seed heuristic by name.

    Args:
        name: One of ``"opposite-transaction"``, ``"transaction"``,
            ``"first"`` or ``"fewest-dependents"``.
        dependence: Required for ``"fewest-dependents"``.
    """
    if name == "fewest-dependents":
        if dependence is None:
            raise ValueError("the fewest-dependents heuristic needs a dependence relation")
        return make_fewest_dependents_seed(dependence)
    try:
        return _NAMED_HEURISTICS[name]
    except KeyError:
        raise ValueError(
            f"unknown seed heuristic {name!r}; expected one of "
            f"{sorted(_NAMED_HEURISTICS) + ['fewest-dependents']}"
        ) from None
