"""Static partial-order reduction via stubborn sets (the LPOR analogue).

The provider below computes, for every expanded state, a *stubborn set* of
transitions whose enabled executions are the only ones explored.  Following
MP-LPOR (Section IV), the dependence information is pre-computed and
state-unconditional; the per-state work is a closure over table lookups plus
a cheap inspection of the pending messages.

Construction (weak stubborn-set closure, specialised to message passing):

1. Seed the set with one enabled transition chosen by the seed heuristic.
2. For every *enabled* transition in the set, add every transition that
   *interferes* with it — transitions of the same process and spec-read
   conflicts.  In the message-passing computation model transitions of
   different processes otherwise commute and cannot disable each other, so
   nothing else is needed for enabled members, and every enabled member is a
   valid key transition (its enabledness cannot be destroyed from outside).
3. For every *disabled* transition in the set, add a **necessary enabling
   set**: a set of transitions such that the disabled transition cannot
   become enabled before one of them fires.

   * With the NET optimisation (``use_net=True``, the LPOR-NET analogue) the
     set is computed per state: if the transition still lacks messages from
     some senders, only the enabler transitions of the *missing* senders are
     added.  This is exactly where transition refinement pays off — a
     quorum-split transition restricts the missing senders to its quorum
     peers, and a reply-split transition names the single peer that can feed
     it (Sections III-C and III-D).
   * Without NET the handling is coarse: all statically possible enablers
     (ignoring refinement restrictions) plus the interfering transitions are
     added, mirroring the paper's remark that LPOR and LPOR-NET coincide
     when no quorum information is available.
   * If the transition is disabled even though enough messages are pending
     (its guard rejects them), the per-state reasoning does not apply and
     the coarse handling is used for that transition.
4. Apply the visibility condition and the cycle (stack) proviso; if either
   fails, fall back to full expansion for this state, which keeps invariant
   checking sound.

   The proviso implemented here is the *strong* stack proviso: a strictly
   reduced set is only kept when **no** explored execution leads back to a
   state on the current DFS stack.  Ignoring-prevention argument: suppose a
   transition ``t`` enabled somewhere on a cycle were ignored forever.  Every
   state of the cycle would then have been expanded with a strict subset, so
   each one had a successor off the stack at the time it was expanded — but
   the state of the cycle that the DFS *pops first* has, at pop time, all of
   its cycle-successors already on the stack (they are its DFS ancestors),
   which the proviso forbids: that state was fully expanded, contradicting
   the assumption.  Hence along every cycle at least one state is fully
   expanded and every enabled transition is eventually explored.  On acyclic
   state graphs no successor can sit on the stack, so the strong proviso
   degenerates to a no-op and reduction is exactly what the weak proviso
   gave; on cyclic graphs (e.g. the crash-recovery protocols) it is what
   makes serial SPOR sound.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..checker.search import ReductionContext
from ..mp.protocol import Protocol
from ..mp.state import GlobalState
from ..mp.transition import Execution, TransitionSpec
from .dependence import DependenceRelation
from .seed import SeedHeuristic, opposite_transaction_seed


class StubbornSetProvider:
    """Computes stubborn sets for the DFS of :mod:`repro.checker.search`."""

    def __init__(
        self,
        protocol: Protocol,
        dependence: Optional[DependenceRelation] = None,
        seed_heuristic: Optional[SeedHeuristic] = None,
        use_net: bool = True,
    ) -> None:
        self.protocol = protocol
        self.dependence = dependence or DependenceRelation.precompute(protocol)
        self.seed_heuristic = seed_heuristic or opposite_transaction_seed
        self.use_net = use_net
        self._specs = {transition.name: transition for transition in protocol.transitions}
        self._visible = {
            transition.name: transition.annotation.visible
            for transition in protocol.transitions
        }
        self._all_names = frozenset(self._specs)
        #: How many times the provider returned a strict subset / fell back.
        self.reduced_states = 0
        self.fallback_states = 0

    # ------------------------------------------------------------------ #
    # Necessary enabling sets
    # ------------------------------------------------------------------ #
    def _coarse_disabled_additions(self, name: str) -> Tuple[str, ...]:
        """Conservative handling of a disabled member (the non-NET path)."""
        return (
            self.dependence.interferes_with(name)
            + self.dependence.coarse_enablers_of(name)
        )

    def _necessary_enabling_set(self, state: GlobalState, spec: TransitionSpec) -> Tuple[str, ...]:
        """Per-state necessary enabling set of a disabled transition.

        If the transition still lacks messages from some candidate senders,
        any path enabling it must first deliver a message from one of the
        missing senders, so the enabler transitions of those senders form a
        valid necessary enabling set.  Otherwise (enough messages are
        pending but the guard rejects them, or the sender set is unknown)
        the coarse handling is used.
        """
        if not self.use_net:
            return self._coarse_disabled_additions(spec.name)

        pending = state.network.pending_for(spec.process_id, mtype=spec.message_type)
        allowed = spec.effective_senders()
        if allowed is not None:
            pending = tuple(message for message in pending if message.sender in allowed)
        pending_senders = frozenset(message.sender for message in pending)

        if len(pending_senders) >= spec.quorum.size:
            # Enough distinct senders are already pending; the transition is
            # disabled for guard/content reasons the static tables cannot
            # explain, so fall back to the conservative handling.
            return self._coarse_disabled_additions(spec.name)

        if allowed is not None:
            missing = sorted(allowed - pending_senders)
            return self.dependence.enablers_from(spec.name, missing)
        # Sender set unknown: any process might provide the missing message.
        return self.dependence.necessary_enablers_of(spec.name)

    # ------------------------------------------------------------------ #
    # Closure
    # ------------------------------------------------------------------ #
    def _closure(self, state: GlobalState, seed_name: str, enabled_names: frozenset) -> frozenset:
        """Compute the stubborn set (as transition names) from a seed."""
        closure = {seed_name}
        queue = deque([seed_name])
        while queue:
            name = queue.popleft()
            if name in enabled_names:
                additions: Tuple[str, ...] = self.dependence.interferes_with(name)
            else:
                additions = self._necessary_enabling_set(state, self._specs[name])
            for addition in additions:
                if addition not in closure:
                    closure.add(addition)
                    queue.append(addition)
            if len(closure) == len(self._all_names):
                break
        return frozenset(closure)

    def stubborn_names(self, state: GlobalState, seed_name: str,
                       enabled_names: frozenset) -> frozenset:
        """Public wrapper around the closure, useful for tests and inspection."""
        return self._closure(state, seed_name, enabled_names)

    # ------------------------------------------------------------------ #
    # Reducer interface
    # ------------------------------------------------------------------ #
    def reduce(self, context: ReductionContext) -> Tuple[Execution, ...]:
        """Return the executions to explore from ``context.state``."""
        enabled = context.enabled
        if len(enabled) <= 1:
            return enabled

        by_name: Dict[str, List[Execution]] = {}
        for execution in enabled:
            by_name.setdefault(execution.transition.name, []).append(execution)
        enabled_names = frozenset(by_name)
        if len(enabled_names) == 1:
            # A single (possibly non-deterministic) transition: no reduction.
            return enabled

        seed = self.seed_heuristic(enabled)
        closure = self._closure(context.state, seed.transition.name, enabled_names)

        chosen_names = sorted(name for name in closure if name in by_name)
        if len(chosen_names) == len(enabled_names):
            self.fallback_states += 1
            return enabled

        reduced: List[Execution] = []
        for name in chosen_names:
            reduced.extend(by_name[name])

        # Visibility condition (ample-set condition C2): a strictly reduced
        # set must not contain property-visible transitions.
        if any(self._visible.get(name, False) for name in chosen_names):
            self.fallback_states += 1
            return enabled

        # Cycle (stack) proviso (condition C3): if any explored execution
        # closes a cycle back onto the current DFS stack, expand the state
        # fully.  This is the strong stack proviso — sound on cyclic state
        # graphs, not just acyclic ones; see the module docstring for the
        # ignoring-prevention argument.  On acyclic graphs no successor is
        # ever on the stack, so the check never fires and reduction counts
        # are unchanged.  ``context.successor`` is engine-backed and
        # memoised, so the states computed here are reused when the DFS
        # expands them.
        if any(context.on_stack(context.successor(execution)) for execution in reduced):
            self.fallback_states += 1
            return enabled

        self.reduced_states += 1
        return tuple(reduced)
