"""State-unconditional dependence relations for MP protocols.

MP-LPOR (Section IV) pre-computes a notion of independence that is *not* a
function of the system state; it is queried repeatedly during the search.
We reproduce that design: all relations are derived once per protocol from
the static transition annotations and the quorum-peer restrictions of
refined transitions, so the per-state stubborn-set construction performs
only table lookups.

Three relations are exposed:

* **interference** — transitions that do not commute with an *enabled*
  transition: transitions of the same process (they compete for the local
  state and the incoming channels) and transitions involved in a
  specification-read conflict (the footnote-7 ghost snapshots).  In the
  message-passing computation model, transitions of *different* processes
  always commute otherwise: they consume from disjoint channels and only
  add messages.
* **necessary enabling transitions (NET)** — transitions that may enable a
  given (currently disabled) transition by sending a message it consumes.
  This is where transition refinement pays off: a quorum-split transition
  can only be enabled by its quorum peers, and a reply-split transition
  names the single peer it talks to (Sections III-C and III-D).
* **dependence** — the symmetric union of interference and can-enable in
  either direction; this coarser relation drives the dynamic POR's
  backtrack-point insertion.

The relation deliberately errs on the side of dependence whenever an
annotation leaves senders or recipients unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..mp.protocol import Protocol
from ..mp.transition import SendSpec, TransitionSpec


def _send_recipients(
    transition: TransitionSpec, send: SendSpec
) -> Optional[FrozenSet[str]]:
    """Possible recipients of one declared send, or ``None`` if unknown.

    For reply sends (``to_senders_only``) the recipients are bounded by the
    senders the transition can consume from — the key fact exploited by
    reply-split (Definition 4 / Section III-D).
    """
    if send.recipients is not None:
        return send.recipients
    if send.to_senders_only:
        return transition.effective_senders()
    return None


def can_enable(
    sender_t: TransitionSpec,
    receiver_t: TransitionSpec,
    respect_peers: bool = True,
) -> bool:
    """True if ``sender_t`` may send a message that ``receiver_t`` consumes.

    The check is conservative: unknown recipient or sender sets are treated
    as "any process".

    Args:
        sender_t: The potentially enabling transition.
        receiver_t: The potentially enabled transition.
        respect_peers: If False, the quorum-peer / possible-sender
            restrictions of ``receiver_t`` are ignored; this yields the
            coarser relation used when the NET optimisation is disabled.
    """
    if sender_t.process_id == receiver_t.process_id:
        # Same-process interactions are covered by the interference rule.
        return False
    if respect_peers:
        allowed_senders = receiver_t.effective_senders()
        if allowed_senders is not None and sender_t.process_id not in allowed_senders:
            return False
    for send in sender_t.annotation.sends:
        if send.mtype != receiver_t.message_type:
            continue
        recipients = _send_recipients(sender_t, send)
        if recipients is None or receiver_t.process_id in recipients:
            return True
    return False


def spec_read_conflict(first: TransitionSpec, second: TransitionSpec) -> bool:
    """True if either transition ghost-reads the other's process state."""
    return (
        second.process_id in first.annotation.spec_reads
        or first.process_id in second.annotation.spec_reads
    )


def interferes(first: TransitionSpec, second: TransitionSpec) -> bool:
    """True if the two transitions do not commute when both are executable.

    In the message-passing model this happens only when they belong to the
    same process or when a specification read crosses their processes.
    """
    if first.process_id == second.process_id:
        return True
    return spec_read_conflict(first, second)


def are_dependent(first: TransitionSpec, second: TransitionSpec) -> bool:
    """Coarse symmetric dependence (interference or enabling either way)."""
    if interferes(first, second):
        return True
    return can_enable(first, second) or can_enable(second, first)


@dataclass(frozen=True)
class DependenceRelation:
    """Pre-computed dependence tables for one protocol.

    Attributes:
        interference: For each transition name, the names of transitions
            that do not commute with it (same process or spec-read conflict),
            excluding itself.
        enablers: For each transition name, the names of transitions that
            can enable it, honouring quorum-peer restrictions (the NET set).
        coarse_enablers: Like ``enablers`` but ignoring quorum-peer and
            possible-sender restrictions; used when NET is disabled.
        enables: For each transition name, the names of transitions it can
            enable (the forward direction of ``enablers``).
        enablers_by_sender: For each transition name, its enablers grouped by
            the process that executes them; the per-state necessary enabling
            sets of the stubborn-set construction are assembled from this.
        dependent_pairs: Symmetric set of dependent transition-name pairs
            (interference or enabling in either direction); used by DPOR.
    """

    interference: Dict[str, Tuple[str, ...]]
    enablers: Dict[str, Tuple[str, ...]]
    coarse_enablers: Dict[str, Tuple[str, ...]]
    enables: Dict[str, Tuple[str, ...]]
    enablers_by_sender: Dict[str, Dict[str, Tuple[str, ...]]]
    dependent_pairs: FrozenSet[Tuple[str, str]]

    @classmethod
    def precompute(cls, protocol: Protocol) -> "DependenceRelation":
        """Build all tables from the protocol's transition annotations."""
        transitions = protocol.transitions
        interference: Dict[str, list] = {t.name: [] for t in transitions}
        enablers: Dict[str, list] = {t.name: [] for t in transitions}
        coarse: Dict[str, list] = {t.name: [] for t in transitions}
        enables: Dict[str, list] = {t.name: [] for t in transitions}
        by_sender: Dict[str, Dict[str, list]] = {t.name: {} for t in transitions}
        dependent = set()

        for first in transitions:
            for second in transitions:
                if first.name == second.name:
                    continue
                if interferes(first, second):
                    interference[first.name].append(second.name)
                if can_enable(first, second, respect_peers=True):
                    enables[first.name].append(second.name)
                    enablers[second.name].append(first.name)
                    by_sender[second.name].setdefault(first.process_id, []).append(first.name)
                if can_enable(first, second, respect_peers=False):
                    coarse[second.name].append(first.name)
                if first.name < second.name and are_dependent(first, second):
                    dependent.add((first.name, second.name))

        return cls(
            interference={name: tuple(values) for name, values in interference.items()},
            enablers={name: tuple(values) for name, values in enablers.items()},
            coarse_enablers={name: tuple(values) for name, values in coarse.items()},
            enables={name: tuple(values) for name, values in enables.items()},
            enablers_by_sender={
                name: {pid: tuple(values) for pid, values in senders.items()}
                for name, senders in by_sender.items()
            },
            dependent_pairs=frozenset(dependent),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def interferes_with(self, name: str) -> Tuple[str, ...]:
        """Transitions that do not commute with ``name`` (excluding itself)."""
        return self.interference.get(name, ())

    def necessary_enablers_of(self, name: str) -> Tuple[str, ...]:
        """Transitions that can enable ``name`` (the NET set)."""
        return self.enablers.get(name, ())

    def coarse_enablers_of(self, name: str) -> Tuple[str, ...]:
        """Potential enablers of ``name`` ignoring refinement restrictions."""
        return self.coarse_enablers.get(name, ())

    def enablers_from(self, name: str, senders) -> Tuple[str, ...]:
        """Enablers of ``name`` executed by one of the given sender processes.

        Used to build per-state necessary enabling sets: when a transition is
        disabled because messages from specific processes are missing, only
        transitions of those processes need to enter the stubborn set.
        """
        by_sender = self.enablers_by_sender.get(name, {})
        result: list = []
        for sender in senders:
            result.extend(by_sender.get(sender, ()))
        return tuple(result)

    def enabled_by(self, name: str) -> Tuple[str, ...]:
        """Transitions that ``name`` can enable."""
        return self.enables.get(name, ())

    def dependent(self, first: str, second: str) -> bool:
        """Coarse dependence test (used by the dynamic POR)."""
        if first == second:
            return True
        key = (first, second) if first < second else (second, first)
        return key in self.dependent_pairs

    def independent(self, first: str, second: str) -> bool:
        """True if the two named transitions are independent."""
        return not self.dependent(first, second)

    def dependents_of(self, name: str) -> Tuple[str, ...]:
        """All transition names dependent with ``name`` (excluding itself)."""
        result = []
        for first, second in self.dependent_pairs:
            if first == name:
                result.append(second)
            elif second == name:
                result.append(first)
        return tuple(sorted(result))

    def dependence_degree(self, name: str) -> int:
        """Number of transitions dependent with ``name``; a seed heuristic input."""
        return len(self.dependents_of(name))
