"""Stateless dynamic partial-order reduction (the Basset DPOR baseline).

The paper's Table I baseline runs Basset's dynamic POR [13] (Flanagan and
Godefroid) over single-message models with stateless search, because DPOR is
unsound with stateful exploration (Section III-A).  This module implements a
persistent-set style DPOR in that spirit:

* the search keeps no visited-state store (it only breaks cycles on the
  current path), so states are revisited along different interleavings;
* backtrack points are added at the deepest earlier stack entry whose
  executed transition is dependent with a currently enabled one;
* dependence between executions is taken from the same pre-computed,
  state-unconditional relation the static reduction uses.  A fully dynamic
  happens-before analysis would prune slightly more, so the reduction
  reported here is a conservative lower bound for DPOR — which only
  strengthens the paper's comparison, where DPOR on single-message models
  loses to quorum models with SPOR on large state spaces.

Backtracking is organised per process (the classical formulation); choosing
a process explores every enabled execution of that process in the state,
which keeps the exploration exhaustive when a process has several enabled
(non-deterministic) executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..checker.counterexample import Counterexample, Step
from ..checker.property import Invariant
from ..checker.result import SearchStatistics
from ..checker.search import SearchConfig, SearchOutcome
from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine
from ..mp.state import GlobalState
from ..mp.transition import Execution
from .dependence import DependenceRelation


class _StopSearch(Exception):
    """Internal: unwind the recursion once a counterexample was found."""


@dataclass
class _Entry:
    """One entry of the DPOR stack."""

    state: GlobalState
    enabled: Tuple[Execution, ...]
    enabled_processes: frozenset
    backtrack: Set[str] = field(default_factory=set)
    done: Set[str] = field(default_factory=set)
    chosen: Optional[Execution] = None


class DporSearch:
    """Stateless search with dynamic backtrack-point insertion."""

    def __init__(
        self,
        protocol: Protocol,
        config: Optional[SearchConfig] = None,
        dependence: Optional[DependenceRelation] = None,
        engine: Optional[SuccessorEngine] = None,
    ) -> None:
        self.protocol = protocol
        self.config = config or SearchConfig(stateful=False)
        self.dependence = dependence or DependenceRelation.precompute(protocol)
        if engine is not None and engine.protocol is not protocol:
            raise ValueError("successor engine was built for a different protocol")
        # Stateless search revisits states along every interleaving, so the
        # interned-state engine with its enabled/successor caches is what
        # keeps the per-visit cost at a few dictionary lookups.  The config
        # may bound the caches (LRU) for instances whose reachable set is
        # too large to retain in full.
        self.engine = engine or SuccessorEngine(
            protocol, max_cache_entries=self.config.engine_cache_capacity
        )
        self._stack: List[_Entry] = []
        self._path_states: Set[GlobalState] = set()
        self._statistics = SearchStatistics()
        self._invariant: Optional[Invariant] = None
        self._observer: Optional[Observer] = None
        self._counterexample: Optional[Counterexample] = None
        self._complete = True
        self._start_time = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, invariant: Invariant,
            observer: Optional[Observer] = None,
            telemetry=None) -> SearchOutcome:
        """Explore the protocol and check ``invariant`` in every visited state.

        The optional ``observer`` receives periodic ``progress`` ticks
        (every :data:`~repro.engine.events.PROGRESS_INTERVAL` expanded
        states) plus ``violation-found`` events.  The optional
        ``telemetry`` (a :class:`~repro.obs.telemetry.RunTelemetry`)
        receives end-of-run reduction counters.
        """
        self._invariant = invariant
        self._observer = observer
        self._statistics = SearchStatistics()
        self._counterexample = None
        self._complete = True
        self._stack = []
        self._path_states = set()
        self._start_time = time.perf_counter()

        initial = self.engine.initial_state()
        self._statistics.states_visited = 1
        verified = True
        try:
            if not invariant.holds_in(initial, self.protocol):
                verified = False
                self._counterexample = Counterexample(
                    initial_state=initial, steps=(), property_name=invariant.name
                )
                emit(self._observer, "violation-found",
                     states_visited=1, depth=0)
                if self.config.stop_at_first_violation:
                    raise _StopSearch
            self._path_states.add(initial)
            self._explore(initial)
        except _StopSearch:
            verified = False
            self._complete = False

        if self._counterexample is not None:
            verified = False
        self._statistics.elapsed_seconds = time.perf_counter() - self._start_time
        if telemetry is not None:
            telemetry.record_reduction(self._statistics)
        return SearchOutcome(
            verified=verified,
            complete=self._complete and verified,
            counterexample=self._counterexample,
            statistics=self._statistics,
        )

    # ------------------------------------------------------------------ #
    # Core recursion
    # ------------------------------------------------------------------ #
    def _dependent(self, first: Execution, second: Execution) -> bool:
        return self.dependence.dependent(first.transition.name, second.transition.name)

    def _out_of_budget(self) -> bool:
        if self.config.max_seconds is not None:
            if time.perf_counter() - self._start_time > self.config.max_seconds:
                return True
        if self.config.max_states is not None:
            if self._statistics.states_visited >= self.config.max_states:
                return True
        return False

    def _record_violation(self, final_execution: Execution, final_state: GlobalState) -> None:
        steps = [
            Step(execution=entry.chosen, state=self._stack[index + 1].state)
            for index, entry in enumerate(self._stack[:-1])
            if entry.chosen is not None
        ]
        # The loop above pairs each entry's chosen execution with the state of
        # the *next* stack entry; the final executed step is appended here.
        steps.append(Step(execution=final_execution, state=final_state))
        self._counterexample = Counterexample(
            initial_state=self._stack[0].state if self._stack else final_state,
            steps=tuple(steps),
            property_name=self._invariant.name if self._invariant else "invariant",
        )
        emit(self._observer, "violation-found",
             states_visited=self._statistics.states_visited,
             depth=len(self._counterexample.steps))

    def _explore(self, state: GlobalState, depth: int = 0) -> None:
        if self._out_of_budget():
            self._complete = False
            return
        if self.config.max_depth is not None and depth >= self.config.max_depth:
            self._complete = False
            return

        enabled = self.engine.enabled(state)
        self._statistics.enabled_set_computations += 1
        if not enabled:
            return

        # Dynamic backtrack-point insertion: every enabled execution that is
        # dependent with an earlier executed transition forces a backtrack
        # point at the deepest such stack entry.
        for execution in enabled:
            process = execution.process_id
            for entry in reversed(self._stack):
                if entry.chosen is None:
                    continue
                if entry.chosen.process_id == process:
                    # Same-process ordering is already explored in program order.
                    break
                if self._dependent(entry.chosen, execution):
                    if process in entry.enabled_processes:
                        entry.backtrack.add(process)
                    else:
                        entry.backtrack |= set(entry.enabled_processes)
                    break

        entry = _Entry(
            state=state,
            enabled=enabled,
            enabled_processes=frozenset(execution.process_id for execution in enabled),
        )
        entry.backtrack.add(sorted(entry.enabled_processes)[0])
        self._stack.append(entry)
        try:
            while True:
                candidates = sorted(entry.backtrack - entry.done)
                if not candidates:
                    break
                process = candidates[0]
                entry.done.add(process)
                for execution in entry.enabled:
                    if execution.process_id != process:
                        continue
                    entry.chosen = execution
                    successor = self.engine.successor(state, execution)
                    self._statistics.transitions_executed += 1
                    self._statistics.states_visited += 1
                    self._statistics.max_depth = max(self._statistics.max_depth, depth + 1)
                    if (self._observer is not None
                            and self._statistics.states_visited % PROGRESS_INTERVAL == 0):
                        emit(self._observer, "progress",
                             states_visited=self._statistics.states_visited,
                             transitions_executed=self._statistics.transitions_executed)

                    if not self._invariant.holds_in(successor, self.protocol):
                        self._record_violation(execution, successor)
                        if self.config.stop_at_first_violation:
                            raise _StopSearch

                    if successor in self._path_states:
                        # Cycle on the current path: do not recurse.
                        self._statistics.revisits += 1
                        continue
                    self._path_states.add(successor)
                    try:
                        self._explore(successor, depth + 1)
                    finally:
                        self._path_states.discard(successor)
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------ #
    @property
    def statistics(self) -> SearchStatistics:
        """Statistics of the last run."""
        return self._statistics
