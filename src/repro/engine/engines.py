"""Concrete engines: thin adapters from :class:`CheckPlan` to the searches.

Each engine binds one execution backend to the search shapes, reductions,
stores and worker counts it genuinely supports, declared in a
:class:`~repro.engine.capabilities.Capabilities` descriptor.  The adapters
contain no policy — validation lives in the registry's plan resolution, and
the actual exploration in :mod:`repro.checker.search`,
:mod:`repro.parallel` and :mod:`repro.por`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..checker.property import Invariant
from ..checker.search import (
    Reducer,
    SearchOutcome,
    bfs_search,
    dfs_search,
    ndfs_search,
)
from ..mp.protocol import Protocol
from .capabilities import Capabilities
from .events import Observer
from .plan import CheckPlan, UnsupportedPlanError

#: Store kinds a genuinely stateful engine can use.
_STATEFUL_STORES = ("full", "fingerprint", "sharded-fingerprint")


def _reject_cyclic_worksteal_reduction(protocol: Protocol, plan: CheckPlan) -> None:
    """Refuse stubborn-set reduction on protocols with cyclic state graphs.

    The serial cycle proviso (por/stubborn.py) is a property of one DFS
    stack: on any cycle of the reduced graph, the first state popped saw a
    cycle successor still on its stack and expanded fully.  The
    work-stealing search has no such stack — a stolen frame's ancestor
    fingerprints cover only its own access path, and a cycle whose states
    are claimed by *different* workers is on no worker's path, so the
    ignoring problem could silently drop behaviours.  Protocols whose
    builders declare ``cyclic_state_graph=True`` in their metadata are
    therefore rejected (no silent unsoundness); unreduced work-stealing
    exploration is fine on cycles — the claim table deduplicates globally —
    which is exactly the alternative raised here.
    """
    if plan.reduction not in ("spor", "spor-net"):
        return
    if not protocol.metadata.get("cyclic_state_graph"):
        return
    raise UnsupportedPlanError(
        "reduction",
        plan.reduction,
        f"protocol {protocol.name!r} declares a cyclic state graph "
        "(metadata cyclic_state_graph=True), and the work-stealing DFS "
        "cannot enforce the stubborn-set ignoring-prevention proviso "
        "across workers (a cycle claimed by several workers is on no "
        "worker's stack); run the reduction serially (workers=1) or "
        "explore unreduced in parallel; nearest supported alternative: "
        "reduction='none'",
        alternative=replace(plan, reduction="none"),
    )


def make_reducer(protocol: Protocol, plan: CheckPlan) -> Optional[Reducer]:
    """Build the stubborn-set reducer a plan asks for (None when unreduced).

    DPOR is not a reducer in this sense — it is a whole search discipline —
    so ``reduction="dpor"`` also returns None; the DPOR engine drives
    :class:`repro.por.dpor.DporSearch` directly.
    """
    if plan.reduction not in ("spor", "spor-net"):
        return None
    # Imported lazily to keep the layering acyclic (por depends on mp only).
    from ..por.dependence import DependenceRelation
    from ..por.seed import make_seed_heuristic
    from ..por.stubborn import StubbornSetProvider

    dependence = DependenceRelation.precompute(protocol)
    heuristic = make_seed_heuristic(plan.seed_heuristic)
    provider = StubbornSetProvider(
        protocol=protocol,
        dependence=dependence,
        seed_heuristic=heuristic,
        use_net=plan.reduction == "spor-net",
    )
    return provider.reduce


class Engine:
    """Interface of a registered engine."""

    #: Registry key; also the ``engine`` column of result records.
    name: str = ""
    #: One-line description shown by ``python -m repro engines``.
    description: str = ""
    #: Declarative support matrix consulted by plan resolution.
    capabilities: Capabilities

    def run(
        self,
        protocol: Protocol,
        invariant: Invariant,
        plan: CheckPlan,
        observer: Optional[Observer] = None,
        telemetry=None,
    ) -> SearchOutcome:
        """Execute ``plan`` (already validated against ``capabilities``).

        ``telemetry`` is an optional
        :class:`~repro.obs.telemetry.RunTelemetry`; engines forward it to
        their search so phase spans and engine-specific metrics (store
        occupancy, memo behaviour, worker counters) are recorded.  ``None``
        costs nothing.
        """
        raise NotImplementedError


class SerialDfsEngine(Engine):
    """Single-process depth-first search, stateful or stateless, with or
    without a stubborn-set reduction."""

    name = "serial-dfs"
    description = "serial DFS; supports the stubborn-set reductions and stateless mode"
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none", "spor", "spor-net"),
        backends=("serial",),
        stores=("full", "fingerprint", "sharded-fingerprint", "none"),
        statefulness=(True, False),
        min_workers=1,
        max_workers=1,
        notes={
            "workers": "the serial DFS runs in-process; request the "
            "worksteal backend (or backend='auto') for workers > 1",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        return dfs_search(
            protocol,
            invariant,
            plan.search_config(),
            reducer=make_reducer(protocol, plan),
            observer=observer,
            telemetry=telemetry,
        )


class SerialBfsEngine(Engine):
    """Single-process breadth-first search (shortest counterexamples)."""

    name = "serial-bfs"
    description = "serial BFS; stateful only, finds shortest counterexamples"
    capabilities = Capabilities(
        shapes=("bfs",),
        reductions=("none",),
        backends=("serial",),
        stores=_STATEFUL_STORES,
        statefulness=(True,),
        min_workers=1,
        max_workers=1,
        notes={
            "reduction": "the stubborn-set cycle proviso needs a DFS stack, "
            "so breadth-first search runs unreduced",
            "stateful": "breadth-first search deduplicates per level and is "
            "inherently stateful",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        return bfs_search(
            protocol, invariant, plan.search_config(), observer=observer,
            telemetry=telemetry
        )


class FrontierBfsEngine(Engine):
    """Level-synchronous frontier-parallel BFS (PR 2): shard-owning workers,
    visited counts exactly equal to serial BFS."""

    name = "frontier-bfs"
    description = "frontier-parallel BFS; shard-owning workers, serial-exact counts"
    capabilities = Capabilities(
        shapes=("bfs",),
        reductions=("none",),
        backends=("frontier",),
        stores=_STATEFUL_STORES,
        statefulness=(True,),
        min_workers=2,
        max_workers=None,
        requirements=("fork",),
        notes={
            "reduction": "the stubborn-set cycle proviso needs a DFS stack, "
            "so breadth-first search runs unreduced",
            "workers": "one worker has no frontier to share; backend='auto' "
            "picks the serial BFS instead",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily: repro.parallel builds on the checker package.
        from ..parallel.bfs import parallel_bfs_search

        return parallel_bfs_search(
            protocol,
            invariant,
            plan.search_config(),
            workers=plan.workers,
            observer=observer,
            telemetry=telemetry,
        )


class WorkstealDfsEngine(Engine):
    """Work-stealing parallel DFS (PR 3): per-worker deques, a lock-striped
    shared claim table, subtree donation."""

    name = "worksteal-dfs"
    description = ("work-stealing parallel DFS; drives the stubborn-set "
                   "reductions (dedup is fingerprint-based for every store)")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none", "spor", "spor-net"),
        backends=("worksteal",),
        stores=_STATEFUL_STORES,
        statefulness=(True,),
        min_workers=2,
        max_workers=None,
        requirements=("fork",),
        notes={
            "store": "the shared claim table arbitrating worker expansions "
            "is fingerprint-based regardless of the store kind (the exact "
            "store has no shared-memory analogue), so store='full' keeps "
            "the legacy semantics but carries the standard bit-state "
            "collision trade-off; run workers=1 for exact-store dedup",
            "stateful": "the work-stealing DFS deduplicates via a shared "
            "claim table, which has no stateless mode; run stateless "
            "searches with workers=1",
            "reduction": "dynamic POR mutates backtrack sets up the serial "
            "DFS stack, so its subtrees cannot be donated to other workers; "
            "stubborn-set reductions are additionally refused on protocols "
            "declaring cyclic_state_graph=True (the cross-worker ignoring "
            "problem) — explore those unreduced or serially",
            "workers": "one worker has nothing to steal from; backend='auto' "
            "picks the serial DFS instead",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        _reject_cyclic_worksteal_reduction(protocol, plan)
        # Imported lazily: repro.parallel builds on the checker package.
        from ..parallel.dfs import parallel_dfs_search

        return parallel_dfs_search(
            protocol,
            invariant,
            plan.search_config(),
            workers=plan.workers,
            reducer=make_reducer(protocol, plan),
            observer=observer,
            telemetry=telemetry,
        )


#: Shared phrasing for the fast engines' successor-axis note.
_FAST_NOTE = (
    "the packed fast path is an explicit opt-in (successors='fast'); "
    "verdicts and visited counts are identical to the object engine"
)


class FastSerialDfsEngine(Engine):
    """Packed-state serial DFS (the table-compiled fast path)."""

    name = "serial-dfs-fast"
    description = ("packed serial DFS; table-compiled transitions, "
                   "object-identical counts, several-fold faster per state")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none", "spor", "spor-net"),
        backends=("serial",),
        stores=("full", "fingerprint", "sharded-fingerprint", "none"),
        statefulness=(True, False),
        successor_modes=("fast",),
        min_workers=1,
        max_workers=1,
        notes={
            "successors": _FAST_NOTE,
            "workers": "the packed serial DFS runs in-process; request the "
            "worksteal backend (or backend='auto') for workers > 1",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily: repro.fastpath builds on the checker package.
        from ..fastpath.search import fast_dfs_search

        return fast_dfs_search(
            protocol,
            invariant,
            plan.search_config(),
            reducer=make_reducer(protocol, plan),
            observer=observer,
            telemetry=telemetry,
        )


class FastSerialBfsEngine(Engine):
    """Packed-state serial BFS (shortest counterexamples, fast path)."""

    name = "serial-bfs-fast"
    description = "packed serial BFS; stateful only, shortest counterexamples"
    capabilities = Capabilities(
        shapes=("bfs",),
        reductions=("none",),
        backends=("serial",),
        stores=_STATEFUL_STORES,
        statefulness=(True,),
        successor_modes=("fast",),
        min_workers=1,
        max_workers=1,
        notes={
            "successors": _FAST_NOTE,
            "reduction": "the stubborn-set cycle proviso needs a DFS stack, "
            "so breadth-first search runs unreduced",
            "stateful": "breadth-first search deduplicates per level and is "
            "inherently stateful",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        from ..fastpath.search import fast_bfs_search

        return fast_bfs_search(
            protocol, invariant, plan.search_config(), observer=observer,
            telemetry=telemetry
        )


class FastFrontierBfsEngine(Engine):
    """Fingerprint-native frontier-parallel BFS: level deltas are int
    4-tuples, packed children never cross a process boundary."""

    name = "frontier-bfs-fast"
    description = ("packed frontier-parallel BFS; int-tuple deltas, "
                   "fingerprint stores only, serial-exact counts")
    capabilities = Capabilities(
        shapes=("bfs",),
        reductions=("none",),
        backends=("frontier",),
        stores=("fingerprint", "sharded-fingerprint"),
        statefulness=(True,),
        successor_modes=("fast",),
        min_workers=2,
        max_workers=None,
        requirements=("fork",),
        notes={
            "successors": _FAST_NOTE,
            "store": "the packed frontier exchanges fingerprints, not "
            "states, so the exact 'full' store has no fast analogue; use "
            "the object frontier engine (successors='object') for "
            "exact-store level-parallel BFS",
            "reduction": "the stubborn-set cycle proviso needs a DFS stack, "
            "so breadth-first search runs unreduced",
            "workers": "one worker has no frontier to share; backend='auto' "
            "picks the packed serial BFS instead",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily: repro.fastpath builds on the checker package.
        from ..fastpath.parallel import fast_parallel_bfs_search

        return fast_parallel_bfs_search(
            protocol,
            invariant,
            plan.search_config(),
            workers=plan.workers,
            observer=observer,
            telemetry=telemetry,
        )


class FastWorkstealDfsEngine(Engine):
    """Packed work-stealing parallel DFS: stolen frames are pure
    int-tuples (path + pending indices), thieves replay paths through the
    warm memo tables."""

    name = "worksteal-dfs-fast"
    description = ("packed work-stealing DFS; int-tuple stolen frames, "
                   "drives the stubborn-set reductions")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none", "spor", "spor-net"),
        backends=("worksteal",),
        stores=_STATEFUL_STORES,
        statefulness=(True,),
        successor_modes=("fast",),
        min_workers=2,
        max_workers=None,
        requirements=("fork",),
        notes={
            "successors": _FAST_NOTE,
            "store": "the shared claim table arbitrating worker expansions "
            "is fingerprint-based regardless of the store kind (the exact "
            "store has no shared-memory analogue), so store='full' keeps "
            "the legacy semantics but carries the standard bit-state "
            "collision trade-off; run workers=1 for exact-store dedup",
            "stateful": "the work-stealing DFS deduplicates via a shared "
            "claim table, which has no stateless mode; run stateless "
            "searches with workers=1",
            "reduction": "dynamic POR mutates backtrack sets up the serial "
            "DFS stack, so its subtrees cannot be donated to other workers; "
            "stubborn-set reductions are additionally refused on protocols "
            "declaring cyclic_state_graph=True (the cross-worker ignoring "
            "problem) — explore those unreduced or serially",
            "workers": "one worker has nothing to steal from; backend='auto' "
            "picks the packed serial DFS instead",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        _reject_cyclic_worksteal_reduction(protocol, plan)
        # Imported lazily: repro.fastpath builds on the checker package.
        from ..fastpath.parallel import fast_parallel_dfs_search

        return fast_parallel_dfs_search(
            protocol,
            invariant,
            plan.search_config(),
            workers=plan.workers,
            reducer=make_reducer(protocol, plan),
            observer=observer,
            telemetry=telemetry,
        )


class DporEngine(Engine):
    """Stateless dynamic partial-order reduction (the Basset DPOR baseline)."""

    name = "dpor"
    description = "stateless dynamic POR; serial by construction"
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("dpor",),
        backends=("serial",),
        stores=("none",),
        statefulness=(False,),
        min_workers=1,
        max_workers=1,
        notes={
            "workers": "dynamic POR mutates backtrack sets up the serial "
            "DFS stack, so its subtrees cannot be donated to other workers; "
            "run DPOR with workers=1, or choose reduction='spor' for a "
            "work-stealing parallel search",
            "stateful": "DPOR is unsound with stateful exploration "
            "(Section III-A), so it always runs stateless",
        },
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily to keep the layering acyclic.
        from ..por.dpor import DporSearch

        search = DporSearch(protocol, config=plan.search_config())
        return search.run(invariant, observer=observer, telemetry=telemetry)


#: Shared phrasing for the nested-DFS engines' liveness constraints.
_NDFS_NOTES = {
    "goal": "nested DFS checks acceptance-cycle (liveness) properties; "
    "invariant plans are served by the plain DFS/BFS engines",
    "reduction": "the stubborn-set cycle proviso is defined over a single "
    "DFS stack, and the nested search walks the graph twice with different "
    "stacks, so liveness checking runs unreduced",
    "shape": "acceptance-cycle detection is a depth-first algorithm (the "
    "cyan stack *is* the candidate cycle)",
    "workers": "the blue/red phases share their colouring, which has no "
    "sound work-stealing split; nested DFS runs serially",
    "stateful": "the blue/red marks are the algorithm — nested DFS is "
    "stateful by construction",
}


class SerialNdfsEngine(Engine):
    """Nested-DFS acceptance-cycle detection over the object graph (CVWY
    with Schwoon–Esparza early detection); lasso counterexamples."""

    name = "serial-ndfs"
    description = ("serial nested DFS for liveness goals; lasso (stem + "
                   "cycle) counterexamples, unreduced")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none",),
        backends=("serial",),
        stores=_STATEFUL_STORES,
        goals=("liveness",),
        statefulness=(True,),
        min_workers=1,
        max_workers=1,
        notes=_NDFS_NOTES,
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        return ndfs_search(
            protocol, invariant, plan.search_config(), observer=observer,
            telemetry=telemetry
        )


class FastSerialNdfsEngine(Engine):
    """Fingerprint-native nested DFS over packed words; identical verdicts
    and trace lengths to the object-graph nested DFS."""

    name = "serial-ndfs-fast"
    description = ("packed nested DFS for liveness goals; blue/red marks "
                   "over packed keys, object-identical lassos")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none",),
        backends=("serial",),
        stores=_STATEFUL_STORES,
        goals=("liveness",),
        statefulness=(True,),
        successor_modes=("fast",),
        min_workers=1,
        max_workers=1,
        notes=dict(_NDFS_NOTES, successors=_FAST_NOTE),
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily: repro.fastpath builds on the checker package.
        from ..fastpath.search import fast_ndfs_search

        return fast_ndfs_search(
            protocol, invariant, plan.search_config(), observer=observer,
            telemetry=telemetry
        )


#: Shared capability notes of the swarm sampling engines.
_SWARM_NOTES = {
    "reduction": "partial-order reduction prunes interleavings assuming the "
    "survivors are explored exhaustively; under random sampling that "
    "assumption fails, so reduced sampling could miss violations plain "
    "sampling would find — swarm walks run unreduced",
    "store": "swarm keeps no exact visited-state store (its probabilistic "
    "filter is coverage telemetry, never a pruning structure), so plans are "
    "stateless with store='none'",
    "stateful": "walks revisit states freely by design; there is no "
    "stateful swarm mode",
    "shape": "a random walk is a depth-first probe; request shape='dfs'",
    "goal": "sampling can witness an invariant violation but cannot close "
    "an accepting cycle soundly; liveness goals need the nested-DFS engines",
    "backend": "the swarm backend is never chosen by backend='auto': "
    "sampling trades completeness for reach and must be an explicit opt-in",
}


class SwarmEngine(Engine):
    """Serial seeded random-walk sampler (swarm checking)."""

    name = "swarm"
    description = ("seeded random-walk sampler; conclusive on violations, "
                   "honestly inconclusive on exhausted walk budgets")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none",),
        backends=("swarm",),
        stores=("none",),
        statefulness=(False,),
        successor_modes=("object", "fast"),
        min_workers=1,
        max_workers=1,
        auto_backend=False,
        notes=dict(_SWARM_NOTES, workers="the serial walker runs "
                   "in-process; workers > 1 runs the parallel walker pool"),
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        # Imported lazily: repro.swarm builds on the checker package.
        from ..swarm.search import swarm_search

        return swarm_search(
            protocol,
            invariant,
            plan.search_config(),
            walks=plan.walks,
            walk_seed=plan.walk_seed,
            observer=observer,
            telemetry=telemetry,
        )


class ParallelSwarmEngine(Engine):
    """Parallel walker pool: the same walks, partitioned by index across a
    fork-based worker pool with a shared visited filter and early abort."""

    name = "swarm-parallel"
    description = ("parallel seeded walker pool; walk-index partition keeps "
                   "results identical to the serial walker")
    capabilities = Capabilities(
        shapes=("dfs",),
        reductions=("none",),
        backends=("swarm",),
        stores=("none",),
        statefulness=(False,),
        successor_modes=("object", "fast"),
        min_workers=2,
        max_workers=None,
        requirements=("fork",),
        auto_backend=False,
        notes=dict(_SWARM_NOTES, workers="walks are embarrassingly "
                   "parallel; per-walk seeding keeps the violating walk "
                   "index independent of the worker count"),
    )

    def run(self, protocol, invariant, plan, observer=None, telemetry=None):
        from ..swarm.search import parallel_swarm_search

        return parallel_swarm_search(
            protocol,
            invariant,
            plan.search_config(),
            walks=plan.walks,
            walk_seed=plan.walk_seed,
            workers=plan.workers,
            observer=observer,
            telemetry=telemetry,
        )


def builtin_engines():
    """Fresh instances of every built-in engine, registration order.

    The object-graph engines come first, the packed fast-path engines after
    them; the ``successors`` axis keeps the two families disjoint, so the
    order only affects which family's engine explains a near-miss.
    """
    return (
        SerialDfsEngine(),
        SerialBfsEngine(),
        FrontierBfsEngine(),
        WorkstealDfsEngine(),
        DporEngine(),
        SerialNdfsEngine(),
        FastSerialDfsEngine(),
        FastSerialBfsEngine(),
        FastFrontierBfsEngine(),
        FastWorkstealDfsEngine(),
        FastSerialNdfsEngine(),
        SwarmEngine(),
        ParallelSwarmEngine(),
    )
