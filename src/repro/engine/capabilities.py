"""Capability descriptors: which plan axes an engine supports, declaratively.

Every registered engine carries one :class:`Capabilities` record.  Plan
resolution never asks an engine "can you run this?" imperatively — it reads
the descriptor, so unsupported combinations produce one uniform
:class:`~repro.engine.plan.UnsupportedPlanError` naming the offending axis
(plus the engine's own explanation, when it declared one in ``notes``)
instead of scattered ``raise ValueError`` sites inside the engines.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from .plan import PLAN_AXES, CheckPlan

#: Requirement tokens an engine may declare beyond the plan axes.  Today
#: the only one is ``"fork"``: the multi-process backends inherit the
#: (unpicklable) protocol object and the parent's hash seed through the
#: ``fork`` start method, so they cannot run on spawn-only platforms.
REQUIREMENT_TOKENS = ("fork",)


def platform_requirements() -> FrozenSet[str]:
    """The requirement tokens the current platform satisfies.

    Consulted by plan resolution so that a plan needing an unavailable
    platform feature fails with a structured
    :class:`~repro.engine.plan.UnsupportedPlanError` (carrying a runnable
    serial alternative) at resolve time, instead of a raw error or a
    silent serial fallback deep inside the parallel search at run time.
    Tests monkeypatch this to simulate spawn-only platforms.
    """
    available = set()
    if "fork" in multiprocessing.get_all_start_methods():
        available.add("fork")
    return frozenset(available)

#: Weight of each axis when ranking "nearest" engines for diagnostics.  The
#: most identity-defining axes dominate: an engine matching the requested
#: reduction is closer than one merely matching the store kind, and a
#: mismatch on the explicitly requested worker count outranks statefulness
#: (suggesting ``workers=1`` to someone who asked for parallelism would be
#: the silent downgrade this layer exists to prevent).
_AXIS_WEIGHTS = {
    "goal": 64,
    "reduction": 32,
    "shape": 16,
    "workers": 8,
    "stateful": 4,
    "successors": 3,
    "backend": 2,
    "store": 1,
}


@dataclass(frozen=True)
class Capabilities:
    """The axis combinations one engine supports.

    Attributes:
        shapes / reductions / backends / stores: Supported values per axis.
        goals: Supported checking goals; the default keeps pre-existing
            engines invariant-only, the nested-DFS engines declare
            ``("liveness",)``.
        statefulness: Supported values of the ``stateful`` axis.
        successor_modes: Supported values of the ``successors`` axis; the
            default keeps pre-existing engines object-graph-only, the fast
            engines declare ``("fast",)``.  No engine family matches the
            other's plans, so the successor choice is never downgraded.
        min_workers / max_workers: Inclusive worker-count range
            (``max_workers=None`` means unbounded).
        requirements: Platform features the engine needs at run time
            (tokens from :data:`REQUIREMENT_TOKENS`, e.g. ``"fork"`` for
            the multi-process backends).  Checked by plan resolution
            against :func:`platform_requirements`, *after* axis matching:
            an engine whose axes match but whose requirements are unmet
            produces a structured error with a runnable serial
            alternative, never a silent downgrade.
        auto_backend: Whether ``backend="auto"`` may concretise to this
            engine.  The incomplete sampling engines declare ``False``:
            swapping an exhaustive search for random walks changes what a
            verdict *means*, so it must be an explicit opt-in
            (``backend="swarm"``), never an automatic choice.
        notes: Optional per-axis explanation of *why* a constraint exists;
            surfaced verbatim in the :class:`UnsupportedPlanError` message.
    """

    shapes: Tuple[str, ...]
    reductions: Tuple[str, ...]
    backends: Tuple[str, ...]
    stores: Tuple[str, ...]
    goals: Tuple[str, ...] = ("invariant",)
    statefulness: Tuple[bool, ...] = (True, False)
    successor_modes: Tuple[str, ...] = ("object",)
    min_workers: int = 1
    max_workers: Optional[int] = None
    requirements: Tuple[str, ...] = ()
    auto_backend: bool = True
    notes: Dict[str, str] = field(default_factory=dict)

    def missing_requirements(
        self, available: Optional[FrozenSet[str]] = None
    ) -> Tuple[str, ...]:
        """Declared requirement tokens the platform does not satisfy."""
        if available is None:
            available = platform_requirements()
        return tuple(token for token in self.requirements if token not in available)

    # ------------------------------------------------------------------ #
    # Axis checks
    # ------------------------------------------------------------------ #
    def _axis_supported(self, axis: str, plan: CheckPlan) -> bool:
        if axis == "shape":
            return plan.shape in self.shapes
        if axis == "reduction":
            return plan.reduction in self.reductions
        if axis == "backend":
            # "auto" is a wildcard: resolution concretises it to the chosen
            # engine's backend — except for engines that demand an explicit
            # opt-in (the incomplete sampling family).
            if plan.backend == "auto":
                return self.auto_backend
            return plan.backend in self.backends
        if axis == "store":
            return plan.store in self.stores
        if axis == "stateful":
            return plan.stateful in self.statefulness
        if axis == "successors":
            return plan.successors in self.successor_modes
        if axis == "goal":
            return plan.goal in self.goals
        if axis == "workers":
            if plan.workers < self.min_workers:
                return False
            return self.max_workers is None or plan.workers <= self.max_workers
        raise KeyError(f"unknown capability axis {axis!r}")

    def supports(self, plan: CheckPlan) -> bool:
        """True when every axis of ``plan`` falls inside this descriptor."""
        return all(self._axis_supported(axis, plan) for axis in PLAN_AXES)

    def violations(self, plan: CheckPlan) -> List[str]:
        """Unsupported axes of ``plan``, most identity-defining first."""
        return [axis for axis in PLAN_AXES if not self._axis_supported(axis, plan)]

    def match_score(self, plan: CheckPlan) -> int:
        """Weighted count of matching axes (for "nearest engine" ranking).

        An engine that refuses ``backend="auto"`` (explicit opt-in only) is
        pushed behind every auto-eligible engine when ranking an auto plan:
        suggesting "switch to sampling" to someone who asked for an
        exhaustive search would be the semantic downgrade this layer
        exists to prevent.
        """
        score = sum(
            _AXIS_WEIGHTS[axis]
            for axis in PLAN_AXES
            if self._axis_supported(axis, plan)
        )
        if plan.backend == "auto" and not self.auto_backend:
            score -= sum(_AXIS_WEIGHTS.values()) + 1
        return score

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def supported_description(self, axis: str) -> str:
        """Human-readable rendering of the supported range of one axis."""
        if axis == "workers":
            if self.max_workers is None:
                return f"workers >= {self.min_workers}"
            if self.max_workers == self.min_workers:
                return f"workers == {self.min_workers}"
            return f"{self.min_workers} <= workers <= {self.max_workers}"
        values = {
            "shape": self.shapes,
            "reduction": self.reductions,
            "backend": self.backends,
            "store": self.stores,
            "stateful": self.statefulness,
            "successors": self.successor_modes,
            "goal": self.goals,
        }[axis]
        return f"{axis} in {{{', '.join(map(repr, values))}}}"

    def nearest_plan(self, plan: CheckPlan) -> CheckPlan:
        """``plan`` with every unsupported axis replaced by a supported value.

        The result is guaranteed to satisfy :meth:`supports`, making it a
        concrete, runnable "nearest supported alternative" for diagnostics.
        """
        changes: Dict[str, object] = {}
        for axis in self.violations(plan):
            if axis == "workers":
                clamped = max(plan.workers, self.min_workers)
                if self.max_workers is not None:
                    clamped = min(clamped, self.max_workers)
                changes["workers"] = clamped
            elif axis == "shape":
                changes["shape"] = self.shapes[0]
            elif axis == "reduction":
                changes["reduction"] = self.reductions[0]
            elif axis == "backend":
                changes["backend"] = self.backends[0]
                if plan.backend == "swarm" and changes["backend"] != "swarm":
                    # The walk-budget axes only exist on the sampling
                    # backend; an exhaustive plan would reject them.
                    changes["walks"] = None
                    changes["walk_seed"] = None
            elif axis == "store":
                changes["store"] = self.stores[0]
                if plan.stateful and changes["store"] == "none":
                    # A "none"-only engine is stateless; follow it there.
                    changes["stateful"] = False
                elif not plan.stateful and changes["store"] != "none":
                    # A stateless plan's store is always "none", so a real
                    # store can only be reached by turning statefulness back
                    # on (CheckPlan.__post_init__ would otherwise revert the
                    # store fix and the "alternative" would equal the
                    # rejected plan).
                    changes["stateful"] = True
            elif axis == "stateful":
                changes["stateful"] = self.statefulness[0]
                if self.statefulness[0] and plan.store == "none":
                    # Re-entering statefulness needs a real store again.
                    changes["store"] = next(
                        kind for kind in self.stores if kind != "none"
                    )
            elif axis == "successors":
                changes["successors"] = self.successor_modes[0]
            elif axis == "goal":
                changes["goal"] = self.goals[0]
        return replace(plan, **changes)
