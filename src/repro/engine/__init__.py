"""Composable engine layer: plans, capabilities, registry, observers.

The public checking API decomposes a run into orthogonal axes — search
*shape* (dfs/bfs), partial-order *reduction* (none/spor/spor-net/dpor),
visited-state *store* (full/fingerprint/sharded-fingerprint), execution
*backend* (serial/frontier/worksteal) and a *workers* count — captured by a
:class:`CheckPlan`.  A registry of engines declares, per engine, which axis
combinations it supports (:class:`Capabilities`); :func:`resolve` maps a
plan to the engine implementing it, and :func:`run_plan` executes it while
feeding a uniform :class:`EngineEvent` stream to an optional
:class:`Observer`.

The legacy ``ModelChecker.run(Strategy.X)`` facade is a thin shim over this
layer (see :func:`repro.checker.checker.plan_for_strategy`).
"""

from .capabilities import REQUIREMENT_TOKENS, Capabilities, platform_requirements
from .engines import (
    DporEngine,
    Engine,
    FastFrontierBfsEngine,
    FastSerialBfsEngine,
    FastSerialDfsEngine,
    FastSerialNdfsEngine,
    FastWorkstealDfsEngine,
    FrontierBfsEngine,
    SerialBfsEngine,
    SerialDfsEngine,
    SerialNdfsEngine,
    WorkstealDfsEngine,
    builtin_engines,
    make_reducer,
)
from .events import (
    EVENT_KINDS,
    EVENT_VALIDATION_ENV,
    PROGRESS_INTERVAL,
    CollectingObserver,
    EngineEvent,
    MultiObserver,
    NullObserver,
    Observer,
    ProgressPrinter,
    emit,
    known_event_kinds,
    register_event_kind,
)
from .plan import (
    BACKENDS,
    GOALS,
    PLAN_AXES,
    REDUCTIONS,
    SHAPES,
    STORES,
    SUCCESSOR_MODES,
    CheckPlan,
    UnsupportedPlanError,
    strategy_label,
)
from .registry import EngineRegistry, default_registry, resolve, run_plan

__all__ = [
    "BACKENDS",
    "Capabilities",
    "CheckPlan",
    "CollectingObserver",
    "DporEngine",
    "EVENT_KINDS",
    "EVENT_VALIDATION_ENV",
    "Engine",
    "EngineEvent",
    "EngineRegistry",
    "FastFrontierBfsEngine",
    "FastSerialBfsEngine",
    "FastSerialDfsEngine",
    "FastSerialNdfsEngine",
    "FastWorkstealDfsEngine",
    "FrontierBfsEngine",
    "GOALS",
    "MultiObserver",
    "NullObserver",
    "Observer",
    "PLAN_AXES",
    "PROGRESS_INTERVAL",
    "ProgressPrinter",
    "REQUIREMENT_TOKENS",
    "platform_requirements",
    "REDUCTIONS",
    "SHAPES",
    "STORES",
    "SUCCESSOR_MODES",
    "SerialBfsEngine",
    "SerialDfsEngine",
    "SerialNdfsEngine",
    "UnsupportedPlanError",
    "WorkstealDfsEngine",
    "builtin_engines",
    "default_registry",
    "emit",
    "known_event_kinds",
    "make_reducer",
    "register_event_kind",
    "resolve",
    "run_plan",
    "strategy_label",
]
