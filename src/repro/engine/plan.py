"""The :class:`CheckPlan` — one model-checking run as explicit orthogonal axes.

The paper's evaluation (Table I / Appendix I) is a cross-product of choices
that are independent of each other: how the state space is walked (*shape*),
which partial-order reduction prunes it (*reduction*), how visited states
are remembered (*store*), and which execution backend drives the walk
(*backend*, with a *workers* count).  A plan names one point of that
cross-product; the registry (:mod:`repro.engine.registry`) maps it to the
engine implementing it — or raises a structured
:class:`UnsupportedPlanError` naming the offending axis when no engine can.

Plans are frozen and hashable, so they work as dictionary keys for sweeps
and conformance matrices.  Construction normalises the axes that are
determined by others (a stateless search has no store; DPOR is stateless by
definition) and rejects combinations that are contradictions rather than
merely unsupported (a stateful search with no store would never terminate
on a cyclic state graph).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from difflib import get_close_matches
from typing import Dict, Optional, Tuple

#: Search shapes: how the reachable state space is walked.
SHAPES = ("dfs", "bfs")

#: Partial-order reductions (``"none"`` is the unreduced baseline).
REDUCTIONS = ("none", "spor", "spor-net", "dpor")

#: Visited-state store kinds.  Deliberately a literal rather than an import
#: of ``repro.checker.statestore.STORE_KINDS`` (that import would cycle
#: through ``repro.checker.__init__`` back into this module);
#: tests/engine/test_plan.py pins the two vocabularies in lockstep.
STORES = ("full", "fingerprint", "sharded-fingerprint", "none")

#: Execution backends; ``"auto"`` lets plan resolution pick one from the
#: shape and worker count (serial for 1 worker, frontier/worksteal above).
#: ``"swarm"`` is the seeded random-walk sampler of :mod:`repro.swarm` —
#: never chosen by ``"auto"`` (sampling must be an explicit opt-in).
BACKENDS = ("auto", "serial", "frontier", "worksteal", "swarm")

#: Default walk budget for swarm plans that do not name one.
DEFAULT_WALKS = 1000

#: Default per-walk step bound for swarm plans that do not name one.  A walk
#: that has taken this many steps without violating is abandoned; unbounded
#: walks would never terminate on cyclic state graphs.
DEFAULT_WALK_DEPTH = 256

#: Successor-engine preference: the object-graph engine of
#: :mod:`repro.mp.semantics` or the packed fast path of
#: :mod:`repro.fastpath`.  An explicit axis (no "auto"): the fast path is
#: an opt-in with its own store constraints, and the no-silent-downgrade
#: contract means a plan asking for one engine family never silently runs
#: on the other.
SUCCESSOR_MODES = ("object", "fast")

#: Checking goals: ``"invariant"`` (a predicate must hold in every reachable
#: state) or ``"liveness"`` (an :class:`~repro.checker.property.Eventually`
#: goal must be reached on every maximal run; violations are accepting
#: cycles found by nested DFS).
GOALS = ("invariant", "liveness")

#: The orthogonal axes engine capabilities are declared over, in the order
#: violations are reported (most identity-defining axis first).
PLAN_AXES = ("goal", "reduction", "shape", "workers", "stateful",
             "successors", "backend", "store")


class UnsupportedPlanError(ValueError):
    """A plan names an axis combination no registered engine supports.

    Subclasses :class:`ValueError` so call sites that guarded the legacy
    facade's ad-hoc ``raise ValueError`` diagnostics keep working.

    Attributes:
        axis: Name of the offending axis (one of :data:`PLAN_AXES`).
        value: The requested value of that axis.
        alternative: The nearest supported alternative — a :class:`CheckPlan`
            that resolves, or a plain axis value when no full plan applies
            (axis-vocabulary errors raised at construction time).
    """

    def __init__(self, axis: str, value, message: str, alternative=None) -> None:
        self.axis = axis
        self.value = value
        self.alternative = alternative
        super().__init__(message)

    def __reduce__(self):
        # The default exception reduction re-calls ``cls(*args)`` with only
        # the message, which TypeErrors on this 4-argument signature — and
        # an exception that cannot be unpickled deadlocks multiprocessing
        # pools trying to ship it back to the parent (run_cells workers).
        return (
            type(self),
            (self.axis, self.value, self.args[0], self.alternative),
        )


def _unknown_axis_value(axis: str, value, vocabulary: Tuple[str, ...]) -> UnsupportedPlanError:
    close = get_close_matches(str(value), vocabulary, n=1)
    alternative = close[0] if close else vocabulary[0]
    return UnsupportedPlanError(
        axis,
        value,
        f"unknown {axis} {value!r} (expected one of {', '.join(map(repr, vocabulary))}); "
        f"nearest supported alternative: {axis}={alternative!r}",
        alternative=alternative,
    )


@dataclass(frozen=True)
class CheckPlan:
    """One model-checking run, described axis by axis.

    Attributes:
        shape: ``"dfs"`` or ``"bfs"`` — how the state space is walked.
        reduction: ``"none"``, ``"spor"``, ``"spor-net"`` or ``"dpor"``.
        store: Visited-state store kind; forced to ``"none"`` for stateless
            plans (there is nothing to store).
        backend: ``"auto"`` (resolution picks serial / frontier / worksteal
            from shape and workers) or an explicit backend name.
        workers: Worker process count of the chosen backend; 1 is serial.
        stateful: Keep a visited-state store.  ``reduction="dpor"`` forces
            ``False`` — DPOR is unsound with stateful exploration
            (Section III-A of the paper).
        successors: ``"object"`` (the interned-object successor engine) or
            ``"fast"`` (the packed table-compiled fast path of
            :mod:`repro.fastpath`).  Verdicts and visited counts are
            identical between the two; the fast path trades generality
            (e.g. the frontier variant is fingerprint-store only) for a
            several-fold smaller per-state constant.
        seed_heuristic: Seed-transition heuristic for the stubborn-set
            reductions; ignored by the others.
        store_shards: Shard count of the ``"sharded-fingerprint"`` store in
            the serial engines.  The parallel engines partition by worker
            (frontier BFS: one shard per worker) or claim by fingerprint
            (worksteal), so they do not consult it.
        max_depth / max_states / max_seconds: Exploration budgets.
        stop_at_first_violation: Stop at the first counterexample.
        check_deadlocks: Treat states without enabled transitions as
            violations.
        engine_cache_capacity: LRU bound for the successor-engine caches.
        fastpath_memo_capacity: LRU bound for the packed fast path's
            per-transition guard/action memo tables and the property-verdict
            memo (per memo table; ``None`` keeps them unbounded, which is
            fine for the bundled protocols' small local-state spaces).
        goal: ``"invariant"`` or ``"liveness"`` — what kind of property the
            run checks.  Liveness plans are served by the nested-DFS
            engines; the goal must match the property object handed to
            :func:`repro.engine.registry.run_plan` (mismatches raise a
            structured error rather than silently checking the wrong
            semantics).
        walks: Walk budget for ``backend="swarm"`` — how many seeded random
            walks to run before giving up (defaulted to
            :data:`DEFAULT_WALKS` on swarm plans; rejected on every other
            backend).
        walk_seed: Root seed of a swarm run.  Every walk's private RNG
            stream is derived from ``(walk_seed, walk_index)`` via the
            splitmix64 mixer, so a run is bit-reproducible from this one
            number (defaulted to 0 on swarm plans; rejected elsewhere).
        chaos: Optional fault-plan spec (:mod:`repro.chaos`) injected into
            the parallel/swarm worker loops — deterministic worker
            crashes/stalls/slowdowns for exercising the recovery paths.
            ``None`` (the default) injects nothing; like the budgets this
            is a run knob, not a capability axis.
        supervise: Restart crashed parallel/swarm workers and re-execute
            their lost work deterministically.  ``False`` turns a worker
            death into a structured ``WorkerCrashError`` → honest
            ``Inconclusive (worker crash)`` instead.
        checkpoint_dir: Directory receiving level-barrier checkpoints
            (breadth-first shapes only).
        checkpoint_every: Checkpoint every N completed levels (defaults to
            every level when ``checkpoint_dir`` is set).
        resume_from: Checkpoint file (or directory → deepest checkpoint)
            to resume a breadth-first run from.
    """

    shape: str = "dfs"
    reduction: str = "none"
    store: str = "full"
    backend: str = "auto"
    workers: int = 1
    stateful: bool = True
    successors: str = "object"
    seed_heuristic: str = "opposite-transaction"
    store_shards: int = 8
    max_depth: Optional[int] = None
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_at_first_violation: bool = True
    check_deadlocks: bool = False
    engine_cache_capacity: Optional[int] = None
    fastpath_memo_capacity: Optional[int] = None
    goal: str = "invariant"
    walks: Optional[int] = None
    walk_seed: Optional[int] = None
    chaos: Optional[str] = None
    supervise: bool = True
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    resume_from: Optional[str] = None

    def __post_init__(self) -> None:
        if self.goal not in GOALS:
            raise _unknown_axis_value("goal", self.goal, GOALS)
        if self.shape not in SHAPES:
            raise _unknown_axis_value("shape", self.shape, SHAPES)
        if self.reduction not in REDUCTIONS:
            raise _unknown_axis_value("reduction", self.reduction, REDUCTIONS)
        if self.store not in STORES:
            raise _unknown_axis_value("store", self.store, STORES)
        if self.backend not in BACKENDS:
            raise _unknown_axis_value("backend", self.backend, BACKENDS)
        if self.successors not in SUCCESSOR_MODES:
            raise _unknown_axis_value("successors", self.successors, SUCCESSOR_MODES)
        if not isinstance(self.workers, int) or self.workers < 1:
            raise UnsupportedPlanError(
                "workers",
                self.workers,
                f"workers must be a positive integer, got {self.workers!r}; "
                "nearest supported alternative: workers=1",
                alternative=1,
            )
        # Axis normalisation — values determined by other axes, mirroring the
        # legacy facade: DPOR is stateless by definition, and a stateless
        # search stores nothing.
        if self.reduction == "dpor" and self.stateful:
            object.__setattr__(self, "stateful", False)
        if not self.stateful and self.store != "none":
            object.__setattr__(self, "store", "none")
        if self.stateful and self.store == "none":
            raise UnsupportedPlanError(
                "store",
                "none",
                "store='none' contradicts stateful=True: a stateful search "
                "with no visited-state store would re-expand every state; "
                "nearest supported alternative: store='full' (or "
                "stateful=False for a genuinely storeless search)",
                alternative=replace(self, store="full"),
            )
        # Swarm normalisation.  Sampling keeps no exact visited-state store
        # (its probabilistic filter is coverage telemetry, not a store), so
        # swarm plans are stateless with store="none"; the walk budget and
        # root seed default in, and the per-walk step bound defaults when no
        # explicit max_depth was given.  Conversely, walk parameters on an
        # exhaustive backend are a contradiction, not merely unsupported.
        if self.backend == "swarm":
            if self.stateful:
                object.__setattr__(self, "stateful", False)
            if self.store != "none":
                object.__setattr__(self, "store", "none")
            if self.walks is None:
                object.__setattr__(self, "walks", DEFAULT_WALKS)
            if self.walk_seed is None:
                object.__setattr__(self, "walk_seed", 0)
            if self.max_depth is None:
                object.__setattr__(self, "max_depth", DEFAULT_WALK_DEPTH)
            if not isinstance(self.walks, int) or self.walks < 1:
                raise UnsupportedPlanError(
                    "backend",
                    "swarm",
                    f"walks must be a positive integer, got {self.walks!r}; "
                    f"nearest supported alternative: walks={DEFAULT_WALKS}",
                    alternative=replace(self, walks=DEFAULT_WALKS),
                )
            if not isinstance(self.walk_seed, int):
                raise UnsupportedPlanError(
                    "backend",
                    "swarm",
                    f"walk_seed must be an integer, got {self.walk_seed!r}; "
                    "nearest supported alternative: walk_seed=0",
                    alternative=replace(self, walk_seed=0),
                )
        elif self.walks is not None or self.walk_seed is not None:
            raise UnsupportedPlanError(
                "backend",
                self.backend,
                f"walks/walk_seed only apply to backend='swarm', not "
                f"backend={self.backend!r}; nearest supported alternative: "
                "backend='swarm'",
                alternative=replace(self, backend="swarm"),
            )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def axes(self) -> Dict[str, object]:
        """The capability axes as a dict (for records and diagnostics)."""
        return {
            "shape": self.shape,
            "reduction": self.reduction,
            "store": self.store,
            "backend": self.backend,
            "workers": self.workers,
            "stateful": self.stateful,
            "successors": self.successors,
            "goal": self.goal,
        }

    def describe(self) -> str:
        """Compact one-line rendering: ``dfs/spor/full/worksteal+fast x4``.

        The successor mode and goal only appear when they depart from the
        defaults, keeping existing invariant/object renderings byte-stable.
        """
        suffix = f" x{self.workers}" if self.workers > 1 else ""
        fast = "+fast" if self.successors == "fast" else ""
        live = "+liveness" if self.goal == "liveness" else ""
        swarm = (
            f"+walks{self.walks}+seed{self.walk_seed}"
            if self.backend == "swarm"
            else ""
        )
        return (
            f"{self.shape}/{self.reduction}/{self.store}/{self.backend}"
            f"{fast}{live}{swarm}{suffix}"
        )

    def search_config(self):
        """The :class:`repro.checker.search.SearchConfig` this plan implies."""
        # Imported lazily: checker.search is loaded while this module may
        # still be initialising during package import.
        from ..checker.search import SearchConfig

        return SearchConfig(
            stateful=self.stateful,
            state_store=self.store if self.stateful else "full",
            state_store_shards=self.store_shards,
            successor_engine=self.successors,
            max_depth=self.max_depth,
            max_states=self.max_states,
            max_seconds=self.max_seconds,
            stop_at_first_violation=self.stop_at_first_violation,
            check_deadlocks=self.check_deadlocks,
            engine_cache_capacity=self.engine_cache_capacity,
            fastpath_memo_capacity=self.fastpath_memo_capacity,
            chaos=self.chaos,
            supervise=self.supervise,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            resume_from=self.resume_from,
        )


def strategy_label(plan: CheckPlan) -> str:
    """The legacy strategy string of a plan (``CheckResult.strategy``).

    Keeps the records emitted through the new API byte-compatible with the
    ones the ``Strategy``-enum facade produced: ``"bfs"`` for breadth-first
    runs, otherwise the reduction name with ``"none"`` spelled
    ``"unreduced"``.  Liveness runs (which the facade never produced) are
    labelled by their algorithm, ``"ndfs"``.
    """
    if plan.goal == "liveness":
        return "ndfs"
    if plan.backend == "swarm":
        return "swarm"
    if plan.shape == "bfs":
        return "bfs"
    return "unreduced" if plan.reduction == "none" else plan.reduction
