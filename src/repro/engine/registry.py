"""Engine registry and plan resolution.

The registry is the single place where "which engine runs this plan?" is
answered.  Engines declare the axis combinations they support via
:class:`~repro.engine.capabilities.Capabilities`; :meth:`EngineRegistry.resolve`
matches a :class:`~repro.engine.plan.CheckPlan` against those descriptors,
concretising ``backend="auto"`` (serial for one worker, frontier/worksteal
above) and raising a structured
:class:`~repro.engine.plan.UnsupportedPlanError` — offending axis, engine
explanation, nearest supported alternative — when nothing matches.

New axes land here as registry entries: a C-accelerated successor engine, a
spawn-mode frontier or a new backend registers an engine with its
capabilities and every consumer (facade, cells runner, CLI, benchmarks)
picks it up without edits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..checker.property import Invariant, goal_of
from ..checker.result import CheckResult
from ..mp.protocol import Protocol
from ..obs.telemetry import RunTelemetry
from .capabilities import platform_requirements
from .engines import Engine, builtin_engines
from .events import Observer, emit
from .plan import CheckPlan, UnsupportedPlanError, strategy_label


class EngineRegistry:
    """Ordered collection of engines keyed by name."""

    def __init__(self, engines: Sequence[Engine] = ()) -> None:
        self._engines: Dict[str, Engine] = {}
        for engine in engines:
            self.register(engine)

    def register(self, engine: Engine) -> Engine:
        """Add an engine; names are unique, capabilities must be coherent.

        Coherence check: a stateless plan's store axis is always ``"none"``
        (normalised at plan construction), so an engine declaring stateless
        support without the ``"none"`` store could never match a stateless
        plan — its ``False`` statefulness would be dead and its diagnostics
        misleading.  Rejected here, at registration, not at resolve time.
        """
        if not engine.name:
            raise ValueError("engines must carry a non-empty name")
        if engine.name in self._engines:
            raise ValueError(f"engine {engine.name!r} is already registered")
        capabilities = engine.capabilities
        if False in capabilities.statefulness and "none" not in capabilities.stores:
            raise ValueError(
                f"engine {engine.name!r} declares stateless support "
                "(False in statefulness) but not the 'none' store; stateless "
                "plans always carry store='none', so add it to stores or "
                "drop False from statefulness"
            )
        self._engines[engine.name] = engine
        return engine

    def engines(self) -> Tuple[Engine, ...]:
        """Every registered engine, in registration order."""
        return tuple(self._engines.values())

    def get(self, name: str) -> Engine:
        """Look an engine up by name."""
        try:
            return self._engines[name]
        except KeyError:
            known = ", ".join(self._engines) or "none"
            raise KeyError(f"unknown engine {name!r} (registered: {known})")

    # ------------------------------------------------------------------ #
    # Plan resolution
    # ------------------------------------------------------------------ #
    def resolve(self, plan: CheckPlan) -> Tuple[Engine, CheckPlan]:
        """Pick the engine for ``plan``; never silently downgrades an axis.

        Returns:
            ``(engine, resolved_plan)`` where ``resolved_plan`` equals
            ``plan`` except that ``backend="auto"`` is concretised to the
            chosen engine's backend.

        Raises:
            UnsupportedPlanError: When no registered engine supports the
                combination.  The error names the offending axis, quotes the
                nearest engine's explanation for the constraint, and carries
                a runnable nearest-alternative plan.
        """
        if not self._engines:
            raise ValueError("cannot resolve a plan against an empty registry")
        supporting = [
            engine
            for engine in self._engines.values()
            if engine.capabilities.supports(plan)
        ]
        available = platform_requirements()
        runnable = [
            engine
            for engine in supporting
            if not engine.capabilities.missing_requirements(available)
        ]
        if runnable:
            engine = runnable[0]
            resolved = plan
            if plan.backend == "auto":
                resolved = replace(plan, backend=engine.capabilities.backends[0])
            return engine, resolved
        if supporting:
            # The axes are fine; the platform is not (e.g. a multi-process
            # backend on a spawn-only interpreter).  Refusing here, with a
            # runnable serial alternative, replaces the raw runtime error /
            # silent serial fallback the parallel searches used to produce.
            engine = supporting[0]
            missing = engine.capabilities.missing_requirements(available)
            if plan.backend == "swarm":
                # Dropping to one worker keeps the plan on the serial
                # walker; "auto" would reject the walk-budget axes.
                alternative = replace(plan, workers=1)
            else:
                alternative = replace(plan, workers=1, backend="auto")
            raise UnsupportedPlanError(
                "backend",
                plan.backend,
                f"plan {plan.describe()} resolves to engine {engine.name}, "
                f"which requires platform feature(s) "
                f"{', '.join(map(repr, missing))} that this interpreter "
                "does not provide (the multi-process backends inherit the "
                "protocol and hash seed via the 'fork' start method); "
                f"nearest supported alternative: {alternative.describe()}",
                alternative=alternative,
            )

        nearest = max(
            self._engines.values(), key=lambda e: e.capabilities.match_score(plan)
        )
        capabilities = nearest.capabilities
        axis = capabilities.violations(plan)[0]
        requested = plan.axes()[axis]
        alternative = capabilities.nearest_plan(plan)
        note = capabilities.notes.get(axis)
        detail = f" ({note})" if note else ""
        raise UnsupportedPlanError(
            axis,
            requested,
            f"no registered engine supports plan {plan.describe()}: "
            f"axis {axis}={requested!r} is outside the nearest engine's "
            f"support ({nearest.name}: {capabilities.supported_description(axis)})"
            f"{detail}; nearest supported alternative: {alternative.describe()}",
            alternative=alternative,
        )

    def supported_plans(
        self,
        worker_counts: Sequence[int] = (1, 2, 4),
        stores: Sequence[str] = ("full",),
        successor_modes: Sequence[str] = ("object",),
        goals: Sequence[str] = ("invariant",),
    ) -> Iterator[Tuple[Engine, CheckPlan]]:
        """Enumerate the (goal × shape × reduction × backend × workers ×
        store × successors) grid the registry reports as supported.

        This is what the conformance matrix iterates: every yielded plan is
        guaranteed to resolve to the accompanying engine.  The default
        enumerates the invariant-checking object-graph family only; pass
        ``successor_modes=("object", "fast")`` and/or
        ``goals=("invariant", "liveness")`` for the full grid.
        """
        from .plan import REDUCTIONS, SHAPES

        seen = set()
        for goal in goals:
            for shape in SHAPES:
                for reduction in REDUCTIONS:
                    for store in stores:
                        for workers in worker_counts:
                            for successors in successor_modes:
                                stateful = reduction != "dpor"
                                try:
                                    plan = CheckPlan(
                                        shape=shape,
                                        reduction=reduction,
                                        store=store if stateful else "none",
                                        workers=workers,
                                        stateful=stateful,
                                        successors=successors,
                                        goal=goal,
                                    )
                                    engine, resolved = self.resolve(plan)
                                except UnsupportedPlanError:
                                    continue
                                # Stateless plans collapse the store axis to
                                # "none", so several grid points can
                                # normalise to one plan.
                                if resolved in seen:
                                    continue
                                seen.add(resolved)
                                yield engine, resolved


#: The process-wide default registry, built lazily.
_DEFAULT_REGISTRY: Optional[EngineRegistry] = None


def default_registry() -> EngineRegistry:
    """The shared registry holding every built-in engine."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = EngineRegistry(builtin_engines())
    return _DEFAULT_REGISTRY


def resolve(
    plan: CheckPlan, registry: Optional[EngineRegistry] = None
) -> Tuple[Engine, CheckPlan]:
    """Module-level convenience: resolve against the default registry."""
    return (registry or default_registry()).resolve(plan)


def run_plan(
    protocol: Protocol,
    invariant: Invariant,
    plan: CheckPlan,
    observer: Optional[Observer] = None,
    registry: Optional[EngineRegistry] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> CheckResult:
    """Resolve ``plan``, run it, and wrap the outcome as a CheckResult.

    This is the one entry point every consumer (the :class:`ModelChecker`
    facade, the cells runner, the CLI) funnels through; the ``observer``
    receives the uniform event stream documented in
    :mod:`repro.engine.events`.

    Every run carries a :class:`~repro.obs.telemetry.RunTelemetry` (one is
    created here when the caller does not pass its own): the engine records
    its metrics and phase spans through it, and the resulting snapshot is
    attached as :attr:`CheckResult.telemetry`.  Span events reach the
    ``observer``; with no observer the tracer emits nothing and the
    end-of-run recorders are the only cost (a few dict writes per run).
    """
    required = goal_of(invariant)
    if plan.goal != required:
        raise UnsupportedPlanError(
            "goal",
            plan.goal,
            f"property {invariant.name!r} is a {required} property but the "
            f"plan requests goal={plan.goal!r}; liveness properties need a "
            "cycle-aware engine (and invariants a reachability engine), so "
            "the mismatch is refused rather than silently reinterpreted",
            alternative=replace(plan, goal=required),
        )
    engine, resolved = resolve(plan, registry)
    if telemetry is None:
        telemetry = RunTelemetry(observer=observer)
    emit(
        observer,
        "search-started",
        engine=engine.name,
        plan=resolved.axes(),
        protocol=protocol.name,
        invariant=invariant.name,
    )
    with telemetry.span("search", engine=engine.name):
        outcome = engine.run(
            protocol, invariant, resolved, observer=observer, telemetry=telemetry
        )
    telemetry.record_statistics(outcome.statistics, engine=engine.name)
    emit(
        observer,
        "search-finished",
        engine=engine.name,
        verified=outcome.verified,
        complete=outcome.complete,
        states_visited=outcome.statistics.states_visited,
        elapsed_seconds=outcome.statistics.elapsed_seconds,
        incomplete_reason=getattr(outcome, "incomplete_reason", None),
    )
    return CheckResult(
        protocol_name=protocol.name,
        property_name=invariant.name,
        strategy=strategy_label(resolved),
        verified=outcome.verified,
        complete=outcome.complete,
        counterexample=outcome.counterexample,
        statistics=outcome.statistics,
        stateful=resolved.stateful,
        plan=resolved,
        engine=engine.name,
        telemetry=telemetry.snapshot(),
        incomplete_reason=getattr(outcome, "incomplete_reason", None),
    )
