"""Progress/event observer API shared by every engine.

Before this layer existed each engine grew its own private progress path
(the CLI read ``SearchStatistics`` after the fact, the cells runner its
records, the benchmarks their payloads).  Engines now emit one uniform
stream of :class:`EngineEvent` records into an :class:`Observer`, and the
CLI's ``--progress`` flag, :func:`repro.parallel.cells.run_cells` and the
benchmark harness all consume that same stream.

Event kinds (``EngineEvent.kind``):

``search-started``
    Emitted once by :func:`repro.engine.registry.run_plan` before the engine
    runs; payload carries the resolved plan axes and the engine name.
``progress``
    Periodic states-visited tick: the serial engines emit one every
    :data:`PROGRESS_INTERVAL` stored/expanded states, and the work-stealing
    coordinators emit in-flight ticks from a shared claim counter the
    workers flush in batches (so parallel DFS progress is live, not an
    end-of-run report).
``level-completed``
    One BFS level finished; payload carries the depth, the level's newly
    discovered state count and (for the frontier-parallel engine) the
    exchanged delta count.
``worker-report``
    One parallel-DFS worker's final counters (claimed states, transitions,
    revisits) as collected by the coordinator.
``violation-found``
    An invariant violation was discovered.
``search-finished``
    Emitted once by ``run_plan`` after the engine returns; payload carries
    the verdict and final statistics.
``span-started`` / ``span-finished``
    A named phase (compile / search / red-phase / ce-replay) began or
    ended; emitted by :class:`repro.obs.spans.SpanTracer`.  The finish
    payload carries ``start_ts`` and ``elapsed_seconds`` so trace
    exporters build complete slices from finishes alone.
``worker-telemetry``
    Live per-worker gauge flush from a parallel coordinator: the worker's
    current claimed/transitions/revisits counters read off the shared
    telemetry channel mid-run (distinct from the final ``worker-report``).
``worker-stalled``
    A parallel worker's heartbeat went silent for longer than the stall
    threshold; payload names the worker and the silent interval.
``worker-crashed``
    A parallel worker died without sending its barrier reply; payload
    names the worker and the phase it owed.
``worker-restarted``
    The supervisor restarted a crashed worker and re-seeded its lost
    work; payload names the worker and the restart attempt number.
``checkpoint-written``
    A level-barrier checkpoint was written; payload carries the depth,
    the visited count and the file path.

Parallel engines emit coordinator-side events only: observers are plain
Python objects and do not cross process boundaries.

``emit`` validates event kinds against :data:`EVENT_KINDS` (plus any
kinds added through :func:`register_event_kind`): unknown kinds raise by
default so typos fail loudly under test, while production embedders can
set ``REPRO_EVENT_VALIDATION=warn`` (or ``off``) to tolerate streams from
newer emitters.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: States between two ``progress`` ticks of the serial engines.
PROGRESS_INTERVAL = 1000

#: Every event kind an engine may emit, for validation and documentation.
EVENT_KINDS = (
    "search-started",
    "progress",
    "level-completed",
    "worker-report",
    "worker-telemetry",
    "worker-stalled",
    "worker-crashed",
    "worker-restarted",
    "checkpoint-written",
    "span-started",
    "span-finished",
    "violation-found",
    "search-finished",
)

#: Environment knob for unknown-kind handling: ``strict`` (default,
#: raise), ``warn`` (``warnings.warn`` and deliver) or ``off`` (deliver).
EVENT_VALIDATION_ENV = "REPRO_EVENT_VALIDATION"

_known_kinds = set(EVENT_KINDS)


def register_event_kind(kind: str) -> None:
    """Allow an extension event kind through :func:`emit` validation.

    Custom engines registered from outside the package can extend the
    stream without patching :data:`EVENT_KINDS`.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError("event kind must be a non-empty string")
    _known_kinds.add(kind)


def known_event_kinds() -> frozenset:
    """The currently accepted event kinds (built-in + registered)."""
    return frozenset(_known_kinds)


@dataclass(frozen=True)
class EngineEvent:
    """One observation from a running engine."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)


class Observer:
    """Base observer: receives every event; the default implementation
    ignores them, so subclasses override only what they consume."""

    def on_event(self, event: EngineEvent) -> None:  # pragma: no cover - trivial
        pass


#: Back-compat friendly alias: an explicitly do-nothing observer.
NullObserver = Observer


class MultiObserver(Observer):
    """Fan one event stream out to several observers."""

    def __init__(self, observers: Iterable[Observer]) -> None:
        self.observers = tuple(observers)

    def on_event(self, event: EngineEvent) -> None:
        for observer in self.observers:
            observer.on_event(event)


class CollectingObserver(Observer):
    """Observer that records every event (tests and offline analysis)."""

    def __init__(self) -> None:
        self.events: List[EngineEvent] = []

    def on_event(self, event: EngineEvent) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        """Event kinds in arrival order."""
        return [event.kind for event in self.events]

    def counts(self) -> Dict[str, int]:
        """Number of received events per kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def last(self, kind: str) -> Optional[EngineEvent]:
        """The most recent event of ``kind``, or None."""
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None


class ProgressPrinter(Observer):
    """Observer that renders the stream as one line per event.

    This is what ``python -m repro check --progress`` attaches: the same
    stream the programmatic consumers read, printed for humans.
    """

    def __init__(self, stream) -> None:
        self.stream = stream

    def on_event(self, event: EngineEvent) -> None:
        payload = event.payload
        if event.kind == "search-started":
            plan = payload.get("plan", {})
            axes = "/".join(
                str(plan.get(axis, "?"))
                for axis in (
                    "shape", "reduction", "store", "backend", "successors", "goal",
                )
            )
            workers = plan.get("workers", 1)
            suffix = f" x{workers}" if isinstance(workers, int) and workers > 1 else ""
            self.stream.write(
                f"[{payload.get('engine', '?')}] {axes}{suffix} "
                f"on {payload.get('protocol', '?')}\n"
            )
        elif event.kind == "progress":
            if "walks_completed" in payload:
                # Swarm runs count walks, not stored states.
                self.stream.write(
                    f"  ... {payload.get('walks_completed', 0):,} walks, "
                    f"{payload.get('violations', 0):,} violations, "
                    f"{payload.get('unique_fingerprints', 0):,} unique "
                    f"fingerprints\n"
                )
            else:
                self.stream.write(
                    f"  ... {payload.get('states_visited', 0):,} states\n"
                )
        elif event.kind == "level-completed":
            self.stream.write(
                f"  level {payload.get('depth', '?')}: "
                f"+{payload.get('new_states', 0):,} states\n"
            )
        elif event.kind == "worker-report":
            self.stream.write(
                f"  worker {payload.get('worker', '?')}: "
                f"{payload.get('claimed', 0):,} states claimed\n"
            )
        elif event.kind == "worker-stalled":
            self.stream.write(
                f"  !! worker {payload.get('worker', '?')} stalled "
                f"({payload.get('idle_seconds', 0.0):.1f}s without heartbeat)\n"
            )
        elif event.kind == "worker-crashed":
            self.stream.write(
                f"  !! worker {payload.get('worker', '?')} crashed "
                f"(no {payload.get('phase', '?')} reply)\n"
            )
        elif event.kind == "worker-restarted":
            self.stream.write(
                f"  worker {payload.get('worker', '?')} restarted "
                f"(attempt {payload.get('attempt', '?')})\n"
            )
        elif event.kind == "checkpoint-written":
            self.stream.write(
                f"  checkpoint @ level {payload.get('depth', '?')}: "
                f"{payload.get('states_visited', 0):,} states -> "
                f"{payload.get('path', '?')}\n"
            )
        elif event.kind in ("span-started", "span-finished", "worker-telemetry"):
            # High-frequency telemetry kinds stay silent on the human
            # printer; JSONL sinks and trace export consume them.
            pass
        elif event.kind == "violation-found":
            self.stream.write("  violation found\n")
        elif event.kind == "search-finished":
            if not payload.get("verified"):
                verdict = "CE"
            elif payload.get("complete", True):
                verdict = "Verified"
            else:
                reason = payload.get("incomplete_reason") or "budget hit"
                verdict = f"Inconclusive ({reason})"
            self.stream.write(
                f"[{payload.get('engine', '?')}] {verdict} — "
                f"{payload.get('states_visited', 0):,} states, "
                f"{payload.get('elapsed_seconds', 0.0):.2f}s\n"
            )


def emit(observer: Optional[Observer], kind: str, **payload) -> None:
    """Deliver one event, tolerating ``observer=None`` (the common case).

    Unknown kinds raise :class:`ValueError` unless the
    :data:`EVENT_VALIDATION_ENV` environment variable says ``warn`` or
    ``off``.  The ``observer is None`` early-out stays first: the no-sink
    fast path costs one comparison, validation only runs when someone is
    listening.
    """
    if observer is None:
        return
    if kind not in _known_kinds:
        mode = os.environ.get(EVENT_VALIDATION_ENV, "strict").lower()
        if mode not in ("warn", "off", "0", "false"):
            raise ValueError(
                f"unknown event kind {kind!r}; known kinds: "
                f"{', '.join(sorted(_known_kinds))} "
                f"(register_event_kind() adds extensions, "
                f"{EVENT_VALIDATION_ENV}=warn tolerates)"
            )
        if mode == "warn":
            warnings.warn(
                f"unknown event kind {kind!r} delivered unvalidated",
                RuntimeWarning,
                stacklevel=2,
            )
    observer.on_event(EngineEvent(kind=kind, payload=payload))
