"""The MP modelling layer: the message-passing computation model of the paper.

This package is the Python analogue of MP-Basset's input language MP
(Section II of the paper): messages and unordered channels, immutable global
states, guarded single-message and quorum transitions, protocol definitions
with driver-injected trigger messages, and the operational semantics used by
every search strategy.
"""

from .builder import ProtocolBuilder
from .channel import Network
from .errors import (
    MPError,
    MessageError,
    ProtocolDefinitionError,
    QuorumSpecificationError,
    TransitionExecutionError,
)
from .message import DRIVER, Message, driver_message
from .process import LocalState, ProcessDecl
from .protocol import Protocol
from .semantics import (
    SuccessorEngine,
    apply_execution,
    enabled_executions,
    enabled_executions_for,
    is_enabled,
    state_graph_edges,
    successors,
)
from .state import GlobalState, StateInterner
from .transition import (
    ActionContext,
    Execution,
    LporAnnotation,
    QuorumKind,
    QuorumSpec,
    SendSpec,
    TransitionSpec,
    exact_quorum,
    majority_of,
    single_message,
)

__all__ = [
    "ActionContext",
    "DRIVER",
    "Execution",
    "GlobalState",
    "LocalState",
    "LporAnnotation",
    "MPError",
    "Message",
    "MessageError",
    "Network",
    "ProcessDecl",
    "Protocol",
    "ProtocolBuilder",
    "ProtocolDefinitionError",
    "QuorumKind",
    "QuorumSpec",
    "QuorumSpecificationError",
    "SendSpec",
    "StateInterner",
    "SuccessorEngine",
    "TransitionExecutionError",
    "TransitionSpec",
    "apply_execution",
    "driver_message",
    "enabled_executions",
    "enabled_executions_for",
    "exact_quorum",
    "is_enabled",
    "majority_of",
    "single_message",
    "state_graph_edges",
    "successors",
]
