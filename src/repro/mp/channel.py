"""Unordered channels modelled as immutable multisets of messages.

The paper's computation model (Section II-A) defines a directed channel
``c_{i,j}`` per ordered pair of processes as an unordered set of messages.
Because a process may send the same message twice (e.g. retransmissions in a
single-message encoding), we generalise sets to multisets.

Rather than keeping one container per channel, the whole network is stored
as a single multiset of in-flight messages; a message records its own
``(sender, recipient)`` endpoints, so per-channel views are recoverable and
the global state stays compact and hashable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from .message import Message

#: Canonical multiset representation: a sorted tuple of ``(message, count)``.
MultisetItems = Tuple[Tuple[Message, int], ...]


def item_hash(message: Message, count: int) -> int:
    """Hash contribution of one ``(message, count)`` entry of a network.

    The network hash is the XOR of these contributions, which makes it both
    order-independent (a multiset has no order) and *incrementally
    maintainable*: adding or removing messages XORs out the contributions of
    the changed entries and XORs the replacements in, instead of rehashing
    the whole canonical tuple.  The packed fast-path engine
    (:mod:`repro.fastpath`) reproduces the same accumulator over interned
    message ids, so packed fingerprints equal object-graph fingerprints.
    """
    return hash((message, count))


def _items_accumulator(items: MultisetItems) -> int:
    """XOR-combine the contributions of a full canonical items tuple."""
    accumulator = 0
    for message, count in items:
        accumulator ^= item_hash(message, count)
    return accumulator


class Network:
    """An immutable multiset of in-flight messages.

    All mutating operations return a new :class:`Network`; instances are
    hashable and therefore suitable as a component of a global state.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Tuple[Message, int]] = ()) -> None:
        counts: Dict[Message, int] = {}
        for message, count in items:
            if count <= 0:
                continue
            counts[message] = counts.get(message, 0) + count
        canonical = tuple(
            sorted(counts.items(), key=lambda item: item[0].sort_key())
        )
        self._items: MultisetItems = canonical
        self._hash = _items_accumulator(canonical)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_canonical(
        cls, items: MultisetItems, hash_value: Optional[int] = None
    ) -> "Network":
        """Build a network from items already in canonical sorted form.

        Internal fast path for :meth:`add_all` / :meth:`remove_all`, which
        maintain canonical order *and* the XOR hash accumulator themselves
        and skip both the full re-sort and the full rehash of ``__init__``.
        ``hash_value`` must be the :func:`item_hash` XOR over ``items`` when
        given; callers that cannot maintain it incrementally omit it.
        """
        network = object.__new__(cls)
        network._items = items
        network._hash = (
            hash_value if hash_value is not None else _items_accumulator(items)
        )
        return network

    @classmethod
    def empty(cls) -> "Network":
        """Return an empty network."""
        return cls(())

    @classmethod
    def of(cls, messages: Iterable[Message]) -> "Network":
        """Build a network from an iterable of messages (each with count 1)."""
        return cls((message, 1) for message in messages)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> MultisetItems:
        """Canonical ``(message, count)`` pairs in deterministic order."""
        return self._items

    def count(self, message: Message) -> int:
        """Return the multiplicity of ``message`` in the network."""
        for candidate, count in self._items:
            if candidate == message:
                return count
        return 0

    def __len__(self) -> int:
        """Return the total number of in-flight messages (with multiplicity)."""
        return sum(count for _, count in self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Message]:
        """Iterate over messages, repeating each according to its count."""
        for message, count in self._items:
            for _ in range(count):
                yield message

    def distinct(self) -> Iterator[Message]:
        """Iterate over distinct messages (ignoring multiplicity)."""
        for message, _ in self._items:
            yield message

    def pending_for(
        self,
        recipient: str,
        mtype: Optional[str] = None,
        sender: Optional[str] = None,
    ) -> Tuple[Message, ...]:
        """Return the distinct pending messages addressed to ``recipient``.

        Args:
            recipient: The receiving process identifier.
            mtype: If given, restrict to messages of this type.
            sender: If given, restrict to messages from this sender.
        """
        result = []
        for message, _ in self._items:
            if message.recipient != recipient:
                continue
            if mtype is not None and message.mtype != mtype:
                continue
            if sender is not None and message.sender != sender:
                continue
            result.append(message)
        return tuple(result)

    def channel(self, sender: str, recipient: str) -> Tuple[Message, ...]:
        """Return the distinct contents of the directed channel ``(sender, recipient)``."""
        return tuple(
            message
            for message, _ in self._items
            if message.sender == sender and message.recipient == recipient
        )

    def senders_to(self, recipient: str, mtype: Optional[str] = None) -> Tuple[str, ...]:
        """Return the sorted set of processes with a pending message to ``recipient``."""
        senders = {
            message.sender
            for message, _ in self._items
            if message.recipient == recipient and (mtype is None or message.mtype == mtype)
        }
        return tuple(sorted(senders))

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def add_all(self, messages: Iterable[Message]) -> "Network":
        """Return a new network with ``messages`` added (each once)."""
        added: Dict[Message, int] = {}
        for message in messages:
            added[message] = added.get(message, 0) + 1
        if not added:
            return self
        # Merge the (few) sorted additions into the already-sorted items,
        # XOR-maintaining the hash: only changed entries touch it.
        pending = sorted(
            ((message.sort_key(), message, count) for message, count in added.items()),
            key=lambda triple: triple[0],
        )
        merged = []
        new_hash = self._hash
        cursor = 0
        position = 0
        for position, (message, count) in enumerate(self._items):
            if cursor == len(pending):
                break
            key = message.sort_key()
            while cursor < len(pending):
                pending_key, pending_message, pending_count = pending[cursor]
                if pending_key < key:
                    merged.append((pending_message, pending_count))
                    new_hash ^= item_hash(pending_message, pending_count)
                    cursor += 1
                elif pending_key == key and pending_message != message:
                    # Sort keys compare payloads through repr and are not
                    # injective; on a tie between distinct messages defer to
                    # the re-sorting constructor so entries never split.
                    return Network(
                        list(self._items) + [(m, c) for _, m, c in pending]
                    )
                else:
                    break
            if cursor < len(pending) and pending[cursor][1] == message:
                new_count = count + pending[cursor][2]
                merged.append((message, new_count))
                new_hash ^= item_hash(message, count) ^ item_hash(message, new_count)
                cursor += 1
            else:
                merged.append((message, count))
        else:
            position = len(self._items)
        merged.extend(self._items[position:] if cursor == len(pending) else ())
        for _, pending_message, pending_count in pending[cursor:]:
            merged.append((pending_message, pending_count))
            new_hash ^= item_hash(pending_message, pending_count)
        return Network._from_canonical(tuple(merged), new_hash)

    def remove_all(self, messages: Iterable[Message]) -> "Network":
        """Return a new network with one occurrence of each message removed.

        Raises:
            KeyError: If a message is not present in the network.
        """
        removals: Dict[Message, int] = {}
        for message in messages:
            removals[message] = removals.get(message, 0) + 1
        if not removals:
            return self
        # Removal keeps the canonical order, so the re-sorting constructor
        # is bypassed; the XOR hash is adjusted for the changed entries only.
        items = []
        new_hash = self._hash
        for message, count in self._items:
            to_remove = removals.pop(message, 0)
            if to_remove > count:
                raise KeyError(f"cannot remove {to_remove} copies of {message.describe()}")
            remaining = count - to_remove
            if to_remove:
                new_hash ^= item_hash(message, count)
                if remaining:
                    new_hash ^= item_hash(message, remaining)
            if remaining:
                items.append((message, remaining))
        if removals:
            missing = next(iter(removals))
            raise KeyError(f"message not in network: {missing.describe()}")
        return Network._from_canonical(tuple(items), new_hash)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Network):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self._items == other._items

    def __hash__(self) -> int:
        # CPython maps a Python-level ``__hash__`` returning -1 to -2; do it
        # explicitly so ``hash(network)`` always equals what callers reading
        # the raw accumulator (``GlobalState``, the packed fast path) expect.
        # The accumulator itself stays raw: normalising it would break the
        # XOR reversibility the incremental updates rely on.
        return -2 if self._hash == -1 else self._hash

    def __reduce__(self):
        """Pickle the canonical items only; the cached hash is process-local
        (it depends on the interpreter's hash seed) and is recomputed by the
        re-canonicalising constructor on unpickling."""
        return (Network, (self._items,))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{message.describe()}x{count}" if count > 1 else message.describe()
            for message, count in self._items
        )
        return f"Network[{inner}]"
