"""Process declarations and local-state helpers.

A process is declared by an identifier, a type (the "process class" of
MP-Basset, e.g. ``proposer`` / ``acceptor`` / ``learner`` for Paxos) and an
initial local state.  Local states must be immutable and hashable; protocol
models typically use frozen dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any

from .errors import ProtocolDefinitionError


@dataclass(frozen=True)
class ProcessDecl:
    """Declaration of one process instance of the protocol.

    Attributes:
        pid: Unique process identifier (e.g. ``"acceptor2"``).
        ptype: Process type / class name (e.g. ``"acceptor"``); used by
            protocol settings, reporting and the refinement strategies to
            group processes by role.
        initial_state: The initial local state; must be hashable.
    """

    pid: str
    ptype: str
    initial_state: Any

    def __post_init__(self) -> None:
        if not self.pid:
            raise ProtocolDefinitionError("process id must be non-empty")
        if not self.ptype:
            raise ProtocolDefinitionError(f"process {self.pid}: type must be non-empty")
        try:
            hash(self.initial_state)
        except TypeError as exc:
            raise ProtocolDefinitionError(
                f"process {self.pid}: initial local state must be hashable"
            ) from exc


class LocalState:
    """Convenience base class for frozen-dataclass local states.

    Protocol models are free to use plain frozen dataclasses; inheriting
    from this class additionally provides :meth:`update`, a thin wrapper
    around :func:`dataclasses.replace` that reads naturally in transition
    actions::

        return local.update(phase="written", value=chosen)
    """

    def update(self, **changes: Any):
        """Return a copy of the local state with ``changes`` applied."""
        if not is_dataclass(self):
            raise TypeError("LocalState.update requires a dataclass subclass")
        return replace(self, **changes)

    def field_names(self):
        """Return the names of the dataclass fields, in declaration order."""
        if not is_dataclass(self):
            raise TypeError("LocalState.field_names requires a dataclass subclass")
        return tuple(f.name for f in fields(self))
